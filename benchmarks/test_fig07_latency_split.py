"""Bench: paper Fig. 7 — draft vs target latency share across configs."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig07_latency_split(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig07", bench_config)
    show(report)
    metrics = report.metrics
    # Paper Observation 3a: as prediction length grows, the draft model
    # progressively dominates decoding latency.
    for pairing in ("whisper", "llama-7b", "vicuna-13b"):
        shares = [metrics[f"draft_share/{pairing}/gamma{g}"] for g in (4, 8, 16, 24)]
        assert shares[-1] > shares[0], (pairing, shares)
    # Paper Observation 3b: at fixed prediction length, a larger
    # draft/target disparity shifts the bottleneck to the target.
    assert (
        metrics["draft_share/vicuna-13b/gamma8"]
        < metrics["draft_share/llama-7b/gamma8"]
    )
    # The draft becomes the dominant cost for long predictions when the
    # models are close in size (TinyLlama vs Llama-7B).
    assert metrics["draft_share/llama-7b/gamma24"] > 50.0
