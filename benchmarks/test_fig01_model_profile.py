"""Bench: paper Fig. 1 — encoder vs LLM-decoder parameter and latency split."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig01_model_profile(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig01", bench_config)
    show(report)
    # Paper claim: the LLM decoder dominates both parameters and latency.
    for key, share in report.metrics.items():
        if key.startswith("decoder_latency_share/"):
            assert share > 0.80, key
    # Every profiled system keeps its encoder under 1 B parameters.
    for row in report.rows:
        encoder_params = row[1]
        assert float(encoder_params) < 1.0
