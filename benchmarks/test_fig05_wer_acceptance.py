"""Bench: paper Fig. 5 — WER vs scale (a) and accept@top-k ASR vs text (b)."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig05a_wer_vs_scale(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig05a", bench_config)
    show(report)
    metrics = report.metrics
    # WER decreases monotonically with scale on the clean set.
    ladder = [
        "whisper-tiny-sim",
        "whisper-base-sim",
        "whisper-small-sim",
        "whisper-medium-sim",
        "whisper-large-sim",
    ]
    wers = [metrics[f"wer_clean/{name}"] for name in ladder]
    # Monotone up to sampling noise between adjacent scales (percent points).
    assert all(a >= b - 0.6 for a, b in zip(wers, wers[1:], strict=False)), wers
    assert wers[0] > wers[-1]
    # Paper: small models reach ~10 % or less on clean sets.
    assert metrics["wer_clean/whisper-tiny-sim"] < 13.0
    # Paper: large models show a meaningful relative reduction vs small.
    reduction = 1.0 - metrics["wer_clean/whisper-medium-sim"] / metrics[
        "wer_clean/whisper-tiny-sim"
    ]
    assert 0.08 < reduction < 0.60
    # The -other split is harder for every scale.
    for name in ladder:
        assert metrics[f"wer_other/{name}"] > metrics[f"wer_clean/{name}"]


def test_fig05b_accept_topk_asr_vs_text(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig05b", bench_config)
    show(report)
    metrics = report.metrics
    # Paper: ASR drafts are accepted significantly more often than text
    # drafts at every top-k.
    for k in (1, 2, 3):
        assert metrics[f"asr_accept@{k}"] > metrics[f"text_accept@{k}"], k
    # and the ASR accept@1 is already high (audio-conditioned alignment)
    assert metrics["asr_accept@1"] > 0.85
