"""Bench: paper Fig. 13 — truncation threshold sweep and failure ranks."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig13a_threshold_sweep(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig13a", bench_config)
    show(report)
    rows = report.rows  # (threshold, draft steps, verify rounds, ms/10s)

    # Draft steps fall as the threshold rises (more truncation)...
    assert rows[-1][1] < rows[0][1]
    # ...while verification rounds rise (correct tokens get truncated too).
    assert rows[-1][2] > rows[0][2]

    # The optimum sits in the interior of the sweep — the U-shape of
    # Fig. 13a.  The paper's tuned value is 0.4; we accept 0.2-0.6.
    best = report.metrics["best_threshold"]
    assert 0.1 < best < 0.7, best

    # Low thresholds change almost nothing vs threshold 0 (few tokens have
    # logits that low) — the paper's flat region.
    assert abs(rows[1][1] - rows[0][1]) / rows[0][1] < 0.10


def test_fig13b_failure_ranks(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig13b", bench_config)
    show(report)
    shares = {
        key.split("/")[1]: value
        for key, value in report.metrics.items()
        if key.startswith("rank_share/")
    }
    # Paper: the target's token is the draft's *second* choice for the
    # majority of top-1 failures — the basis for top-2 tree expansion.
    assert shares["2"] == max(shares.values())
    assert shares["2"] > 0.40
    # Ranks 2-3 together cover most failures.
    assert shares["2"] + shares["3"] > 0.55
