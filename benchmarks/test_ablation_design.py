"""Ablation benches for SpecASR's internal design choices.

Beyond the paper's Table II ladder, these ablate the knobs DESIGN.md calls
out: recycling on/off, adjacent-position merging, the merge verification
window, branch count, and the online-threshold extension.  Each run prints a
table and asserts that the chosen defaults are no worse than the ablated
variants (within tolerance — some knobs are ties on small corpora).
"""

from dataclasses import replace

from conftest import BENCH_CONFIG, run_once

from repro.core.config import SpecASRConfig, full_specasr
from repro.core.engine import SpecASREngine
from repro.harness.figures import ascii_table
from repro.harness.runner import load_split, shared_vocabulary
from repro.models.registry import model_pair


def _evaluate(config: SpecASRConfig, pairing: str = "whisper"):
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", BENCH_CONFIG)
    draft, target = model_pair(pairing, vocab)
    engine = SpecASREngine(draft, target, config)
    total_ms = steps = recycled = 0.0
    for utterance in dataset:
        result = engine.decode(utterance)
        total_ms += result.total_ms
        steps += result.trace.total_draft_steps
        recycled += result.trace.total_recycled
    n = len(dataset)
    return {"ms": total_ms / n, "steps": steps / n, "recycled": recycled / n}


def test_ablate_recycling(benchmark, capsys):
    def run():
        return {
            "recycling on": _evaluate(SpecASRConfig(recycling=True)),
            "recycling off": _evaluate(SpecASRConfig(recycling=False)),
        }

    rows = run_once(benchmark, run)
    with capsys.disabled():
        print()
        print(
            ascii_table(
                ["variant", "ms/utt", "draft steps/utt", "recycled/utt"],
                [[k, v["ms"], v["steps"], v["recycled"]] for k, v in rows.items()],
                title="[ablation] draft sequence recycling",
            )
        )
    on, off = rows["recycling on"], rows["recycling off"]
    assert on["ms"] < off["ms"]  # recycling pays
    assert on["steps"] < off["steps"]  # because it saves draft passes
    assert on["recycled"] > 0 and off["recycled"] == 0


def test_ablate_adjacent_merge(benchmark, capsys):
    def run():
        return {
            "adjacent on": _evaluate(full_specasr()),
            "adjacent off": _evaluate(replace(full_specasr(), adjacent_merge=False)),
        }

    rows = run_once(benchmark, run)
    with capsys.disabled():
        print()
        print(
            ascii_table(
                ["variant", "ms/utt", "draft steps/utt", "recycled/utt"],
                [[k, v["ms"], v["steps"], v["recycled"]] for k, v in rows.items()],
                title="[ablation] corresponding-vs-adjacent merge positions",
            )
        )
    on, off = rows["adjacent on"], rows["adjacent off"]
    # Substitution-dominated alignment: adjacent merging is a safety net, so
    # parity is acceptable — it must simply never hurt.
    assert on["ms"] <= off["ms"] * 1.02


def test_ablate_merge_window(benchmark, capsys):
    def run():
        return {
            f"window={w}": _evaluate(
                replace(full_specasr(), merge_verify_window=w), pairing="vicuna-13b"
            )
            for w in (0, 4, 8, 16)
        }

    rows = run_once(benchmark, run)
    with capsys.disabled():
        print()
        print(
            ascii_table(
                ["variant", "ms/utt", "draft steps/utt", "recycled/utt"],
                [[k, v["ms"], v["steps"], v["recycled"]] for k, v in rows.items()],
                title="[ablation] TSP merge verification window (vicuna-13b)",
            )
        )
    # Some window beats no window: branch catches must be able to extend.
    best_with_window = min(rows[f"window={w}"]["ms"] for w in (4, 8, 16))
    assert best_with_window <= rows["window=0"]["ms"] * 1.01
    # The default (16) is within 3 % of the best swept value.
    best = min(v["ms"] for v in rows.values())
    assert rows["window=16"]["ms"] <= best * 1.03


def test_ablate_branch_count(benchmark, capsys):
    def run():
        return {
            f"branches={b}": _evaluate(
                replace(full_specasr(), max_branches=b), pairing="vicuna-13b"
            )
            for b in (0, 1, 2, 4)
        }

    rows = run_once(benchmark, run)
    with capsys.disabled():
        print()
        print(
            ascii_table(
                ["variant", "ms/utt", "draft steps/utt", "recycled/utt"],
                [[k, v["ms"], v["steps"], v["recycled"]] for k, v in rows.items()],
                title="[ablation] TSP uncertainty branches (vicuna-13b)",
            )
        )
    # In this simulation branch catches roughly pay for their verification
    # nodes: branching must stay within 2 % of the pure trunk (the paper's
    # statistics, with a higher rank-2 hit rate, tip this net positive).
    with_branches = min(rows[f"branches={b}"]["ms"] for b in (1, 2, 4))
    assert with_branches <= rows["branches=0"]["ms"] * 1.02
    # Default (2) within 3 % of the swept best.
    best = min(v["ms"] for v in rows.values())
    assert rows["branches=2"]["ms"] <= best * 1.03


def test_ablate_adaptive_threshold(benchmark, capsys):
    def run():
        return {
            "fixed 0.4": _evaluate(SpecASRConfig()),
            "adaptive from 0.4": _evaluate(SpecASRConfig(adaptive_threshold=True)),
            "fixed 0.65 (mistuned)": _evaluate(SpecASRConfig(threshold=0.65)),
            "adaptive from 0.65": _evaluate(
                SpecASRConfig(threshold=0.65, adaptive_threshold=True)
            ),
        }

    rows = run_once(benchmark, run)
    with capsys.disabled():
        print()
        print(
            ascii_table(
                ["variant", "ms/utt", "draft steps/utt", "recycled/utt"],
                [[k, v["ms"], v["steps"], v["recycled"]] for k, v in rows.items()],
                title="[ablation] online threshold adaptation (extension)",
            )
        )
    # Adaptation from the tuned value must not hurt materially...
    assert rows["adaptive from 0.4"]["ms"] <= rows["fixed 0.4"]["ms"] * 1.10
    # ...and from a mistuned start it must recover toward the optimum.
    assert (rows["adaptive from 0.65"]["ms"] <= rows["fixed 0.65 (mistuned)"]["ms"])
