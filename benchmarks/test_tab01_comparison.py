"""Bench: paper Table I — speculative families, qualitative + measured."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_tab01_family_comparison(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "tab01", bench_config)
    show(report)
    waste = {row[0]: row[6] for row in report.rows}
    accepted = {row[0]: row[7] for row in report.rows}

    # Draft-generation efficiency: SpecASR wastes fewer drafted tokens per
    # accepted token than the tree families, which expand full trees every
    # round (paper Table I: their draft efficiency is "low").
    assert waste["Ours (SpecASR)"] < waste["Fixed Tree"]
    assert waste["Ours (SpecASR)"] < waste["Dynamic Tree"]

    # Target-verification efficiency: SpecASR accepts more tokens per
    # verification round than every baseline family.
    ours = accepted["Ours (SpecASR)"]
    for family, value in accepted.items():
        if family != "Ours (SpecASR)":
            assert ours > value, family
