"""Bench: paper Table II — the ablation ladder, draft/target/total ms."""

from conftest import run_once

from repro.harness.experiments import run_experiment

BASE = "baseline speculative"
ASP = "+adaptive single-sequence prediction"
REC = "+draft sequence recycling"
TSP = "+two-pass sparse-tree prediction"


def test_tab02_ablation(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "tab02", bench_config)
    show(report)
    draft = {
        k.split("/", 1)[1]: v
        for k, v in report.metrics.items()
        if k.startswith("draft_ms/")
    }
    target = {
        k.split("/", 1)[1]: v
        for k, v in report.metrics.items()
        if k.startswith("target_ms/")
    }
    total = {
        k.split("/", 1)[1]: v
        for k, v in report.metrics.items()
        if k.startswith("total_ms/")
    }

    # Each technique improves the end-to-end total, in order.
    assert total[ASP] < total[BASE]
    assert total[REC] < total[ASP]
    assert total[TSP] < total[REC]

    # ASP cuts *target* time (fewer, better-filled verification rounds)
    # at little draft cost — the paper's first ablation step.
    assert target[ASP] < target[BASE] * 0.95
    assert draft[ASP] < draft[BASE] * 1.35

    # Recycling cuts *draft* time (reused suffixes) without hurting target.
    assert draft[REC] < draft[ASP] * 0.95
    assert target[REC] < target[ASP] * 1.15

    # TSP trades a little draft time for a large target-verification win;
    # paper reports >50 % target reduction vs baseline, we require >25 %.
    assert draft[TSP] > draft[REC] * 0.95
    assert target[TSP] < target[BASE] * 0.75
