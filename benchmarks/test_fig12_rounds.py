"""Bench: paper Fig. 12 — rounds and per-round token statistics."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig12_rounds(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig12", bench_config)
    show(report)
    metrics = report.metrics

    # SpecASR needs far fewer verification rounds than the baselines.
    assert metrics["rounds/specasr-asp"] < metrics["rounds/spec(8,1)"]
    assert metrics["rounds/specasr-tsp"] < metrics["rounds/spec(8,1)"]
    assert metrics["rounds/specasr-tsp"] <= metrics["rounds/specasr-asp"]

    # Accepted tokens per round roughly double vs the (8,1) baseline —
    # the paper reports +106.6 % for TSP.
    gain = metrics["accepted_length_gain_pct"]
    assert 60.0 < gain < 180.0

    # ASP removes most ineffective draft steps (paper: 74.1 %).
    reduction = metrics["ineffective_step_reduction_pct"]
    assert reduction > 30.0

    # ASP keeps a high decoding-acceptance ratio (paper: 94.4 %).
    assert metrics["acceptance_ratio/specasr-asp"] > 0.70

    # TSP trades a bit of acceptance ratio for longer accepted runs.
    assert (
        metrics["acceptance_ratio/specasr-tsp"]
        <= metrics["acceptance_ratio/specasr-asp"]
    )
