"""Bench: paper Fig. 11 — speedups over AR and speculative baselines on all
four LibriSim splits for both LLM targets (the paper's headline result)."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig11_speedup(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig11", bench_config)
    show(report)
    metrics = report.metrics

    # --- headline: SpecASR beats AR decoding everywhere -----------------------
    for key, value in metrics.items():
        if key.startswith("xar/"):
            assert value > 1.5, key

    # --- Vicuna-13B band: paper reports 3.04-3.79x over AR --------------------
    vicuna_best = max(
        value for key, value in metrics.items() if key.startswith("xar/vicuna-13b/")
    )
    assert 2.5 < vicuna_best < 5.0

    # --- Llama-7B band: paper reports 2.08-2.60x over AR ----------------------
    llama_best = max(
        value for key, value in metrics.items() if key.startswith("xar/llama-7b/")
    )
    assert 1.8 < llama_best < 3.5

    # --- the bigger target benefits more (crossover direction) ----------------
    assert vicuna_best > llama_best

    # --- SpecASR beats the best speculative baseline on every split -----------
    for key, value in metrics.items():
        if key.startswith("xspec/") and "specasr-tsp" in key:
            assert value > 1.0, key

    # --- noisy splits degrade the speedup (paper: ~19 %) -----------------------
    clean = metrics["xar/vicuna-13b/test-clean/specasr-tsp"]
    other = metrics["xar/vicuna-13b/test-other/specasr-tsp"]
    assert other < clean
    degradation = 1.0 - other / clean
    assert 0.0 < degradation < 0.40
