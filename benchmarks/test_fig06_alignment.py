"""Bench: paper Fig. 6 — acceptance distribution (a), suffix alignment (b)."""

from conftest import run_once

from repro.harness.experiments import run_experiment


def test_fig06a_acceptance_distribution(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig06a", bench_config)
    show(report)
    # Paper: a substantial proportion of rounds are fully accepted, and the
    # remainder concentrates at low ratios (localized acoustic errors).
    for row in report.rows:
        label, *bins = row
        full_accept_mass = bins[-1]
        assert full_accept_mass > 30.0, label
        middle_mass = sum(bins[1:4])
        assert middle_mass < full_accept_mass, label


def test_fig06b_suffix_alignment(benchmark, bench_config, show):
    report = run_once(benchmark, run_experiment, "fig06b", bench_config)
    show(report)
    # Paper: unaccepted draft suffixes align strongly with the target's
    # verification sequence — the basis of draft recycling.  Right after a
    # rejection the draft is briefly perturbed, then re-anchors, so
    # alignment *rises* with offset before decaying.
    curve = [report.metrics[f"alignment@offset{i}"] for i in range(1, 9)]
    assert max(curve[1:4]) > 0.6
    assert curve[2] > curve[0]
