"""Shared benchmark configuration.

Every bench regenerates one paper figure/table: it runs the corresponding
experiment once under pytest-benchmark timing, prints the paper-vs-measured
report (bypassing capture so it lands in the bench log), and asserts the
*shape* of the paper's result — orderings, ranges and crossovers, not
absolute milliseconds.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import ExperimentConfig

#: Corpus size used by the benches: large enough for stable statistics,
#: small enough that the full bench suite runs in about a minute.
BENCH_CONFIG = ExperimentConfig(seed=2025, utterances=24, min_words=12, max_words=56)


@pytest.fixture()
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture()
def show(capsys):
    """Print a report to the real terminal, bypassing pytest capture."""

    def _show(report) -> None:
        with capsys.disabled():
            print()
            print(report.render())
            print()

    return _show


def run_once(benchmark, func, *args):
    """Run ``func`` exactly once under benchmark timing and return its value."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
