"""Version information for the SpecASR reproduction package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER_TITLE = (
    "SpecASR: Accelerating LLM-based Automatic Speech Recognition "
    "via Speculative Decoding"
)
PAPER_VENUE = "DAC 2025"
PAPER_ARXIV = "2507.18181"
