"""Registry of paper-figure/table experiments.

Each entry maps an experiment id to a callable
``run(config: ExperimentConfig) -> ExperimentReport`` that regenerates the
corresponding figure or table of the paper.
"""

from __future__ import annotations

from typing import Callable

from repro.harness.experiments import (
    ext01,
    fig01,
    fig05,
    fig06,
    fig07,
    fig11,
    fig12,
    fig13,
    tab01,
    tab02,
)
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import ExperimentConfig

EXPERIMENTS: dict[str, Callable[[ExperimentConfig], ExperimentReport]] = {
    "fig01": fig01.run,
    "fig05a": fig05.run_wer,
    "fig05b": fig05.run_topk,
    "fig06a": fig06.run_distribution,
    "fig06b": fig06.run_alignment,
    "fig07": fig07.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13a": fig13.run_threshold,
    "fig13b": fig13.run_rank,
    "tab01": tab01.run,
    "tab02": tab02.run,
    # Extensions beyond the paper's figures:
    "ext01-adaptive": ext01.run_adaptive,
    "ext01-sampling": ext01.run_sampling,
    "ext01-streaming": ext01.run_streaming,
}


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def run_experiment(
    exp_id: str, config: ExperimentConfig | None = None
) -> ExperimentReport:
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {list_experiments()}"
        )
    return EXPERIMENTS[exp_id](config or ExperimentConfig())


__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "list_experiments",
    "run_experiment",
]
