"""Table I — qualitative comparison of speculative families, annotated with
measured quantities from this reproduction."""

from __future__ import annotations

from repro.harness.experiments.base import ExperimentReport
from repro.harness.methods import build_method, table1_families
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import model_pair

#: Representative implemented method per qualitative family.
FAMILY_METHODS = {
    "Single Sequence": "spec(16,1)",
    "Fixed Tree": "fixed-tree",
    "Dynamic Tree": "dynamic-tree",
    "Ours (SpecASR)": "specasr-tsp",
}


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="tab01",
        title="Speculative-decoding families (qualitative + measured)",
        headers=[
            "family",
            "draft eff.",
            "verify eff.",
            "draft len",
            "accept rate",
            "flexibility",
            "measured: waste (drafted/accepted)",
            "measured: acc tok/round",
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    methods = {
        family: build_method(method_name, draft, target)
        for family, method_name in FAMILY_METHODS.items()
    }
    runs = run_methods(methods, dataset, check_lossless=True, workers=config.workers)
    for family_info in table1_families():
        run_result = runs[family_info.family]
        drafted = sum(r.trace.total_drafted for r in run_result.results)
        accepted = sum(r.trace.total_accepted for r in run_result.results)
        waste = drafted / accepted if accepted else float("inf")
        report.rows.append(
            [
                family_info.family,
                family_info.draft_efficiency,
                family_info.verify_efficiency,
                family_info.draft_length,
                family_info.accept_rate,
                family_info.flexibility,
                waste,
                run_result.accepted_per_round,
            ]
        )
        report.metrics[f"waste/{family_info.family}"] = waste
        report.metrics[f"accepted_per_round/{family_info.family}"] = (
            run_result.accepted_per_round
        )
    return report
