"""Fig. 12 — rounds and per-round token statistics of speculative methods."""

from __future__ import annotations

from repro.harness.experiments.base import ExperimentReport
from repro.harness.methods import standard_methods
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import model_pair


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="fig12",
        title="Rounds and per-round statistics on test-clean (whisper pair)",
        headers=[
            "method",
            "rounds/utt",
            "draft steps/utt",
            "predicted tok/round",
            "accepted tok/round",
            "acceptance ratio (%)",
            "recycled tok/utt",
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    methods = standard_methods(draft, target)
    methods.pop("autoregressive")  # no speculation rounds to report
    runs = run_methods(methods, dataset, check_lossless=True, workers=config.workers)

    baseline = runs["spec(8,1)"]
    base_ineffective = (
        baseline.mean_draft_steps - baseline.accepted_per_round * baseline.mean_rounds
    )
    for name, run_result in runs.items():
        report.rows.append(
            [
                name,
                run_result.mean_rounds,
                run_result.mean_draft_steps,
                run_result.submitted_per_round,
                run_result.accepted_per_round,
                100.0 * run_result.acceptance_ratio,
                run_result.recycled_per_utterance,
            ]
        )
        report.metrics[f"rounds/{name}"] = run_result.mean_rounds
        report.metrics[f"accepted_per_round/{name}"] = run_result.accepted_per_round
        report.metrics[f"acceptance_ratio/{name}"] = run_result.acceptance_ratio

    # Headline derived quantities the paper quotes.
    asp = runs["specasr-asp"]
    asp_ineffective = asp.mean_draft_steps - asp.accepted_per_round * asp.mean_rounds
    if base_ineffective > 0:
        reduction = 100.0 * (1.0 - asp_ineffective / base_ineffective)
        report.metrics["ineffective_step_reduction_pct"] = reduction
        report.extra_sections.append(
            f"ineffective draft-step reduction (ASP vs spec(8,1)): {reduction:.1f} % "
            "(paper: 74.1 %)"
        )
    tsp = runs["specasr-tsp"]
    gain = 100.0 * (tsp.accepted_per_round / baseline.accepted_per_round - 1.0)
    report.metrics["accepted_length_gain_pct"] = gain
    report.extra_sections.append(
        f"accepted tokens/round gain (TSP vs spec(8,1)): +{gain:.1f} % "
        "(paper: +106.6 %)"
    )
    return report
