"""Fig. 7 — draft vs target share of decoding latency across configurations."""

from __future__ import annotations

from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import ExperimentConfig, load_split, run_method, shared_vocabulary
from repro.models.registry import PAIRINGS, model_pair


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="fig07",
        title="Draft/target latency share vs prediction length (test-clean)",
        headers=["pairing", "prediction len", "draft share (%)", "target share (%)"],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    for pairing in PAIRINGS:
        draft, target = model_pair(pairing, vocab)
        for gamma in (4, 8, 16, 24):
            decoder = SpeculativeDecoder(
                draft, target, SpeculativeConfig(draft_len=gamma)
            )
            run_result = run_method(decoder, dataset)
            breakdown = run_result.breakdown
            draft_share = 100.0 * breakdown.model_share(draft.name)
            target_share = 100.0 * breakdown.model_share(target.name)
            report.rows.append([pairing, gamma, draft_share, target_share])
            report.metrics[f"draft_share/{pairing}/gamma{gamma}"] = draft_share
    return report
