"""Fig. 7 — draft vs target share of decoding latency across configurations."""

from __future__ import annotations

from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import PAIRINGS, model_pair


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="fig07",
        title="Draft/target latency share vs prediction length (test-clean)",
        headers=["pairing", "prediction len", "draft share (%)", "target share (%)"],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    gammas = (4, 8, 16, 24)
    for pairing in PAIRINGS:
        draft, target = model_pair(pairing, vocab)
        # One batched corpus run (one worker pool) across the gamma sweep.
        decoders = {
            f"gamma{gamma}": SpeculativeDecoder(
                draft, target, SpeculativeConfig(draft_len=gamma)
            )
            for gamma in gammas
        }
        runs = run_methods(
            decoders, dataset, check_lossless=False, workers=config.workers
        )
        for gamma in gammas:
            breakdown = runs[f"gamma{gamma}"].breakdown
            draft_share = 100.0 * breakdown.model_share(draft.name)
            target_share = 100.0 * breakdown.model_share(target.name)
            report.rows.append([pairing, gamma, draft_share, target_share])
            report.metrics[f"draft_share/{pairing}/gamma{gamma}"] = draft_share
    return report
