"""Experiment report type shared by every per-figure experiment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.figures import ascii_table
from repro.harness.paper_values import paper_notes


@dataclass
class ExperimentReport:
    """Output of one paper-figure/table reproduction."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    extra_sections: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [
            ascii_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        ]
        parts.extend(self.extra_sections)
        notes = paper_notes(self.exp_id.split("-")[0])
        if notes:
            parts.append(notes)
        return "\n\n".join(parts)
