"""Extension experiments (beyond the paper's figures).

``ext01-adaptive``  — online threshold adaptation vs fixed thresholds.
``ext01-sampling``  — speculative sampling acceptance/latency profile.
``ext01-streaming`` — streaming latency profile of SpecASR vs AR decoding.
"""

from __future__ import annotations

from repro.core.config import SpecASRConfig, full_specasr
from repro.core.engine import SpecASREngine
from repro.core.streaming import StreamingConfig, StreamingSpecASR
from repro.decoding.sampling import SamplingConfig, SpeculativeSamplingDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_method,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import model_pair


def run_adaptive(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Fixed vs adaptive truncation thresholds, well- and mis-tuned starts."""
    report = ExperimentReport(
        exp_id="ext01-adaptive",
        title="Online threshold adaptation (extension)",
        headers=["variant", "ms/10s", "draft steps/utt", "rounds/utt"],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    variants = {
        "fixed 0.4": SpecASRConfig(),
        "adaptive from 0.4": SpecASRConfig(adaptive_threshold=True),
        "fixed 0.65 (mistuned)": SpecASRConfig(threshold=0.65),
        "adaptive from 0.65": SpecASRConfig(threshold=0.65, adaptive_threshold=True),
    }
    engines = {
        label: SpecASREngine(draft, target, cfg, name=label)
        for label, cfg in variants.items()
    }
    # One batched corpus run (one worker pool) instead of one per variant.
    runs = run_methods(engines, dataset, check_lossless=False, workers=config.workers)
    for label, run in runs.items():
        report.rows.append(
            [label, run.breakdown.ms_per_10s, run.mean_draft_steps, run.mean_rounds]
        )
        report.metrics[f"ms/{label}"] = run.breakdown.ms_per_10s
    return report


def run_sampling(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Speculative sampling acceptance and latency across model pairs."""
    report = ExperimentReport(
        exp_id="ext01-sampling",
        title="Speculative sampling (extension)",
        headers=["pairing", "ms/10s", "acceptance ratio (%)", "rounds/utt"],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    for pairing in ("whisper", "llama-7b", "vicuna-13b"):
        draft, target = model_pair(pairing, vocab)
        decoder = SpeculativeSamplingDecoder(
            draft, target, SamplingConfig(seed=config.seed, draft_len=8)
        )
        run = run_method(decoder, dataset, workers=config.workers)
        report.rows.append(
            [
                pairing,
                run.breakdown.ms_per_10s,
                100.0 * run.acceptance_ratio,
                run.mean_rounds,
            ]
        )
        report.metrics[f"acceptance/{pairing}"] = run.acceptance_ratio
    return report


def run_streaming(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Streaming latency profile: first-token latency, tail latency, RTF."""
    report = ExperimentReport(
        exp_id="ext01-streaming",
        title="Streaming SpecASR latency profile (extension)",
        headers=[
            "pairing",
            "first-token (s)",
            "tail after EOS (ms)",
            "real-time factor",
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    for pairing in ("whisper", "vicuna-13b"):
        draft, target = model_pair(pairing, vocab)
        streamer = StreamingSpecASR(
            draft,
            target,
            StreamingConfig(chunk_s=1.0, specasr=full_specasr()),
        )
        firsts: list[float] = []
        tail = rtf = 0.0
        for utterance in dataset:
            result = streamer.decode_stream(utterance)
            # Empty transcripts have no first token (latency is None):
            # excluded from the mean rather than counted as a perfect 0.0.
            if result.first_token_latency_s is not None:
                firsts.append(result.first_token_latency_s)
            tail += result.final_latency_s * 1000.0
            rtf += result.real_time_factor
        n = len(dataset)
        mean_first = sum(firsts) / len(firsts) if firsts else 0.0
        report.rows.append([pairing, mean_first, tail / n, rtf / n])
        report.metrics[f"rtf/{pairing}"] = rtf / n
    return report
