"""Fig. 11 — speedup of every method over AR and speculative baselines,
on all four LibriSim splits, for the Llama-7B and Vicuna-13B targets."""

from __future__ import annotations

from repro.data.librisim import SPLITS
from repro.harness.experiments.base import ExperimentReport
from repro.harness.methods import standard_methods
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import model_pair


def run(
    config: ExperimentConfig = ExperimentConfig(),
    pairings: tuple[str, ...] = ("llama-7b", "vicuna-13b"),
    splits: tuple[str, ...] = SPLITS,
) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="fig11",
        title="Speedup over autoregressive and speculative baselines",
        headers=[
            "pairing", "split", "method", "ms/10s", "x over AR", "x over best spec"
        ],
    )
    vocab = shared_vocabulary()
    for pairing in pairings:
        draft, target = model_pair(pairing, vocab)
        for split in splits:
            dataset = load_split(split, config)
            runs = run_methods(
                standard_methods(draft, target), dataset, workers=config.workers
            )
            ar_ms = runs["autoregressive"].breakdown.total_ms
            spec_names = [n for n in runs if n.startswith("spec(")]
            best_spec_ms = min(runs[n].breakdown.total_ms for n in spec_names)
            for name, run_result in runs.items():
                ms = run_result.breakdown.total_ms
                report.rows.append(
                    [
                        pairing,
                        split,
                        name,
                        run_result.breakdown.ms_per_10s,
                        ar_ms / ms,
                        best_spec_ms / ms,
                    ]
                )
                if name.startswith("specasr"):
                    report.metrics[f"xar/{pairing}/{split}/{name}"] = ar_ms / ms
                    report.metrics[f"xspec/{pairing}/{split}/{name}"] = (
                        best_spec_ms / ms
                    )
    return report
