"""Fig. 1 — parameter ratio and relative latency of encoder vs LLM decoder."""

from __future__ import annotations

from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import PAIRINGS, get_model, get_spec, published_asr_configs


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="fig01",
        title="Encoder vs LLM-decoder parameter and latency split",
        headers=[
            "system",
            "encoder (B)",
            "decoder (B)",
            "decoder share (%)",
            "enc ms/10s",
            "decode ms/10s",
            "decoder latency share (%)",
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)

    # Published configurations (parameter split from the cited papers).
    for published in published_asr_configs():
        total = published.encoder_params_b + published.decoder_params_b
        report.rows.append(
            [
                published.name + " (paper cfg)",
                published.encoder_params_b,
                published.decoder_params_b,
                100.0 * published.decoder_params_b / total,
                "-",
                "-",
                100.0 * (1.0 - published.encoder_latency_share),
            ]
        )

    # Our simulated target models: measure AR decode vs encoder latency.
    for pairing, (_draft_name, target_name) in PAIRINGS.items():
        spec = get_spec(target_name)
        target = get_model(target_name, vocab)
        decoder = AutoregressiveDecoder(target)
        encode_ms = decode_ms = 0.0
        duration = 0.0
        for utterance in dataset:
            result = decoder.decode(utterance)
            encode_ms += result.clock.total_for_kind("encode")
            decode_ms += result.clock.total_for_kind("decode", "prefill")
            duration += utterance.duration_s
        total_params = spec.encoder_params_b + spec.decoder_params_b
        total_ms = encode_ms + decode_ms
        report.rows.append(
            [
                f"{target_name} ({pairing})",
                spec.encoder_params_b,
                spec.decoder_params_b,
                100.0 * spec.decoder_params_b / total_params,
                encode_ms * 10.0 / duration,
                decode_ms * 10.0 / duration,
                100.0 * decode_ms / total_ms,
            ]
        )
        report.metrics[f"decoder_latency_share/{target_name}"] = decode_ms / total_ms
    return report
