"""Table II — ablation: baseline speculative → +ASP → +recycling → +TSP.

Reports draft/target/total *decoding* milliseconds per 10 s of audio on the
LibriSim test-clean split with the Whisper tiny+medium simulated pair — the
same protocol as the paper's Table II.  Decoding latency excludes the audio
encoder and prefill (constant across methods); a separate column shows the
end-to-end total for completeness.
"""

from __future__ import annotations

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.models.registry import model_pair

#: Paper Table II values: (draft ms, target ms, total ms) per 10 s audio.
PAPER_TABLE2 = {
    "baseline speculative": (231.06, 254.48, 485.54),
    "+adaptive single-sequence prediction": (236.23, 191.20, 427.43),
    "+draft sequence recycling": (189.48, 199.52, 389.00),
    "+two-pass sparse-tree prediction": (244.62, 123.17, 367.79),
}


def ablation_ladder(draft, target) -> dict[str, object]:
    """The four ablation configurations of Table II."""
    return {
        "baseline speculative": SpeculativeDecoder(
            draft, target, SpeculativeConfig(draft_len=8, beams=1)
        ),
        "+adaptive single-sequence prediction": SpecASREngine(
            draft, target, SpecASRConfig(recycling=False), name="asp"
        ),
        "+draft sequence recycling": SpecASREngine(
            draft, target, SpecASRConfig(recycling=True), name="asp+rec"
        ),
        "+two-pass sparse-tree prediction": SpecASREngine(
            draft, target, SpecASRConfig(recycling=True, sparse_tree=True), name="tsp"
        ),
    }


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    report = ExperimentReport(
        exp_id="tab02",
        title="Ablation: decoding ms per 10 s audio (test-clean, whisper pair)",
        headers=[
            "method",
            "draft (ms)",
            "target (ms)",
            "total (ms)",
            "paper draft",
            "paper target",
            "paper total",
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    runs = run_methods(
        ablation_ladder(draft, target),
        dataset,
        check_lossless=True,
        workers=config.workers,
    )
    duration = dataset.total_duration_s
    for name, run_result in runs.items():
        draft_ms = target_ms = 0.0
        for result in run_result.results:
            # Decoding only: draft speculation steps + target verification.
            draft_ms += sum(
                e.ms
                for e in result.clock.events
                if e.model == draft.name and e.kind == "draft"
            )
            target_ms += sum(
                e.ms
                for e in result.clock.events
                if e.model == target.name and e.kind in ("verify", "decode")
            )
        scale = 10.0 / duration
        paper = PAPER_TABLE2[name]
        report.rows.append(
            [
                name,
                draft_ms * scale,
                target_ms * scale,
                (draft_ms + target_ms) * scale,
                paper[0],
                paper[1],
                paper[2],
            ]
        )
        report.metrics[f"draft_ms/{name}"] = draft_ms * scale
        report.metrics[f"target_ms/{name}"] = target_ms * scale
        report.metrics[f"total_ms/{name}"] = (draft_ms + target_ms) * scale
    return report
