"""Fig. 13 — truncation-threshold sweep (a) and failure rank distribution (b)."""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.metrics.acceptance import rank_distribution_on_failure
from repro.models.registry import model_pair

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


def run_threshold(
    config: ExperimentConfig = ExperimentConfig(),
) -> ExperimentReport:
    """Fig. 13a: draft/target step counts across truncation thresholds."""
    report = ExperimentReport(
        exp_id="fig13a",
        title="ASP step counts vs truncation threshold (test-clean, whisper pair)",
        headers=["threshold", "draft steps/utt", "verify rounds/utt", "total ms/10s"],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    base = SpecASRConfig(recycling=False)
    best_threshold, best_ms = None, float("inf")
    # One batched corpus run (one worker pool) across all thresholds.
    engines = {
        f"asp@{threshold}": SpecASREngine(
            draft, target, replace(base, threshold=threshold), name="asp"
        )
        for threshold in THRESHOLDS
    }
    runs = run_methods(engines, dataset, check_lossless=False, workers=config.workers)
    for threshold in THRESHOLDS:
        run_result = runs[f"asp@{threshold}"]
        ms = run_result.breakdown.ms_per_10s
        report.rows.append(
            [threshold, run_result.mean_draft_steps, run_result.mean_rounds, ms]
        )
        report.metrics[f"ms/threshold{threshold}"] = ms
        if ms < best_ms:
            best_threshold, best_ms = threshold, ms
    report.metrics["best_threshold"] = best_threshold or 0.0
    report.extra_sections.append(
        f"fastest threshold: {best_threshold} (paper optimum: 0.4)"
    )
    return report


def run_rank(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Fig. 13b: rank of the target token in the draft logits on failure."""
    report = ExperimentReport(
        exp_id="fig13b",
        title="Rank of target token in draft top-k when top-1 fails",
        headers=["rank", "share (%)"],
    )
    vocab = shared_vocabulary()
    units = list(load_split("test-clean", config)) + list(
        load_split("test-other", config)
    )
    draft, target = model_pair("whisper", vocab)
    distribution = rank_distribution_on_failure(draft, target, units, max_rank=5)
    for rank, share in distribution.items():
        report.rows.append([rank, 100.0 * share])
        report.metrics[f"rank_share/{rank}"] = share
    return report
