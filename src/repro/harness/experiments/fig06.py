"""Fig. 6 — acceptance-ratio distribution (a) and post-rejection alignment (b)."""

from __future__ import annotations

from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.metrics.acceptance import acceptance_histogram, suffix_alignment_curve
from repro.models.registry import model_pair


def run_distribution(
    config: ExperimentConfig = ExperimentConfig(),
) -> ExperimentReport:
    """Fig. 6a: per-round acceptance-ratio histogram for γ ∈ {8, 16, 24}."""
    report = ExperimentReport(
        exp_id="fig06a",
        title="Acceptance-ratio distribution by prediction length (test-clean)",
        headers=[
            "prediction len", "0.0-0.2", "0.2-0.4", "0.4-0.6", "0.6-0.8", "0.8-1.0"
        ],
    )
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", config)
    draft, target = model_pair("whisper", vocab)
    for gamma in (8, 16, 24):
        decoder = SpeculativeDecoder(draft, target, SpeculativeConfig(draft_len=gamma))
        ratios = []
        for utterance in dataset:
            result = decoder.decode(utterance)
            ratios.extend(r.acceptance_ratio for r in result.trace.rounds)
        histogram = acceptance_histogram(ratios, bins=5)
        report.rows.append([f"gamma={gamma}"] + [100.0 * f for _, f in histogram])
        report.metrics[f"full_accept_mass/gamma{gamma}"] = histogram[-1][1]
    return report


def run_alignment(
    config: ExperimentConfig = ExperimentConfig(),
) -> ExperimentReport:
    """Fig. 6b: unaccepted draft suffix vs the target's verification sequence."""
    report = ExperimentReport(
        exp_id="fig06b",
        title="Post-rejection draft/target alignment by offset (test-clean)",
        headers=["offset after rejection"] + [str(i + 1) for i in range(8)],
    )
    vocab = shared_vocabulary()
    units = list(load_split("test-clean", config))
    draft, target = model_pair("whisper", vocab)
    curve = suffix_alignment_curve(draft, target, units, draft_len=16, max_offset=8)
    report.rows.append(["match rate (%)"] + [100.0 * c for c in curve])
    for index, value in enumerate(curve):
        report.metrics[f"alignment@offset{index + 1}"] = value
    return report
