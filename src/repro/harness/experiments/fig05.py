"""Fig. 5 — WER vs model scale (a) and accept@top-k, ASR vs text (b)."""

from __future__ import annotations

from repro.data.text_tasks import TextTaskConfig, build_text_corpus
from repro.harness.experiments.base import ExperimentReport
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.metrics.acceptance import accept_at_topk
from repro.metrics.wer import model_wer
from repro.models.latency import LatencyProfile
from repro.models.registry import get_model, get_spec
from repro.models.textlm import SimulatedTextLM

#: Whisper-family scale ladder evaluated in Fig. 5a.
SCALE_LADDER = (
    "whisper-tiny-sim",
    "whisper-base-sim",
    "whisper-small-sim",
    "whisper-medium-sim",
    "whisper-large-sim",
)


def run_wer(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Fig. 5a: WER of multiple model scales on clean and noisy sets."""
    report = ExperimentReport(
        exp_id="fig05a",
        title="WER vs model scale (LibriSim clean/other)",
        headers=[
            "model", "params (B)", "WER clean (%)", "WER other (%)", "vs tiny (%)"
        ],
    )
    vocab = shared_vocabulary()
    clean = load_split("test-clean", config)
    other = load_split("test-other", config)
    tiny_clean = None
    for name in SCALE_LADDER:
        model = get_model(name, vocab)
        wer_clean = 100.0 * model_wer(model, clean)
        wer_other = 100.0 * model_wer(model, other)
        if tiny_clean is None:
            tiny_clean = wer_clean
        reduction = 100.0 * (1.0 - wer_clean / tiny_clean) if tiny_clean else 0.0
        report.rows.append(
            [name, get_spec(name).total_params_b, wer_clean, wer_other, reduction]
        )
        report.metrics[f"wer_clean/{name}"] = wer_clean
        report.metrics[f"wer_other/{name}"] = wer_other
    return report


def _text_pair(vocab):
    """A draft/target text-LM pair mirroring the tinyllama/llama-7b scales."""
    draft_spec = get_spec("tinyllama-sim")
    target_spec = get_spec("llama-7b-sim")

    def profile(spec) -> LatencyProfile:
        return spec.latency

    draft = SimulatedTextLM(
        "text-draft", draft_spec.capacity, profile(draft_spec), vocab, pair_seed=17
    )
    target = SimulatedTextLM(
        "text-target", target_spec.capacity, profile(target_spec), vocab, pair_seed=17
    )
    return draft, target


def run_topk(config: ExperimentConfig = ExperimentConfig()) -> ExperimentReport:
    """Fig. 5b: speculative acceptance with top-k logits, ASR vs text."""
    report = ExperimentReport(
        exp_id="fig05b",
        title="Accept@top-k along the target greedy path: ASR vs text",
        headers=["task", "k=1", "k=2", "k=3", "k=4", "k=5"],
    )
    vocab = shared_vocabulary()
    asr_units = list(load_split("test-clean", config))[: config.utterances]
    from repro.models.registry import model_pair

    asr_draft, asr_target = model_pair("llama-7b", vocab)
    asr_curve = accept_at_topk(asr_draft, asr_target, asr_units, max_k=5)
    report.rows.append(["ASR (audio-conditioned)"] + [100.0 * a for a in asr_curve])

    text_draft, text_target = _text_pair(vocab)
    prompts = build_text_corpus(
        TextTaskConfig(seed=config.seed, num_prompts=min(config.utterances, 24))
    )
    text_curve = accept_at_topk(text_draft, text_target, prompts, max_k=5)
    report.rows.append(["Text (prefix-conditioned)"] + [100.0 * a for a in text_curve])

    for k in range(5):
        report.metrics[f"asr_accept@{k + 1}"] = asr_curve[k]
        report.metrics[f"text_accept@{k + 1}"] = text_curve[k]
    return report
