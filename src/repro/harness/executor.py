"""Parallel corpus execution: fan decode work out across workers.

A corpus run is embarrassingly parallel — every (method, utterance) decode
is independent, deterministic, and carries its own :class:`SimClock` — so
the only requirements on a parallel runner are **deterministic result
ordering** (results must come back keyed by (method, utterance index), not
by completion order) and **per-worker model state** (each process builds its
own decoders once and keeps its oracle caches warm across tasks).

Backends:

* ``serial``  — plain in-process loop (the reference behaviour);
* ``thread``  — a thread pool sharing the caller's decoder objects.  Decoders
  are reentrant (all decode state is per-call), so this is safe, but the
  simulation is pure Python and the GIL limits real speedup;
* ``process`` — a process pool.  The methods (or a zero-argument factory
  building them) and the dataset are shipped once per worker via the pool
  initializer; tasks then reference them by name, so each worker's oracle
  caches persist across its tasks;
* ``auto``    — ``process`` when the work can be pickled, else ``thread``.

Transcripts, traces and SimClock totals are bit-identical to the serial
runner for every backend: decodes don't interact, and aggregation happens
in the parent in corpus order.

Two consumption styles:

* :meth:`CorpusExecutor.map_decode` materialises the full grid (small
  corpora, figure reports);
* :meth:`CorpusExecutor.iter_results` streams ``(method, index, result)``
  triples in deterministic grid order while keeping only a bounded window
  of tasks in flight — very large corpora never hold every DecodeResult in
  the parent at once.

:meth:`CorpusExecutor.map_jobs` is the generic worker-pool plumbing under
non-decode workloads (e.g. serve-simulation QPS sweeps): any picklable
module-level function over a list of job arguments, results in job order.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.data.corpus import Dataset
from repro.decoding.base import DecodeResult

BACKENDS = ("serial", "thread", "process", "auto")

#: Worker-process globals installed by :func:`_init_worker`.
_WORKER_METHODS: dict[str, object] | None = None
_WORKER_DATASET: Dataset | None = None


def default_worker_count() -> int:
    """A sensible worker count for this machine (bounded small)."""
    return max(1, min(os.cpu_count() or 1, 8))


def _init_worker(methods_or_factory, dataset: Dataset) -> None:
    """Build this worker's decoders once; tasks reference them by name."""
    global _WORKER_METHODS, _WORKER_DATASET
    if callable(methods_or_factory):
        _WORKER_METHODS = methods_or_factory()
    else:
        _WORKER_METHODS = methods_or_factory
    _WORKER_DATASET = dataset


def _decode_task(method: str, index: int) -> DecodeResult:
    assert _WORKER_METHODS is not None and _WORKER_DATASET is not None
    return _WORKER_METHODS[method].decode(_WORKER_DATASET[index])


@dataclass(frozen=True)
class ExecutorStats:
    """How the last run was executed (for benches and reports)."""

    backend: str
    workers: int
    tasks: int


class CorpusExecutor:
    """Runs (method × utterance) decode grids with deterministic ordering.

    ``methods`` may be a mapping of live decoders or a zero-argument factory
    returning one.  A factory is preferred for the process backend: it is
    cheap to pickle and each worker builds fresh models, so nothing shared
    needs to cross process boundaries.
    """

    def __init__(self, workers: int = 1, backend: str = "auto") -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.backend = backend
        self.last_stats: ExecutorStats | None = None

    # -- public API ----------------------------------------------------------
    def map_decode(
        self,
        methods: Mapping[str, object] | Callable[[], Mapping[str, object]],
        dataset: Dataset,
        method_order: Sequence[str] | None = None,
    ) -> dict[str, list[DecodeResult]]:
        """Decode every utterance with every method.

        Returns ``{method: [result per utterance, in corpus order]}`` with
        the same content regardless of backend or worker count.
        """
        if len(dataset) == 0:
            # Empty corpus: no tasks to stream, but callers still expect one
            # (empty) row per method.
            live = methods() if callable(methods) else methods
            names = list(method_order) if method_order is not None else list(live)
            self.last_stats = ExecutorStats("serial", self.workers, 0)
            return {name: [] for name in names}
        # The grid fills lazily from the stream so a callable ``methods``
        # factory is resolved exactly once (inside iter_results), never here.
        grid: dict[str, list[DecodeResult | None]] = {}
        for name, index, result in self.iter_results(methods, dataset, method_order):
            row = grid.get(name)
            if row is None:
                row = grid[name] = [None] * len(dataset)
            row[index] = result
        complete = {name: list(results) for name, results in grid.items()}
        return complete  # type: ignore[return-value]

    def iter_results(
        self,
        methods: Mapping[str, object] | Callable[[], Mapping[str, object]],
        dataset: Dataset,
        method_order: Sequence[str] | None = None,
        window: int | None = None,
    ) -> Iterator[tuple[str, int, DecodeResult]]:
        """Stream ``(method, index, result)`` in deterministic grid order.

        Unlike :meth:`map_decode`, results are yielded as soon as the next
        triple *in grid order* is ready, and at most ``window`` tasks
        (default ``4 × workers``) are in flight at once — a very large
        corpus is never materialised in the parent.  Content is identical
        to the serial loop for every backend.

        The pool lives inside the generator: abandoning it mid-iteration
        shuts the pool down when the generator is garbage collected.
        """
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        live = methods() if callable(methods) else methods
        names = list(method_order) if method_order is not None else list(live)
        tasks = [(name, index) for name in names for index in range(len(dataset))]
        backend = self._effective_backend(methods, live, dataset)
        self.last_stats = ExecutorStats(backend, self.workers, len(tasks))

        if backend == "serial":
            for name, index in tasks:
                yield name, index, live[name].decode(dataset[index])
            return
        window = window if window is not None else max(4 * self.workers, 4)
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                def submit(name: str, index: int):
                    return pool.submit(live[name].decode, dataset[index])

                yield from _stream_ordered(tasks, submit, window)
        else:  # process
            payload = methods if callable(methods) else live
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(payload, dataset),
            ) as pool:
                def submit(name: str, index: int):
                    return pool.submit(_decode_task, name, index)

                yield from _stream_ordered(tasks, submit, window)

    def map_jobs(self, fn: Callable, jobs: Sequence) -> list:
        """Run ``fn(job)`` for every job; results come back in job order.

        Generic worker-pool plumbing shared by non-decode workloads (serve
        QPS sweeps, calibration grids).  For the process backend ``fn`` must
        be a picklable module-level callable; ``auto`` falls back to a
        thread pool when pickling fails and to the serial loop for a single
        worker.
        """
        jobs = list(jobs)
        backend = self._job_backend(fn, jobs)
        self.last_stats = ExecutorStats(backend, self.workers, len(jobs))
        if backend == "serial":
            return [fn(job) for job in jobs]
        pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=self.workers) as pool:
            futures = [pool.submit(fn, job) for job in jobs]
            return [future.result() for future in futures]

    # -- helpers -------------------------------------------------------------
    def _effective_backend(self, methods, live, dataset) -> str:
        if self.workers <= 1:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if (os.cpu_count() or 1) <= 1:
            # Pools are pure overhead on a single core; the fastest plan for
            # this hardware is the serial loop (results are identical).
            return "serial"
        if callable(methods):
            return "process"
        try:
            # Probe with one decoder and one utterance — representative of
            # the full payload without serializing the whole corpus twice.
            # Which decoder gets probed is irrelevant (they share a class
            # shape), so the arbitrary selection is deliberately fine here.
            probe = next(iter(live.values()), None)  # repro: ignore[DET004]
            pickle.dumps(probe)
            if len(dataset):
                pickle.dumps(dataset[0])
        except Exception:
            return "thread"
        return "process"

    def _job_backend(self, fn, jobs) -> str:
        if self.workers <= 1 or not jobs:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if (os.cpu_count() or 1) <= 1:
            return "serial"
        try:
            pickle.dumps(fn)
            pickle.dumps(jobs[0])
        except Exception:
            return "thread"
        return "process"


def _stream_ordered(
    tasks: Sequence[tuple[str, int]],
    submit: Callable,
    window: int,
) -> Iterator[tuple[str, int, DecodeResult]]:
    """Yield task results in task order with at most ``window`` in flight."""
    pending: deque = deque()
    task_iter = iter(tasks)
    for task in tasks[:window]:
        pending.append((task, submit(*task)))
        next(task_iter)
    while pending:
        (name, index), future = pending.popleft()
        result = future.result()
        refill = next(task_iter, None)
        if refill is not None:
            pending.append((refill, submit(*refill)))
        yield name, index, result
