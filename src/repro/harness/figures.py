"""Plain-text rendering of tables and bar charts for experiment reports.

The paper's figures are bar/line charts; in a terminal-only reproduction we
render the same series as ASCII tables and horizontal bars so every bench can
print the rows a reader would compare against the paper.
"""

from __future__ import annotations

from typing import Sequence


def format_value(value) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render a fixed-width table."""
    formatted = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Render one horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values, strict=True):
        bar = "#" * max(1, int(round(abs(value) / peak * width))) if value else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {format_value(value)}{unit}")
    return "\n".join(lines)
