"""Values the paper reports, used for paper-vs-measured comparison.

Each entry records the quantity, where it appears in the paper, and the
published value(s).  Benches print these next to measured values;
EXPERIMENTS.md summarises both.  Absolute milliseconds are calibration
anchors (our latency model is tuned toward Table II); speedup *ratios* and
qualitative orderings are the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperValue:
    experiment: str
    quantity: str
    value: str


PAPER_VALUES: dict[str, list[PaperValue]] = {
    "fig01": [
        PaperValue("fig01", "audio encoder size", "generally <1 B, often <100 M"),
        PaperValue("fig01", "LLM decoder size", "1.1 B (BESTOW) / 7 B (Speech-Llama) / >10 B (Seed-ASR)"),
        PaperValue("fig01", "latency split", "LLM decoder dominates end-to-end ASR latency"),
    ],
    "fig05a": [
        PaperValue("fig05a", "WER reduction large vs small", "20-33 %"),
        PaperValue("fig05a", "small-model WER", "as low as 10 % or less"),
    ],
    "fig05b": [
        PaperValue("fig05b", "draft acceptance, ASR vs text", "ASR drafts accepted significantly more often at every top-k"),
    ],
    "fig06a": [
        PaperValue("fig06a", "acceptance-ratio distribution", "large fully-accepted mass; remainder concentrated at low ratios"),
    ],
    "fig06b": [
        PaperValue("fig06b", "unaccepted suffix vs verification sequence", "high alignment (motivates recycling)"),
    ],
    "fig07": [
        PaperValue("fig07", "latency share vs prediction length", "draft share grows with prediction length; target share grows with target size"),
    ],
    "fig11": [
        PaperValue("fig11", "speedup over AR (Llama-7B)", "2.08-2.60x"),
        PaperValue("fig11", "speedup over AR (Vicuna-13B)", "3.04-3.79x"),
        PaperValue("fig11", "speedup over spec baselines", "1.25-1.84x (Vicuna-13B), 1.21-1.45x (Llama-7B)"),
        PaperValue("fig11", "noisy-set degradation", "~19 % lower speedup on -other splits"),
    ],
    "fig12": [
        PaperValue("fig12", "ineffective draft steps removed by ASP", "74.1 %"),
        PaperValue("fig12", "decoding-acceptance ratio (ASP)", "94.4 %"),
        PaperValue("fig12", "accepted length per round (TSP)", "+106.6 % vs baseline speculative"),
    ],
    "fig13a": [
        PaperValue("fig13a", "optimal truncation threshold", "0.4"),
        PaperValue("fig13a", "draft steps vs threshold", "decrease as threshold rises; target steps rise sharply past optimum"),
    ],
    "fig13b": [
        PaperValue("fig13b", "target token at draft rank 2", "over two-thirds of top-1 failures"),
    ],
    "tab01": [
        PaperValue("tab01", "SpecASR profile", "high draft efficiency, high verify efficiency, high draft length, high accept rate, high flexibility"),
    ],
    "tab02": [
        PaperValue("tab02", "baseline speculative (draft/target/total ms per 10 s)", "231.06 / 254.48 / 485.54"),
        PaperValue("tab02", "+ASP", "236.23 / 191.20 / 427.43"),
        PaperValue("tab02", "+recycling", "189.48 / 199.52 / 389.00"),
        PaperValue("tab02", "+TSP", "244.62 / 123.17 / 367.79"),
        PaperValue("tab02", "TSP target-verification reduction", ">50 % vs baseline speculative"),
    ],
}


def paper_notes(experiment: str) -> str:
    """One-line-per-quantity summary of the paper's reported values."""
    entries = PAPER_VALUES.get(experiment, [])
    return "\n".join(f"  paper: {e.quantity} = {e.value}" for e in entries)
