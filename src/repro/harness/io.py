"""Serialization of experiment reports to JSON artifacts.

Benches and the CLI can persist every report for later comparison (e.g.
tracking calibration drift across versions, or diffing against the paper's
values programmatically).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.harness.experiments.base import ExperimentReport
from repro.version import __version__


def report_to_dict(report: ExperimentReport) -> dict[str, Any]:
    """A JSON-serialisable view of one experiment report."""
    return {
        "exp_id": report.exp_id,
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "metrics": dict(report.metrics),
        "extra_sections": list(report.extra_sections),
        "version": __version__,
    }


def save_report(report: ExperimentReport, path: str | Path) -> Path:
    """Write a report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))
    return path


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a previously saved report dict."""
    return json.loads(Path(path).read_text())


def diff_metrics(
    old: dict[str, Any], new: dict[str, Any], tolerance: float = 0.05
) -> dict[str, tuple[float, float]]:
    """Metrics whose relative change between two saved reports exceeds
    ``tolerance``; keyed by metric name with (old, new) values."""
    drifted: dict[str, tuple[float, float]] = {}
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for key in sorted(set(old_metrics) & set(new_metrics)):
        a, b = float(old_metrics[key]), float(new_metrics[key])
        scale = max(abs(a), abs(b), 1e-12)
        if abs(a - b) / scale > tolerance:
            drifted[key] = (a, b)
    return drifted
