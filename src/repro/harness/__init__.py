"""Experiment harness: method registry, corpus runner, per-figure experiments."""

from repro.harness.executor import CorpusExecutor, default_worker_count
from repro.harness.figures import ascii_bars, ascii_table, format_value
from repro.harness.methods import build_method, standard_methods
from repro.harness.runner import ExperimentConfig, MethodRun, run_method, run_methods

__all__ = [
    "CorpusExecutor",
    "ExperimentConfig",
    "MethodRun",
    "default_worker_count",
    "ascii_bars",
    "ascii_table",
    "build_method",
    "format_value",
    "run_method",
    "run_methods",
    "standard_methods",
]
