"""Corpus runner: decode datasets with methods, collect traces and latency."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.corpus import Dataset
from repro.data.librisim import LibriSimBuilder, LibriSimConfig
from repro.decoding.base import DecodeResult
from repro.harness.executor import CorpusExecutor
from repro.metrics.latency_report import LatencyBreakdown, aggregate_latency
from repro.models.vocab import Vocabulary, build_default_vocabulary


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for experiment corpora.

    Defaults are sized so every bench finishes in seconds while utterance
    lengths span the LibriSpeech range (short queries to long read
    sentences).  ``workers > 1`` fans corpus decoding out across a worker
    pool (see :mod:`repro.harness.executor`); results are bit-identical to
    the serial runner.
    """

    seed: int = 2025
    utterances: int = 32
    min_words: int = 12
    max_words: int = 56
    workers: int = 1

    def librisim(self) -> LibriSimConfig:
        return LibriSimConfig(
            seed=self.seed,
            utterances_per_split=self.utterances,
            min_words=self.min_words,
            max_words=self.max_words,
        )


_VOCAB_CACHE: dict[int, Vocabulary] = {}
_SPLIT_CACHE: dict[tuple, Dataset] = {}


def shared_vocabulary() -> Vocabulary:
    """Process-wide vocabulary instance (cheap to share, expensive to build)."""
    if 0 not in _VOCAB_CACHE:
        _VOCAB_CACHE[0] = build_default_vocabulary()
    return _VOCAB_CACHE[0]


def load_split(split: str, config: ExperimentConfig) -> Dataset:
    """Build (and cache) one LibriSim split for an experiment config."""
    key = (split, config.seed, config.utterances, config.min_words, config.max_words)
    if key not in _SPLIT_CACHE:
        builder = LibriSimBuilder(shared_vocabulary(), config.librisim())
        _SPLIT_CACHE[key] = builder.build(split)
    return _SPLIT_CACHE[key]


@dataclass
class MethodRun:
    """All decode results of one method over one corpus."""

    method: str
    results: list[DecodeResult] = field(default_factory=list)
    breakdown: LatencyBreakdown | None = None

    @property
    def mean_rounds(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.trace.num_rounds for r in self.results) / len(self.results)

    @property
    def mean_draft_steps(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.trace.total_draft_steps for r in self.results) / len(self.results)

    @property
    def acceptance_ratio(self) -> float:
        submitted = sum(r.trace.total_submitted for r in self.results)
        accepted = sum(r.trace.total_accepted for r in self.results)
        return accepted / submitted if submitted else 0.0

    @property
    def accepted_per_round(self) -> float:
        rounds = sum(r.trace.num_rounds for r in self.results)
        accepted = sum(r.trace.total_accepted for r in self.results)
        return accepted / rounds if rounds else 0.0

    @property
    def submitted_per_round(self) -> float:
        rounds = sum(r.trace.num_rounds for r in self.results)
        submitted = sum(r.trace.total_submitted for r in self.results)
        return submitted / rounds if rounds else 0.0

    @property
    def recycled_per_utterance(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.trace.total_recycled for r in self.results) / len(self.results)


def run_method(
    decoder,
    dataset: Dataset,
    workers: int = 1,
    executor: "CorpusExecutor | None" = None,
) -> MethodRun:
    """Decode every utterance of ``dataset`` with ``decoder``.

    ``workers > 1`` (or an explicit ``executor``) decodes utterances in
    parallel; results stay in corpus order and are bit-identical to the
    serial path.
    """
    run = MethodRun(method=decoder.name)
    if executor is None and workers > 1:
        executor = CorpusExecutor(workers=workers)
    if executor is not None:
        grid = executor.map_decode({decoder.name: decoder}, dataset)
        run.results = grid[decoder.name]
    else:
        for utterance in dataset:
            run.results.append(decoder.decode(utterance))
    run.breakdown = aggregate_latency(decoder.name, run.results, list(dataset))
    return run


def run_methods(
    methods: dict[str, object],
    dataset: Dataset,
    check_lossless: bool = True,
    workers: int = 1,
    executor: "CorpusExecutor | None" = None,
) -> dict[str, MethodRun]:
    """Run several methods over one corpus.

    With ``check_lossless`` every method's transcripts are asserted equal to
    the first method's (conventionally autoregressive target decoding) —
    the paper's iso-accuracy guarantee.  ``workers > 1`` (or an explicit
    ``executor``) fans the (method × utterance) grid out across a worker
    pool with deterministic ordering.
    """
    if executor is None and workers > 1:
        executor = CorpusExecutor(workers=workers)
    if executor is not None:
        grids = executor.map_decode(methods, dataset)
    else:
        grids = {
            name: [decoder.decode(utterance) for utterance in dataset]
            for name, decoder in methods.items()
        }
    runs: dict[str, MethodRun] = {}
    reference_tokens: list[list[int]] | None = None
    for name, decoder in methods.items():
        results = grids[name]
        run = MethodRun(method=decoder.name, results=results)
        run.breakdown = aggregate_latency(decoder.name, results, list(dataset))
        if check_lossless:
            tokens = [r.tokens for r in results]
            if reference_tokens is None:
                reference_tokens = tokens
            elif tokens != reference_tokens:
                raise AssertionError(
                    f"method {name} produced different transcripts — "
                    "losslessness violated"
                )
        runs[name] = run
    return runs
