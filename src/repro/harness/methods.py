"""Decoding-method registry used across figures and benches.

Method names follow the paper: speculative baselines are labelled by their
(prediction length, beam size) pair; SpecASR variants by technique.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SpecASRConfig, asp_with_recycling, full_specasr
from repro.core.engine import SpecASREngine
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.dynamic_tree import DynamicTreeConfig, DynamicTreeDecoder
from repro.decoding.sampling import SamplingConfig, SpeculativeSamplingDecoder
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder

#: Canonical method order used in Fig. 11/12 style reports.
STANDARD_METHODS = (
    "autoregressive",
    "spec(8,1)",
    "spec(16,1)",
    "spec(8,2)",
    "specasr-asp",
    "specasr-tsp",
)


def build_method(name: str, draft, target):
    """Instantiate the decoder for a method name and a model pair."""
    if name == "autoregressive":
        return AutoregressiveDecoder(target, name=name)
    if name.startswith("spec(") and name.endswith(")"):
        inner = name[len("spec(") : -1]
        length_str, beams_str = (part.strip() for part in inner.split(","))
        config = SpeculativeConfig(int(length_str), int(beams_str))
        return SpeculativeDecoder(draft, target, config, name=name)
    if name == "fixed-tree":
        return FixedTreeDecoder(draft, target, FixedTreeConfig(), name=name)
    if name == "dynamic-tree":
        return DynamicTreeDecoder(draft, target, DynamicTreeConfig(), name=name)
    if name == "spec-sampling":
        return SpeculativeSamplingDecoder(draft, target, SamplingConfig(), name=name)
    if name == "specasr-asp":
        # "SpecASR with adaptive single-sequence prediction" in the paper's
        # main results includes the recycling strategy (Sec. IV-B).
        return SpecASREngine(draft, target, asp_with_recycling(), name=name)
    if name == "specasr-asp-only":
        return SpecASREngine(draft, target, SpecASRConfig(recycling=False), name=name)
    if name == "specasr-tsp":
        return SpecASREngine(draft, target, full_specasr(), name=name)
    raise KeyError(f"unknown method {name!r}")


def standard_methods(draft, target) -> dict[str, object]:
    """The Fig. 11 method suite, in canonical order."""
    return {name: build_method(name, draft, target) for name in STANDARD_METHODS}


@dataclass(frozen=True)
class MethodFamily:
    """Qualitative characterisation of a speculative family (paper Tab. I)."""

    family: str
    examples: str
    draft_efficiency: str
    verify_efficiency: str
    draft_length: str
    accept_rate: str
    flexibility: str


def table1_families() -> list[MethodFamily]:
    """The qualitative comparison rows of the paper's Table I."""
    return [
        MethodFamily(
            "Single Sequence",
            "Chen et al., Leviathan et al.",
            "high",
            "low",
            "medium",
            "low",
            "medium",
        ),
        MethodFamily(
            "Fixed Tree",
            "SpecInfer, EAGLE, MCSD",
            "low",
            "high",
            "low",
            "medium",
            "low",
        ),
        MethodFamily(
            "Dynamic Tree",
            "Medusa, ProPD, EAGLE-2, Sequoia",
            "low",
            "high",
            "low",
            "high",
            "high",
        ),
        MethodFamily(
            "Ours (SpecASR)",
            "this repo",
            "high",
            "high",
            "high",
            "high",
            "high",
        ),
    ]
