"""SpecASR reproduction: speculative decoding specialised for LLM-based ASR.

Reproduces "SpecASR: Accelerating LLM-based Automatic Speech Recognition via
Speculative Decoding" (DAC 2025) on a fully offline, deterministic simulated
substrate.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart::

    from repro import (
        SpecASRConfig, SpecASREngine, AutoregressiveDecoder,
        build_default_vocabulary, build_split, model_pair,
    )

    vocab = build_default_vocabulary()
    dataset = build_split("test-clean", vocab, utterances=8)
    draft, target = model_pair("whisper", vocab)
    engine = SpecASREngine(draft, target, SpecASRConfig())
    result = engine.decode(dataset[0])
    print(vocab.decode_ids(result.tokens), result.total_ms)
"""

from repro.core.config import SpecASRConfig, asp_only, asp_with_recycling, full_specasr
from repro.core.engine import SpecASREngine
from repro.data.corpus import Dataset, Utterance
from repro.data.librisim import LibriSimBuilder, LibriSimConfig, build_split
from repro.data.text_tasks import TextTaskConfig, build_text_corpus
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder
from repro.models.registry import get_model, list_models, model_pair
from repro.models.vocab import Vocabulary, build_default_vocabulary
from repro.version import __version__

__all__ = [
    "AutoregressiveDecoder",
    "Dataset",
    "FixedTreeConfig",
    "FixedTreeDecoder",
    "LibriSimBuilder",
    "LibriSimConfig",
    "SpecASRConfig",
    "SpecASREngine",
    "SpeculativeConfig",
    "SpeculativeDecoder",
    "TextTaskConfig",
    "Utterance",
    "Vocabulary",
    "__version__",
    "asp_only",
    "asp_with_recycling",
    "build_default_vocabulary",
    "build_split",
    "build_text_corpus",
    "full_specasr",
    "get_model",
    "list_models",
    "model_pair",
]
