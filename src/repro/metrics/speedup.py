"""Speedup tables relative to baseline decoding methods."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.latency_report import LatencyBreakdown


@dataclass(frozen=True)
class SpeedupRow:
    """Speedup of one method relative to named baselines."""

    method: str
    total_ms: float
    speedups: dict[str, float]

    def over(self, baseline: str) -> float:
        return self.speedups.get(baseline, 0.0)


def speedup_table(
    breakdowns: Sequence[LatencyBreakdown],
    baselines: Sequence[str],
) -> list[SpeedupRow]:
    """Compute each method's speedup over every named baseline.

    Speedup is the ratio of total simulated latency (baseline / method), the
    definition used throughout the paper's Fig. 11.
    """
    by_method = {b.method: b for b in breakdowns}
    for baseline in baselines:
        if baseline not in by_method:
            raise KeyError(f"baseline {baseline!r} missing from results")
    rows = []
    for breakdown in breakdowns:
        speedups = {}
        for baseline in baselines:
            base_ms = by_method[baseline].total_ms
            speedups[baseline] = (
                base_ms / breakdown.total_ms if breakdown.total_ms > 0 else 0.0
            )
        rows.append(
            SpeedupRow(
                method=breakdown.method,
                total_ms=breakdown.total_ms,
                speedups=speedups,
            )
        )
    return rows
