"""Error-locality analysis — quantifying the paper's Observation 2.

The paper attributes low-acceptance rounds to "variations in pronunciation
and acoustic quality across specific speech segments", i.e. recognition
errors are *localized*, not uniformly scattered.  These helpers measure that
directly on model transcripts:

* ``error_burstiness`` — the lag-1 autocorrelation of the per-position error
  indicator.  Positive values mean errors cluster (an error position is more
  likely to be followed by another error than chance predicts).
* ``error_run_lengths`` — the distribution of consecutive-error run lengths;
  clustering shows up as runs of length ≥ 2 far above the independent-error
  expectation.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.corpus import Dataset


def error_indicators(model, dataset: Dataset) -> list[list[int]]:
    """Per-utterance 0/1 error vectors of the model's greedy transcript.

    Substitution-aligned (the simulated decode streams are position-aligned
    with the reference), so indicator ``i`` is simply ``hyp[i] != ref[i]``.
    """
    indicators = []
    for utterance in dataset:
        hyp = model.greedy_transcript(utterance)
        ref = list(utterance.tokens)
        length = min(len(hyp), len(ref))
        row = [1 if hyp[i] != ref[i] else 0 for i in range(length)]
        indicators.append(row)
    return indicators


def error_burstiness(indicators: Sequence[Sequence[int]]) -> float:
    """Pooled lag-1 autocorrelation of error indicators.

    Returns 0.0 when undefined (no errors or no variance).
    """
    pairs: list[tuple[int, int]] = []
    values: list[int] = []
    for row in indicators:
        values.extend(row)
        pairs.extend(zip(row, row[1:], strict=False))
    if not pairs or not values:
        return 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    if variance == 0.0:
        return 0.0
    covariance = sum((a - mean) * (b - mean) for a, b in pairs) / len(pairs)
    return covariance / variance


def error_run_lengths(indicators: Sequence[Sequence[int]]) -> dict[int, int]:
    """Histogram of consecutive-error run lengths across a corpus."""
    runs: dict[int, int] = {}
    for row in indicators:
        current = 0
        for value in row:
            if value:
                current += 1
            elif current:
                runs[current] = runs.get(current, 0) + 1
                current = 0
        if current:
            runs[current] = runs.get(current, 0) + 1
    return runs


def expected_multi_token_run_share(error_rate: float) -> float:
    """Share of error runs with length >= 2 if errors were independent.

    For i.i.d. errors with rate p, run lengths are geometric: the share of
    runs longer than one error equals p.  Comparing the measured share
    against this baseline quantifies clustering.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error rate {error_rate} outside [0, 1]")
    return error_rate


def multi_token_run_share(runs: dict[int, int]) -> float:
    """Measured share of error runs with length >= 2."""
    total = sum(runs.values())
    if total == 0:
        return 0.0
    return sum(count for length, count in runs.items() if length >= 2) / total
