"""Acceptance statistics for speculative decoding analysis.

These helpers compute the quantities behind the paper's motivation figures:
accept@top-k curves (Fig. 5b), per-round acceptance-ratio histograms
(Fig. 6a), post-rejection draft/target alignment (Fig. 6b) and the rank of
the target token in the draft's distribution when the top-1 fails
(Fig. 13b).  They operate on *peek* access (no latency accounting) so the
analysis never perturbs the latency results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.decoding.base import DecodeTrace
from repro.models.latency import SimClock


@dataclass
class AcceptanceStats:
    """Pooled acceptance counters over a corpus."""

    rounds: int = 0
    submitted: int = 0
    accepted: int = 0
    per_round_ratios: list[float] = field(default_factory=list)
    per_round_accepted: list[int] = field(default_factory=list)

    @property
    def mean_ratio(self) -> float:
        if not self.per_round_ratios:
            return 0.0
        return sum(self.per_round_ratios) / len(self.per_round_ratios)

    @property
    def mean_accepted(self) -> float:
        if not self.per_round_accepted:
            return 0.0
        return sum(self.per_round_accepted) / len(self.per_round_accepted)


def collect_acceptance(traces: Sequence[DecodeTrace]) -> AcceptanceStats:
    """Pool round-level acceptance statistics from decode traces."""
    stats = AcceptanceStats()
    for trace in traces:
        for round_stats in trace.rounds:
            stats.rounds += 1
            stats.submitted += round_stats.submitted_tokens
            stats.accepted += round_stats.accepted_tokens
            stats.per_round_ratios.append(round_stats.acceptance_ratio)
            stats.per_round_accepted.append(round_stats.accepted_tokens)
    return stats


def acceptance_histogram(
    ratios: Sequence[float], bins: int = 5
) -> list[tuple[str, float]]:
    """Histogram of per-round acceptance ratios as (label, fraction) rows.

    The last bin is closed at 1.0 so fully-accepted rounds land in it.
    """
    if bins < 1:
        raise ValueError("need at least one bin")
    if not ratios:
        return [(f"{i / bins:.1f}-{(i + 1) / bins:.1f}", 0.0) for i in range(bins)]
    counts = [0] * bins
    for ratio in ratios:
        index = min(int(ratio * bins), bins - 1)
        counts[index] += 1
    total = len(ratios)
    return [
        (f"{i / bins:.1f}-{(i + 1) / bins:.1f}", counts[i] / total) for i in range(bins)
    ]


def _open_sessions(draft_model, target_model, unit):
    """Open latency-silent sessions for analysis."""
    clock = SimClock()
    draft = draft_model.session(unit, clock)
    target = target_model.session(unit, clock)
    return draft, target


def _target_greedy_path(target_session, eos_id: int, limit: int) -> list[int]:
    tokens: list[int] = []
    while len(tokens) < limit:
        token = target_session.peek(tokens).token
        tokens.append(token)
        if token == eos_id:
            break
    return tokens


def accept_at_topk(draft_model, target_model, units, max_k: int = 5) -> list[float]:
    """P(target token within the draft's top-k) along the target greedy path.

    ``accept@1`` is exactly the per-token acceptance probability of greedy
    speculative decoding; higher k shows how much headroom token-tree
    expansion has (paper Fig. 5b).
    """
    eos_id = target_model.vocab.eos_id
    hits = [0] * max_k
    total = 0
    for unit in units:
        draft, target = _open_sessions(draft_model, target_model, unit)
        limit = target.max_decode_positions()
        path = _target_greedy_path(target, eos_id, limit)
        for position in range(len(path)):
            prefix = path[:position]
            target_token = path[position]
            if target_token == eos_id:
                continue
            rank = draft.peek(prefix).rank_of(target_token)
            total += 1
            if rank is not None:
                for k in range(rank, max_k + 1):
                    hits[k - 1] += 1
    if total == 0:
        return [0.0] * max_k
    return [h / total for h in hits]


def rank_distribution_on_failure(
    draft_model, target_model, units, max_rank: int = 5
) -> dict[str, float]:
    """Among positions where the draft top-1 fails verification, the rank of
    the target's actual token in the draft's top-k (paper Fig. 13b).

    Returns fractions keyed ``"2"``, ``"3"``, ..., ``">max_rank"``.
    """
    eos_id = target_model.vocab.eos_id
    counts: dict[str, int] = {str(r): 0 for r in range(2, max_rank + 1)}
    counts[f">{max_rank}"] = 0
    failures = 0
    for unit in units:
        draft, target = _open_sessions(draft_model, target_model, unit)
        limit = target.max_decode_positions()
        path = _target_greedy_path(target, eos_id, limit)
        for position in range(len(path)):
            prefix = path[:position]
            target_token = path[position]
            if target_token == eos_id:
                continue
            step = draft.peek(prefix)
            if step.token == target_token:
                continue
            failures += 1
            rank = step.rank_of(target_token)
            if rank is not None and 2 <= rank <= max_rank:
                counts[str(rank)] += 1
            else:
                counts[f">{max_rank}"] += 1
    if failures == 0:
        return {key: 0.0 for key in counts}
    return {key: value / failures for key, value in counts.items()}


def suffix_alignment_curve(
    draft_model, target_model, units, draft_len: int = 16, max_offset: int = 8
) -> list[float]:
    """Post-rejection alignment between draft and target (paper Fig. 6b).

    Simulates greedy speculative rounds; at every rejection, compares the
    *unaccepted* draft tokens with the target's actual continuation at the
    same offsets.  Returns the match rate by offset after the rejection
    (offset 0 = the token right after the rejected one).  High values mean
    the rejected draft suffix is still aligned with the verification
    sequence — the property draft-sequence recycling exploits.
    """
    eos_id = target_model.vocab.eos_id
    matches = [0] * max_offset
    totals = [0] * max_offset
    for unit in units:
        draft, target = _open_sessions(draft_model, target_model, unit)
        limit = target.max_decode_positions()
        prefix: list[int] = []
        while len(prefix) < limit:
            # Draft a fixed-length sequence (greedy, latency-free).
            drafts: list[int] = []
            while len(drafts) < draft_len:
                token = draft.peek(prefix + drafts).token
                drafts.append(token)
                if token == eos_id:
                    break
            # Verify: target tokens at the same positions.
            accepted = 0
            target_tokens: list[int] = []
            for index in range(len(drafts)):
                expected = target.peek(prefix + drafts[:index]).token
                target_tokens.append(expected)
                if accepted == index and expected == drafts[index]:
                    accepted += 1
            if accepted == len(drafts):
                correction = target.peek(prefix + drafts).token
                prefix = prefix + drafts + [correction]
                if correction == eos_id or eos_id in drafts:
                    break
                continue
            # Rejected at position `accepted`; compare the unaccepted suffix
            # against the target's continuation after the correction.
            correction = target_tokens[accepted]
            new_prefix = prefix + drafts[:accepted] + [correction]
            suffix = drafts[accepted + 1 :]
            continuation: list[int] = []
            for offset in range(min(len(suffix), max_offset)):
                expected = target.peek(new_prefix + continuation).token
                continuation.append(expected)
                totals[offset] += 1
                if expected == suffix[offset]:
                    matches[offset] += 1
                if expected == eos_id:
                    break
            prefix = new_prefix
            if correction == eos_id:
                break
    return [matches[i] / totals[i] if totals[i] else 0.0 for i in range(max_offset)]
