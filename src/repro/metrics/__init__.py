"""Evaluation metrics: WER, acceptance statistics, latency, speedups."""

from repro.metrics.acceptance import (
    AcceptanceStats,
    accept_at_topk,
    acceptance_histogram,
    collect_acceptance,
    rank_distribution_on_failure,
    suffix_alignment_curve,
)
from repro.metrics.latency_report import (
    LatencyBreakdown,
    PercentileSummary,
    aggregate_latency,
    percentile,
)
from repro.metrics.speedup import SpeedupRow, speedup_table
from repro.metrics.wer import corpus_wer, wer

__all__ = [
    "AcceptanceStats",
    "LatencyBreakdown",
    "PercentileSummary",
    "SpeedupRow",
    "accept_at_topk",
    "acceptance_histogram",
    "aggregate_latency",
    "collect_acceptance",
    "corpus_wer",
    "percentile",
    "rank_distribution_on_failure",
    "speedup_table",
    "suffix_alignment_curve",
    "wer",
]
