"""Latency aggregation over decode results.

Produces the per-model / per-kind millisecond breakdowns the paper reports,
normalised per 10 seconds of audio (Table II) or as corpus totals (Fig. 7,
Fig. 11), plus the percentile summaries the serving layer's SLO reports are
built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.data.corpus import Utterance
from repro.decoding.base import DecodeResult


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Deterministic pure-Python implementation (no numpy dtype dependence) so
    SLO reports are bit-stable across platforms.  ``q`` is in ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class PercentileSummary:
    """p50/p95/p99 + mean of one latency population (milliseconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "PercentileSummary | None":
        """Summarise ``values``; None when the population is empty."""
        data = [float(v) for v in values]
        if not data:
            return None
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            p50=percentile(data, 50.0),
            p95=percentile(data, 95.0),
            p99=percentile(data, 99.0),
            maximum=max(data),
        )

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": round(self.p50, 3),
            "p95": round(self.p95, 3),
            "p99": round(self.p99, 3),
            "max": round(self.maximum, 3),
        }


@dataclass
class LatencyBreakdown:
    """Aggregated latency for one decoding method over a corpus."""

    method: str
    total_ms: float = 0.0
    total_duration_s: float = 0.0
    by_model_ms: dict[str, float] = field(default_factory=dict)
    by_kind_ms: dict[str, float] = field(default_factory=dict)
    num_units: int = 0

    @property
    def ms_per_10s(self) -> float:
        if self.total_duration_s <= 0:
            return 0.0
        return self.total_ms * 10.0 / self.total_duration_s

    def model_ms_per_10s(self, model: str) -> float:
        if self.total_duration_s <= 0:
            return 0.0
        return self.by_model_ms.get(model, 0.0) * 10.0 / self.total_duration_s

    def model_share(self, model: str) -> float:
        if self.total_ms <= 0:
            return 0.0
        return self.by_model_ms.get(model, 0.0) / self.total_ms


def aggregate_latency(
    method: str,
    results: Sequence[DecodeResult],
    units: Sequence[Utterance],
    default_duration_s: float | None = None,
) -> LatencyBreakdown:
    """Aggregate recorded latency events across a corpus run.

    Every unit must carry ``duration_s`` (the audio length the RTF/per-10s
    normalisations divide by).  A unit without one raises unless the caller
    threads an explicit ``default_duration_s`` — silently inventing audio
    length would corrupt every normalised latency downstream.
    """
    if len(results) != len(units):
        raise ValueError(f"{len(results)} results vs {len(units)} units")
    breakdown = LatencyBreakdown(method=method)
    by_model = breakdown.by_model_ms
    by_kind = breakdown.by_kind_ms
    total_ms = 0.0
    for result, unit in zip(results, units, strict=True):
        duration = getattr(unit, "duration_s", default_duration_s)
        if duration is None:
            raise ValueError(
                f"unit {getattr(unit, 'utterance_id', breakdown.num_units)!r} "
                "has no duration_s and no default_duration_s was given; "
                "latency normalisation needs a real audio length"
            )
        breakdown.num_units += 1
        breakdown.total_duration_s += duration
        for event in result.clock.events:
            ms = event.ms
            total_ms += ms
            model = event.model
            by_model[model] = by_model.get(model, 0.0) + ms
            kind = event.kind
            by_kind[kind] = by_kind.get(kind, 0.0) + ms
    breakdown.total_ms = total_ms
    return breakdown
