"""Latency aggregation over decode results.

Produces the per-model / per-kind millisecond breakdowns the paper reports,
normalised per 10 seconds of audio (Table II) or as corpus totals (Fig. 7,
Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.corpus import Utterance
from repro.decoding.base import DecodeResult


@dataclass
class LatencyBreakdown:
    """Aggregated latency for one decoding method over a corpus."""

    method: str
    total_ms: float = 0.0
    total_duration_s: float = 0.0
    by_model_ms: dict[str, float] = field(default_factory=dict)
    by_kind_ms: dict[str, float] = field(default_factory=dict)
    num_units: int = 0

    @property
    def ms_per_10s(self) -> float:
        if self.total_duration_s <= 0:
            return 0.0
        return self.total_ms * 10.0 / self.total_duration_s

    def model_ms_per_10s(self, model: str) -> float:
        if self.total_duration_s <= 0:
            return 0.0
        return self.by_model_ms.get(model, 0.0) * 10.0 / self.total_duration_s

    def model_share(self, model: str) -> float:
        if self.total_ms <= 0:
            return 0.0
        return self.by_model_ms.get(model, 0.0) / self.total_ms


def aggregate_latency(
    method: str,
    results: Sequence[DecodeResult],
    units: Sequence[Utterance],
) -> LatencyBreakdown:
    """Aggregate recorded latency events across a corpus run."""
    if len(results) != len(units):
        raise ValueError(f"{len(results)} results vs {len(units)} units")
    breakdown = LatencyBreakdown(method=method)
    for result, unit in zip(results, units):
        breakdown.num_units += 1
        breakdown.total_duration_s += getattr(unit, "duration_s", 10.0)
        for event in result.clock.events:
            breakdown.total_ms += event.ms
            breakdown.by_model_ms[event.model] = (
                breakdown.by_model_ms.get(event.model, 0.0) + event.ms
            )
            breakdown.by_kind_ms[event.kind] = (
                breakdown.by_kind_ms.get(event.kind, 0.0) + event.ms
            )
    return breakdown
