"""Word error rate computation."""

from __future__ import annotations

from typing import Sequence

from repro.data.corpus import Dataset
from repro.utils.editdist import wer_counts


def wer(reference: Sequence, hypothesis: Sequence) -> float:
    """Word error rate: (S + I + D) / N for one utterance pair."""
    subs, ins, dels, ref_len = wer_counts(reference, hypothesis)
    if ref_len == 0:
        return 0.0 if not hypothesis else 1.0
    return (subs + ins + dels) / ref_len


def corpus_wer(references: Sequence[Sequence], hypotheses: Sequence[Sequence]) -> float:
    """Corpus-level WER: pooled edit operations over pooled reference length."""
    if len(references) != len(hypotheses):
        raise ValueError(
            f"{len(references)} references vs {len(hypotheses)} hypotheses"
        )
    total_errors = 0
    total_ref = 0
    for ref, hyp in zip(references, hypotheses, strict=True):
        subs, ins, dels, ref_len = wer_counts(ref, hyp)
        total_errors += subs + ins + dels
        total_ref += ref_len
    if total_ref == 0:
        return 0.0
    return total_errors / total_ref


def model_wer(model, dataset: Dataset) -> float:
    """Corpus WER of a simulated model's greedy transcripts on ``dataset``."""
    references = [list(utt.tokens) for utt in dataset]
    hypotheses = [model.greedy_transcript(utt) for utt in dataset]
    return corpus_wer(references, hypotheses)
