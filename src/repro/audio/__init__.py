"""Audio substrate: waveform synthesis, features, encoder, difficulty."""

from repro.audio.difficulty import difficulty_from_snr, measure_token_snr
from repro.audio.encoder import AudioEncoder, EncoderConfig, encoder_preset
from repro.audio.features import LogMelConfig, log_mel_spectrogram, mel_filterbank
from repro.audio.signal import SynthesisConfig, SynthesizedAudio, synthesize_utterance

__all__ = [
    "AudioEncoder",
    "EncoderConfig",
    "LogMelConfig",
    "SynthesisConfig",
    "SynthesizedAudio",
    "difficulty_from_snr",
    "encoder_preset",
    "log_mel_spectrogram",
    "measure_token_snr",
    "mel_filterbank",
    "synthesize_utterance",
]
