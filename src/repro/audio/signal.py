"""Formant-style speech synthesis for LibriSim utterances.

Real LibriSpeech audio is unavailable offline, so this module synthesises a
stand-in waveform per utterance: each word is mapped to a pseudo-phoneme
sequence, each phoneme to a short harmonic segment with formant resonances,
and additive noise is injected per word segment with an SNR controlled by the
word's difficulty.  The result is not intelligible speech — it does not need
to be — but it gives the pipeline a genuine ``waveform → features → encoder →
difficulty`` path whose per-token SNR statistics drive the recognition-error
process, i.e. the audio-conditioning at the heart of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import Utterance
from repro.utils.rng import RngStream

#: Formant frequency table (Hz) for coarse vowel classes.
_VOWEL_FORMANTS: dict[str, tuple[float, float]] = {
    "a": (730.0, 1090.0),
    "e": (530.0, 1840.0),
    "i": (270.0, 2290.0),
    "o": (570.0, 840.0),
    "u": (300.0, 870.0),
    "y": (440.0, 1720.0),
}

#: Noise-band centre (Hz) for coarse consonant classes.
_CONSONANT_BANDS: dict[str, float] = {
    "s": 5200.0,
    "z": 4800.0,
    "f": 4300.0,
    "v": 3700.0,
    "t": 3400.0,
    "d": 3000.0,
    "k": 2600.0,
    "g": 2300.0,
    "p": 1200.0,
    "b": 900.0,
    "m": 400.0,
    "n": 500.0,
    "l": 600.0,
    "r": 700.0,
    "h": 2000.0,
    "w": 450.0,
    "j": 2200.0,
    "c": 2800.0,
    "q": 1500.0,
    "x": 3900.0,
}


@dataclass(frozen=True)
class SynthesisConfig:
    """Waveform synthesis parameters."""

    sample_rate: int = 16000
    phoneme_duration_s: float = 0.085
    pitch_hz: float = 120.0
    amplitude: float = 0.30

    def __post_init__(self) -> None:
        if self.sample_rate < 8000:
            raise ValueError("sample_rate must be >= 8000")
        if self.phoneme_duration_s <= 0:
            raise ValueError("phoneme_duration_s must be positive")


@dataclass(frozen=True)
class SynthesizedAudio:
    """A synthesised waveform plus per-token segment boundaries."""

    waveform: np.ndarray  # float64 samples in [-1, 1]
    sample_rate: int
    token_spans: tuple[tuple[int, int], ...]  # [start, end) sample indices
    clean_power: tuple[float, ...]  # mean clean-signal power per token
    noise_power: tuple[float, ...]  # mean injected-noise power per token

    @property
    def duration_s(self) -> float:
        return len(self.waveform) / self.sample_rate


def word_to_phonemes(word: str) -> list[str]:
    """Collapse a word into a coarse pseudo-phoneme sequence.

    Grapheme-based: each alphabetic character maps to its vowel or consonant
    class; repeated classes are merged.  Crude, but it yields word-length-
    proportional segments with distinct spectral content.
    """
    phonemes: list[str] = []
    for char in word.lower():
        if not char.isalpha():
            continue
        if phonemes and phonemes[-1] == char:
            continue
        phonemes.append(char)
    return phonemes or ["a"]


def _phoneme_segment(
    phoneme: str, config: SynthesisConfig, rng: RngStream
) -> np.ndarray:
    """Synthesise one phoneme segment (harmonic vowel or band noise)."""
    n = int(config.phoneme_duration_s * config.sample_rate)
    t = np.arange(n) / config.sample_rate
    envelope = np.sin(np.pi * np.arange(n) / max(n - 1, 1)) ** 0.5
    if phoneme in _VOWEL_FORMANTS:
        f1, f2 = _VOWEL_FORMANTS[phoneme]
        jitter = 1.0 + rng.normal(0.0, 0.02)
        wave = (
            0.6 * np.sin(2 * np.pi * config.pitch_hz * jitter * t)
            + 0.3 * np.sin(2 * np.pi * f1 * jitter * t)
            + 0.2 * np.sin(2 * np.pi * f2 * jitter * t)
        )
    else:
        centre = _CONSONANT_BANDS.get(phoneme, 2500.0)
        noise = rng.numpy.normal(0.0, 1.0, n)
        carrier = np.sin(2 * np.pi * centre * t)
        wave = 0.5 * noise * np.abs(carrier) + 0.2 * carrier
    return config.amplitude * envelope * wave


def synthesize_utterance(
    utterance: Utterance, config: SynthesisConfig = SynthesisConfig()
) -> SynthesizedAudio:
    """Synthesise a waveform for ``utterance``.

    Noise is injected per word segment at an SNR determined by the word's
    difficulty: difficulty 0 → ~25 dB SNR, difficulty 1 → ~-3 dB SNR.  The
    segment boundaries and clean/noise powers are returned so that
    :mod:`repro.audio.difficulty` can close the loop by *measuring* SNR back
    from the waveform.
    """
    rng = RngStream(utterance.seed, "synthesis")
    segments: list[np.ndarray] = []
    spans: list[tuple[int, int]] = []
    clean_powers: list[float] = []
    noise_powers: list[float] = []
    cursor = 0
    for index, word in enumerate(utterance.words):
        phonemes = word_to_phonemes(word)
        word_rng = rng.child("word", index)
        clean = np.concatenate(
            [
                _phoneme_segment(ph, config, word_rng.child(i))
                for i, ph in enumerate(phonemes)
            ]
        )
        difficulty = utterance.difficulty[index]
        snr_db = 25.0 - 28.0 * difficulty
        clean_power = float(np.mean(clean**2)) + 1e-12
        noise_power = clean_power / (10.0 ** (snr_db / 10.0))
        noise = word_rng.child("noise").numpy.normal(
            0.0, np.sqrt(noise_power), len(clean)
        )
        segment = clean + noise
        segments.append(segment)
        spans.append((cursor, cursor + len(segment)))
        clean_powers.append(clean_power)
        noise_powers.append(float(np.mean(noise**2)) + 1e-12)
        cursor += len(segment)
    waveform = np.concatenate(segments) if segments else np.zeros(1)
    peak = np.max(np.abs(waveform))
    if peak > 1.0:
        waveform = waveform / peak
    return SynthesizedAudio(
        waveform=waveform,
        sample_rate=config.sample_rate,
        token_spans=tuple(spans),
        clean_power=tuple(clean_powers),
        noise_power=tuple(noise_powers),
    )
