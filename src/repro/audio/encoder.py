"""A toy convolutional audio encoder with honest parameter accounting.

LLM-based ASR models pair a (relatively small) audio encoder with a large LLM
decoder (paper Fig. 1 and Sec. II-A).  This encoder reproduces the two-stage
structure the paper describes: (1) feature extraction/compression of speech
frames, (2) stacking + projection into the LLM hidden dimension for
prefilling.  Weights are fixed random (seeded) — the decoder simulation
consumes acoustic difficulty rather than embeddings — but the layer shapes
and parameter counts are real, so the encoder-vs-decoder parameter and
latency ratios of Fig. 1 can be computed from actual module metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.audio.features import LogMelConfig
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class EncoderConfig:
    """Shape of the conv + projection encoder."""

    name: str = "encoder-base"
    n_mels: int = 40
    conv_channels: tuple[int, ...] = (64, 128)
    conv_kernel: int = 3
    conv_stride: int = 2
    stack_factor: int = 4
    output_dim: int = 256
    seed: int = 11

    def __post_init__(self) -> None:
        if not self.conv_channels:
            raise ValueError("need at least one conv layer")
        if self.stack_factor < 1:
            raise ValueError("stack_factor must be >= 1")


def encoder_preset(name: str) -> EncoderConfig:
    """Encoder presets sized to echo published audio encoders.

    ``tiny`` ≈ Whisper tiny encoder scale, ``medium`` ≈ Whisper medium
    encoder scale, ``conformer-large`` ≈ the <1 B encoders the paper cites.
    Sizes are set via channel widths/output dims; exact counts come from
    :meth:`AudioEncoder.param_count`.
    """
    presets = {
        "tiny": EncoderConfig("encoder-tiny", 40, (96, 192), 3, 2, 4, 384),
        "base": EncoderConfig("encoder-base", 40, (128, 256), 3, 2, 4, 512),
        "medium": EncoderConfig("encoder-medium", 80, (256, 512, 512), 3, 2, 4, 1024),
        "conformer-large": EncoderConfig(
            "encoder-conformer-large", 80, (512, 512, 1024), 3, 2, 8, 1024
        ),
    }
    if name not in presets:
        raise KeyError(f"unknown encoder preset {name!r}; have {sorted(presets)}")
    return presets[name]


@dataclass
class AudioEncoder:
    """Conv downsampling + frame stacking + linear projection."""

    config: EncoderConfig = field(default_factory=EncoderConfig)

    def __post_init__(self) -> None:
        rng = RngStream(self.config.seed, "audio-encoder", self.config.name)
        self._conv_weights: list[np.ndarray] = []
        self._conv_biases: list[np.ndarray] = []
        in_ch = self.config.n_mels
        for layer, out_ch in enumerate(self.config.conv_channels):
            scale = 1.0 / np.sqrt(in_ch * self.config.conv_kernel)
            weight = rng.child("w", layer).numpy.normal(
                0.0, scale, (out_ch, in_ch, self.config.conv_kernel)
            )
            bias = np.zeros(out_ch)
            self._conv_weights.append(weight)
            self._conv_biases.append(bias)
            in_ch = out_ch
        stacked_dim = in_ch * self.config.stack_factor
        proj_scale = 1.0 / np.sqrt(stacked_dim)
        self._proj = rng.child("proj").numpy.normal(
            0.0, proj_scale, (stacked_dim, self.config.output_dim)
        )
        self._proj_bias = np.zeros(self.config.output_dim)

    # -- inference ---------------------------------------------------------
    def encode(self, log_mel: np.ndarray) -> np.ndarray:
        """Encode ``(n_frames, n_mels)`` features into ``(n_embed, d)``."""
        if log_mel.ndim != 2 or log_mel.shape[1] != self.config.n_mels:
            raise ValueError(
                f"expected (*, {self.config.n_mels}) features, got {log_mel.shape}"
            )
        x = log_mel.T  # (channels, frames)
        for weight, bias in zip(self._conv_weights, self._conv_biases, strict=True):
            x = _conv1d(x, weight, bias, self.config.conv_stride)
            x = np.maximum(x, 0.0)  # ReLU
        x = x.T  # (frames, channels)
        x = _stack_frames(x, self.config.stack_factor)
        return x @ self._proj + self._proj_bias

    def downsample_factor(self) -> int:
        """Input frames consumed per output embedding."""
        return self.config.conv_stride ** len(self.config.conv_channels) * (
            self.config.stack_factor
        )

    # -- accounting ----------------------------------------------------------
    def param_count(self) -> int:
        """Exact number of scalar parameters in this encoder."""
        total = 0
        for weight, bias in zip(self._conv_weights, self._conv_biases, strict=True):
            total += weight.size + bias.size
        total += self._proj.size + self._proj_bias.size
        return total


def _conv1d(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int
) -> np.ndarray:
    """Strided 1-D convolution: x ``(C_in, T)`` → ``(C_out, T')``."""
    out_ch, in_ch, kernel = weight.shape
    if x.shape[0] != in_ch:
        raise ValueError(f"channel mismatch: x has {x.shape[0]}, weight {in_ch}")
    t = x.shape[1]
    if t < kernel:
        x = np.pad(x, ((0, 0), (0, kernel - t)))
        t = kernel
    n_out = 1 + (t - kernel) // stride
    starts = stride * np.arange(n_out)
    # windows: (n_out, C_in, kernel)
    windows = np.stack([x[:, s : s + kernel] for s in starts], axis=0)
    out = np.einsum("nik,oik->on", windows, weight) + bias[:, None]
    return out


def _stack_frames(x: np.ndarray, factor: int) -> np.ndarray:
    """Concatenate ``factor`` consecutive frames: ``(T, C)`` → ``(T//f, C*f)``."""
    n = (x.shape[0] // factor) * factor
    if n == 0:
        x = np.pad(x, ((0, factor - x.shape[0]), (0, 0)))
        n = factor
    trimmed = x[:n]
    return trimmed.reshape(n // factor, factor * x.shape[1])


def default_feature_config(encoder: EncoderConfig) -> LogMelConfig:
    """A feature config whose mel count matches the encoder input."""
    return LogMelConfig(n_mels=encoder.n_mels)
