"""Log-mel spectrogram features, implemented directly on numpy.

This is the same front-end family Whisper uses (80-channel log-mel), scaled
down by default for speed.  Only numpy is required: framing, Hann window,
real FFT, triangular mel filterbank, log compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogMelConfig:
    """Feature extraction parameters (Whisper-like defaults, smaller)."""

    sample_rate: int = 16000
    n_fft: int = 400
    hop_length: int = 160
    n_mels: int = 40
    fmin: float = 20.0
    fmax: float | None = None

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.hop_length <= 0 or self.n_mels <= 0:
            raise ValueError("n_fft, hop_length and n_mels must be positive")
        effective_fmax = self.fmax if self.fmax is not None else self.sample_rate / 2
        if not 0 <= self.fmin < effective_fmax <= self.sample_rate / 2:
            raise ValueError(
                f"invalid mel range [{self.fmin}, {effective_fmax}] "
                f"for sample rate {self.sample_rate}"
            )


def hz_to_mel(freq_hz: np.ndarray | float) -> np.ndarray | float:
    """O'Shaughnessy mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(freq_hz) / 700.0)


def mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    return 700.0 * (10.0 ** (np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(config: LogMelConfig) -> np.ndarray:
    """Triangular mel filterbank of shape ``(n_mels, n_fft // 2 + 1)``."""
    fmax = config.fmax if config.fmax is not None else config.sample_rate / 2
    mel_points = np.linspace(hz_to_mel(config.fmin), hz_to_mel(fmax), config.n_mels + 2)
    hz_points = np.asarray(mel_to_hz(mel_points))
    bins = np.floor((config.n_fft + 1) * hz_points / config.sample_rate).astype(int)
    bins = np.clip(bins, 0, config.n_fft // 2)
    bank = np.zeros((config.n_mels, config.n_fft // 2 + 1))
    for m in range(1, config.n_mels + 1):
        left, centre, right = bins[m - 1], bins[m], bins[m + 1]
        if centre == left:
            centre = left + 1
        if right <= centre:
            right = centre + 1
        right = min(right, config.n_fft // 2)
        for k in range(left, min(centre, config.n_fft // 2) + 1):
            bank[m - 1, k] = (k - left) / (centre - left)
        for k in range(centre, right + 1):
            bank[m - 1, k] = (right - k) / (right - centre)
    return bank


def frame_signal(waveform: np.ndarray, config: LogMelConfig) -> np.ndarray:
    """Slice ``waveform`` into overlapping frames ``(n_frames, n_fft)``."""
    if len(waveform) < config.n_fft:
        waveform = np.pad(waveform, (0, config.n_fft - len(waveform)))
    n_frames = 1 + (len(waveform) - config.n_fft) // config.hop_length
    indices = (
        np.arange(config.n_fft)[None, :]
        + config.hop_length * np.arange(n_frames)[:, None]
    )
    return waveform[indices]


def log_mel_spectrogram(
    waveform: np.ndarray, config: LogMelConfig = LogMelConfig()
) -> np.ndarray:
    """Compute a log-mel spectrogram of shape ``(n_frames, n_mels)``."""
    frames = frame_signal(np.asarray(waveform, dtype=np.float64), config)
    window = np.hanning(config.n_fft)
    spectrum = np.abs(np.fft.rfft(frames * window, axis=1)) ** 2
    bank = mel_filterbank(config)
    mel = spectrum @ bank.T
    return np.log10(np.maximum(mel, 1e-10))
