"""Measure per-token acoustic difficulty from synthesised waveforms.

Closes the audio-conditioning loop: LibriSim assigns a difficulty profile,
:mod:`repro.audio.signal` injects noise at the corresponding SNR, and this
module recovers difficulty back from the waveform alone (per-token SNR
estimated against the known clean power).  Tests assert that measured
difficulty tracks the generating profile, which validates using the direct
profile for large sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.audio.signal import SynthesizedAudio
from repro.utils.mathutil import clamp

#: SNR mapping anchors: must match repro.audio.signal.synthesize_utterance.
_SNR_AT_ZERO_DIFFICULTY_DB = 25.0
_SNR_SLOPE_DB = 28.0


def measure_token_snr(audio: SynthesizedAudio) -> list[float]:
    """Estimate per-token SNR (dB) from segment powers.

    Uses the recorded clean power per segment and the measured total power of
    the noisy waveform: ``noise ≈ total - clean``.
    """
    snrs: list[float] = []
    for (start, end), clean_power in zip(
        audio.token_spans, audio.clean_power, strict=True
    ):
        segment = audio.waveform[start:end]
        total_power = float(np.mean(segment**2)) + 1e-12
        noise_power = max(total_power - clean_power, 1e-12)
        snrs.append(10.0 * np.log10(clean_power / noise_power))
    return snrs


def difficulty_from_snr(snr_db: float) -> float:
    """Invert the synthesis SNR mapping back to a difficulty in [0, 1]."""
    return clamp((_SNR_AT_ZERO_DIFFICULTY_DB - snr_db) / _SNR_SLOPE_DB, 0.0, 1.0)


def measure_difficulty(audio: SynthesizedAudio) -> list[float]:
    """Per-token difficulty measured from the waveform."""
    return [difficulty_from_snr(snr) for snr in measure_token_snr(audio)]
