"""Decoder interface and trace/result types shared by all strategies.

A decoder consumes "sessions" — anything exposing the
``prefill / peek / step / step_frontier / verify_eval / rollback`` interface
of :class:`repro.models.simulated.DecodeSession` (ASR) or
:class:`repro.models.textlm.TextSession` (text) — so every algorithm in this
package runs unchanged on both task families.

The :class:`DecodeTrace` counters are exactly the quantities the paper's
figures report: rounds, draft steps, predicted/accepted tokens per round,
recycled tokens, tree nodes verified.

Decoders may additionally be *step-resumable*: ``begin(unit)`` returns a
:class:`DecodeStepper` that performs one speculative round per ``step()``
call, so a serving scheduler can multiplex many in-flight decodes and admit
new requests between rounds (continuous batching).  ``decode()`` is then
just ``begin(unit).drain()``, so both entry points share one code path and
produce bit-identical results.

Rounds further split into *phases*: a draft→verify round is one
``PHASE_DRAFT`` phase (billed to the draft model) followed by one
``PHASE_VERIFY`` phase (billed to the target model).  ``step_phase()``
returns a :class:`PhaseOutcome` per phase, which is what lets a multi-device
scheduler place the two halves of a round on *different* simulated
accelerators (draft/target disaggregation) and coalesce verification passes
across requests.  The atomic ``step()`` is a thin wrapper that drains the
phases of one round, so round-level callers are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Protocol, Sequence

from repro.models.latency import KIND_ENCODE, SimClock


@dataclass
class RoundStats:
    """Counters for one draft→verify round."""

    draft_steps: int = 0  # draft forward passes in this round
    drafted_tokens: int = 0  # fresh tokens the draft generated
    recycled_tokens: int = 0  # tokens reused from a previous draft sequence
    submitted_tokens: int = 0  # tokens sent for verification (main path)
    tree_nodes: int = 0  # unique nodes billed to the verification pass
    accepted_tokens: int = 0  # draft tokens the target accepted
    emitted_tokens: int = 0  # accepted + correction/bonus token

    @property
    def acceptance_ratio(self) -> float:
        """Accepted fraction of submitted tokens (the paper's
        decoding-acceptance ratio)."""
        if self.submitted_tokens == 0:
            return 0.0
        return self.accepted_tokens / self.submitted_tokens


@dataclass
class DecodeTrace:
    """Per-decode counters, one entry per speculation round."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_draft_steps(self) -> int:
        return sum(r.draft_steps for r in self.rounds)

    @property
    def total_drafted(self) -> int:
        return sum(r.drafted_tokens for r in self.rounds)

    @property
    def total_recycled(self) -> int:
        return sum(r.recycled_tokens for r in self.rounds)

    @property
    def total_submitted(self) -> int:
        return sum(r.submitted_tokens for r in self.rounds)

    @property
    def total_accepted(self) -> int:
        return sum(r.accepted_tokens for r in self.rounds)

    @property
    def acceptance_ratio(self) -> float:
        submitted = self.total_submitted
        if submitted == 0:
            return 0.0
        return self.total_accepted / submitted

    def mean_per_round(self, attribute: str) -> float:
        if not self.rounds:
            return 0.0
        return sum(getattr(r, attribute) for r in self.rounds) / len(self.rounds)


@dataclass
class DecodeResult:
    """Outcome of decoding one utterance/prompt."""

    tokens: list[int]  # final transcript tokens, EOS stripped
    clock: SimClock
    trace: DecodeTrace
    method: str

    @property
    def total_ms(self) -> float:
        return self.clock.total_ms()

    def ms_per_10s(self, duration_s: float) -> float:
        """Latency normalised per 10 seconds of audio (paper Table II)."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self.total_ms * 10.0 / duration_s


@dataclass(frozen=True)
class StepOutcome:
    """Result of one resumable decode step (one draft→verify round).

    ``ms`` is the simulated model time charged during the step — the SimClock
    delta — which is what a serving scheduler bills to device time.  The
    first step of a decode also carries its prefill/encode cost.
    """

    new_tokens: tuple[int, ...]
    ms: float
    done: bool


#: Phase kinds of one speculative round.
PHASE_DRAFT = "draft"
PHASE_VERIFY = "verify"


@dataclass(frozen=True)
class PhaseOutcome:
    """Result of one resumable decode *phase* (half of a round).

    ``ms`` is the SimClock delta charged during the phase; ``model`` names
    the model that ran it (draft model for ``PHASE_DRAFT``, target model for
    ``PHASE_VERIFY``), which is the routing key for draft/target
    disaggregation.  Tokens only commit at the end of a verify phase.  The
    first draft phase carries the draft-side prefill/encode cost; the first
    verify phase carries the target-side prefill cost.
    """

    phase: str  # PHASE_DRAFT | PHASE_VERIFY
    model: str  # name of the model the phase ran on
    ms: float
    new_tokens: tuple[int, ...]
    round_done: bool  # this phase completes a draft→verify round
    done: bool  # the whole decode finished
    kv_peak: int = 0  # peak KV extent (cached + new positions) of the phase


def _phase_kv_peak(events) -> int:
    """Peak cache extent one phase's forward passes reach.

    ``cached + new`` of a pass is the KV length after it; the maximum over
    the phase's events is the block demand the serving memory gate
    reserves.  Encoder passes don't occupy decoder KV and are skipped.
    """
    peak = 0
    for event in events:
        if event.kind == KIND_ENCODE:
            continue
        extent = event.cached_tokens + event.new_tokens
        if extent > peak:
            peak = extent
    return peak


#: A round generator yields ``(newly_committed_tokens, done)`` once per
#: speculative round and returns the final :class:`DecodeResult`.
RoundGenerator = Generator[tuple[Sequence[int], bool], None, DecodeResult]

#: A phase generator yields ``(phase, model, tokens, round_done, done)``
#: once per phase and returns the final :class:`DecodeResult`.  The stepper
#: adds the SimClock delta, turning each yield into a :class:`PhaseOutcome`.
PhaseGenerator = Generator[
    tuple[str, str, Sequence[int], bool, bool], None, DecodeResult
]


class DecodeStepper:
    """Step-resumable decode: one speculative round per :meth:`step` call.

    Wraps a round generator and the :class:`SimClock` its sessions bill to.
    Each ``step()`` resumes the generator for one round and reports the
    committed tokens plus the clock delta.  After the final round the
    generator is drained so :attr:`result` is immediately available.
    """

    def __init__(self, rounds, clock: SimClock) -> None:
        self._rounds = rounds
        self.clock = clock
        self._result: DecodeResult | None = None
        #: Committed transcript positions so far (grows with every phase's
        #: ``new_tokens``; includes a trailing EOS until the result strips
        #: it).  A streaming scheduler gates decode progress on this.
        self.positions = 0

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> DecodeResult:
        if self._result is None:
            raise RuntimeError("decode not finished; call step() until done")
        return self._result

    def _finish(self, stop: StopIteration) -> None:
        if not isinstance(stop.value, DecodeResult):
            raise RuntimeError(
                "round generator finished without a DecodeResult"
            ) from None
        self._result = stop.value

    def step(self) -> StepOutcome:
        """Run one speculative round; raises if the decode already finished."""
        if self._result is not None:
            raise RuntimeError("decode already finished")
        events_before = len(self.clock.events)
        try:
            tokens, done = next(self._rounds)
        except StopIteration as stop:
            # Degenerate decode (no rounds at all, e.g. a zero-length limit):
            # the generator went straight to its return statement.
            self._finish(stop)
            tokens, done = (), True
        else:
            if done:
                try:
                    next(self._rounds)
                except StopIteration as stop:
                    self._finish(stop)
                else:
                    raise RuntimeError("round generator yielded past done=True")
        ms = sum(event.ms for event in self.clock.events[events_before:])
        self.positions += len(tokens)
        return StepOutcome(tuple(tokens), ms, done)

    def step_phase(self) -> PhaseOutcome:
        """Run one phase.

        Round-generator steppers have no finer granularity than a round, so
        the whole round is reported as a single verify phase (it runs on one
        device regardless of routing policy).  Phase-split decoders override
        this with true draft/verify stepping (:class:`PhasedDecodeStepper`).
        """
        events_before = len(self.clock.events)
        outcome = self.step()
        return PhaseOutcome(
            phase=PHASE_VERIFY,
            model="",
            ms=outcome.ms,
            new_tokens=outcome.new_tokens,
            round_done=True,
            done=outcome.done,
            kv_peak=_phase_kv_peak(self.clock.events[events_before:]),
        )

    def drain(self) -> DecodeResult:
        """Run all remaining rounds and return the final result."""
        while self._result is None:
            self.step()
        return self._result


class PhasedDecodeStepper(DecodeStepper):
    """Phase-resumable decode: one draft or verify phase per
    :meth:`step_phase` call.

    Wraps a :data:`PhaseGenerator`.  The atomic :meth:`step` drains the
    phases of one round and sums their costs, so it is bit-identical to the
    round-level stepper it replaces — ``decode()``, ``drain()`` and every
    round-granular caller are unchanged.
    """

    def step_phase(self) -> PhaseOutcome:
        """Run one phase; raises if the decode already finished."""
        if self._result is not None:
            raise RuntimeError("decode already finished")
        events_before = len(self.clock.events)
        try:
            phase, model, tokens, round_done, done = next(self._rounds)
        except StopIteration as stop:
            # Degenerate decode (no phases at all): the generator went
            # straight to its return statement.
            self._finish(stop)
            phase, model, tokens, round_done, done = PHASE_VERIFY, "", (), True, True
        else:
            if done:
                try:
                    next(self._rounds)
                except StopIteration as stop:
                    self._finish(stop)
                else:
                    raise RuntimeError("phase generator yielded past done=True")
        events = self.clock.events[events_before:]
        self.positions += len(tokens)
        return PhaseOutcome(
            phase=phase,
            model=model,
            ms=sum(event.ms for event in events),
            new_tokens=tuple(tokens),
            round_done=round_done or done,
            done=done,
            kv_peak=_phase_kv_peak(events),
        )

    def step(self) -> StepOutcome:
        """One atomic draft→verify round, composed from its phases."""
        tokens: list[int] = []
        ms = 0.0
        while True:
            outcome = self.step_phase()
            tokens.extend(outcome.new_tokens)
            ms += outcome.ms
            if outcome.round_done:
                return StepOutcome(tuple(tokens), ms, outcome.done)


def _whole_decode_rounds(decoder, unit, clock: SimClock):
    """Fallback round generator: the entire decode as a single step."""
    result = decoder.decode(unit)
    clock.merge(result.clock)
    yield tuple(result.tokens), True
    return result


def begin_decode(decoder, unit) -> DecodeStepper:
    """A :class:`DecodeStepper` for ``decoder`` on ``unit``.

    Decoders exposing a native ``begin()`` get true per-round stepping;
    anything else falls back to a single-step wrapper around ``decode()``
    (correct, but a scheduler cannot interleave inside it).
    """
    make = getattr(decoder, "begin", None)
    if make is not None:
        return make(unit)
    clock = SimClock()
    return DecodeStepper(_whole_decode_rounds(decoder, unit, clock), clock)


class PrefixCursor:
    """Tuple-backed cursor for sessions without a native prefix trie.

    Mirrors :class:`repro.models.simulated.SessionCursor` (``advance`` /
    ``extend`` / ``rollback`` / ``len`` / iteration) on top of a plain token
    tuple, so decoders written against cursors run unchanged on scripted
    fakes and text sessions.  Iterating yields the prefix tokens, which is
    what such sessions expect as a prefix argument.
    """

    __slots__ = ("session", "_prefix")

    def __init__(self, session, prefix: Sequence[int] = ()) -> None:
        self.session = session
        self._prefix = tuple(prefix)

    def advance(self, token: int) -> "PrefixCursor":
        return PrefixCursor(self.session, self._prefix + (token,))

    def extend(self, tokens: Sequence[int]) -> "PrefixCursor":
        return PrefixCursor(self.session, self._prefix + tuple(tokens))

    def rollback(self) -> None:
        self.session.rollback(len(self._prefix))

    @property
    def tokens(self) -> tuple[int, ...]:
        return self._prefix

    def __len__(self) -> int:
        return len(self._prefix)

    def __iter__(self):
        return iter(self._prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixCursor(len={len(self._prefix)})"


def is_cursor(obj) -> bool:
    """True for any session cursor (native trie cursor or tuple fallback)."""
    return hasattr(obj, "advance") and hasattr(obj, "session")


def as_cursor(session, prefix=()):
    """A cursor on ``session`` at ``prefix``.

    Passing an existing cursor returns it unchanged; sessions exposing a
    native ``cursor()`` factory (the trie-backed ASR sessions) get an O(1)
    handle, everything else gets a :class:`PrefixCursor` shim.
    """
    if is_cursor(prefix):
        return prefix
    make = getattr(session, "cursor", None)
    if make is not None:
        return make(prefix)
    return PrefixCursor(session, prefix)


class SessionLike(Protocol):
    """Structural interface decoders require from a model session."""

    def prefill(self) -> None: ...

    def peek(self, prefix: Sequence[int]): ...

    def step(self, prefix: Sequence[int], kind: str = ...): ...

    def step_frontier(self, prefixes, kind: str = ...): ...

    def verify_eval(self, prefixes, billed_tokens: int | None = ...): ...

    def rollback(self, kept_prefix_len: int) -> None: ...

    def is_eos(self, token: int) -> bool: ...

    def max_decode_positions(self) -> int: ...


class ModelLike(Protocol):
    """Structural interface decoders require from a model."""

    name: str

    def session(self, unit, clock: SimClock) -> SessionLike: ...


class Decoder(Protocol):
    """A decoding strategy."""

    name: str

    def decode(self, unit) -> DecodeResult: ...


def strip_eos(tokens: list[int], eos_id: int) -> list[int]:
    """Drop a trailing EOS token if present."""
    if tokens and tokens[-1] == eos_id:
        return tokens[:-1]
    return tokens
