"""Plain autoregressive (greedy) decoding — the paper's primary baseline."""

from __future__ import annotations

from repro.decoding.base import (
    PHASE_VERIFY,
    DecodeResult,
    DecodeTrace,
    ModelLike,
    PhaseGenerator,
    PhasedDecodeStepper,
    as_cursor,
    strip_eos,
)
from repro.models.latency import KIND_DECODE, SimClock


class AutoregressiveDecoder:
    """One forward pass per output token on the target model."""

    def __init__(self, target: ModelLike, name: str = "autoregressive") -> None:
        self.target = target
        self.name = name

    def begin(self, unit) -> PhasedDecodeStepper:
        """Step-resumable decode; each step emits one token."""
        clock = SimClock()
        return PhasedDecodeStepper(self._phases(unit, clock), clock)

    def decode(self, unit) -> DecodeResult:
        return self.begin(unit).drain()

    def _phases(self, unit, clock: SimClock) -> PhaseGenerator:
        # There is no draft model: every round is a single target-model
        # phase, so a disaggregating router keeps AR decodes entirely on
        # the target pool.
        session = self.target.session(unit, clock)
        session.prefill()
        tokens: list[int] = []
        cursor = as_cursor(session)
        limit = session.max_decode_positions()
        while len(tokens) < limit:
            result = session.step(cursor, kind=KIND_DECODE)
            tokens.append(result.token)
            done = session.is_eos(result.token) or len(tokens) >= limit
            yield PHASE_VERIFY, self.target.name, (result.token,), True, done
            if done:
                break
            cursor = cursor.advance(result.token)
        eos_id = self.target.vocab.eos_id if hasattr(self.target, "vocab") else None
        final = strip_eos(tokens, eos_id) if eos_id is not None else tokens
        return DecodeResult(
            tokens=final, clock=clock, trace=DecodeTrace(), method=self.name
        )
