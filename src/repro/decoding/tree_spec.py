"""SpecInfer-style fixed-shape token-tree speculative decoding.

A fixed branching schedule (e.g. top-2 at the first two depths, then single
chains) is expanded every round regardless of model confidence — the
"Fixed Tree" family of the paper's Table I: good verification acceptance,
but the draft burns a full tree of forward passes every round and the tree
depth is capped to keep the node count bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decoding.base import (
    DecodeResult,
    DecodeTrace,
    ModelLike,
    RoundStats,
    as_cursor,
    strip_eos,
)
from repro.decoding.speculative import commit
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.decoding.verifier import verify_tree
from repro.models.latency import KIND_DRAFT, SimClock


@dataclass(frozen=True)
class FixedTreeConfig:
    """Branching factor per tree depth."""

    branching: tuple[int, ...] = (2, 2, 1, 1, 1, 1, 1, 1)

    def __post_init__(self) -> None:
        if not self.branching:
            raise ValueError("branching schedule cannot be empty")
        if any(b < 1 for b in self.branching):
            raise ValueError("branching factors must be >= 1")

    @property
    def depth(self) -> int:
        return len(self.branching)


class FixedTreeDecoder:
    """Fixed token-tree speculative decoding (SpecInfer-like baseline)."""

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: FixedTreeConfig = FixedTreeConfig(),
        name: str | None = None,
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self.name = name or f"fixed-tree(depth={config.depth})"

    def decode(self, unit) -> DecodeResult:
        clock = SimClock()
        draft_session = self.draft.session(unit, clock)
        target_session = self.target.session(unit, clock)
        draft_session.prefill()
        target_session.prefill()
        eos_id = self.target.vocab.eos_id
        trace = DecodeTrace()
        prefix: list[int] = []
        draft_cursor = as_cursor(draft_session)
        target_cursor = as_cursor(target_session)
        limit = target_session.max_decode_positions()
        done = False
        while not done and len(prefix) < limit:
            emitted = self._round(
                draft_cursor,
                target_cursor,
                draft_session,
                target_session,
                trace,
                eos_id,
            )
            committed_before = len(prefix)
            prefix, done = commit(prefix, emitted, eos_id)
            newly_committed = prefix[committed_before:]
            draft_cursor = draft_cursor.extend(newly_committed)
            target_cursor = target_cursor.extend(newly_committed)
            draft_cursor.rollback()
            target_cursor.rollback()
        return DecodeResult(
            tokens=strip_eos(prefix, eos_id),
            clock=clock,
            trace=trace,
            method=self.name,
        )

    def _round(
        self,
        draft_cursor,
        target_cursor,
        draft_session,
        target_session,
        trace,
        eos_id,
    ) -> list[int]:
        stats = RoundStats()
        tree = TokenTree()
        node_cursors = {ROOT_PARENT: draft_cursor}
        frontier: list[int] = [ROOT_PARENT]
        for _depth, branch_factor in enumerate(self.config.branching):
            live = [
                node
                for node in frontier
                if node == ROOT_PARENT or tree.nodes[node].token != eos_id
            ]
            if not live:
                break
            results = draft_session.step_frontier(
                [node_cursors[node] for node in live], kind=KIND_DRAFT
            )
            stats.draft_steps += 1
            next_frontier: list[int] = []
            for node, result in zip(live, results, strict=True):
                taken: set[int] = set()
                for token, prob in result.topk[:branch_factor]:
                    if token in taken:
                        continue
                    taken.add(token)
                    child = tree.add(token, node, prob)
                    node_cursors[child] = node_cursors[node].advance(token)
                    next_frontier.append(child)
            frontier = next_frontier
        stats.drafted_tokens = len(tree)
        stats.submitted_tokens = tree.max_depth()
        stats.tree_nodes = len(tree)
        outcome = verify_tree(target_session, target_cursor, tree)
        stats.accepted_tokens = len(outcome.accepted_tokens)
        emitted = outcome.accepted_tokens + [outcome.correction]
        stats.emitted_tokens = len(emitted)
        trace.rounds.append(stats)
        return emitted
