"""Vanilla speculative decoding — the paper's speculative baselines.

Configurations mirror the paper's baselines: (prediction length, beam size)
of (8, 1), (16, 1) and (8, 2).  With one beam the draft proposes a single
linear sequence of fixed length; with two beams the first uncertain position
spawns a second branch (top-2 token) and both branches are extended in
batched draft passes, then verified together as a token tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decoding.base import (
    PHASE_DRAFT,
    PHASE_VERIFY,
    DecodeResult,
    DecodeTrace,
    ModelLike,
    PhaseGenerator,
    PhasedDecodeStepper,
    RoundStats,
    as_cursor,
    strip_eos,
)
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.decoding.verifier import verify_sequence, verify_tree
from repro.models.latency import KIND_DRAFT, SimClock


@dataclass(frozen=True)
class SpeculativeConfig:
    """(prediction length, beam size) of the speculative baseline."""

    draft_len: int = 8
    beams: int = 1

    def __post_init__(self) -> None:
        if self.draft_len < 1:
            raise ValueError("draft_len must be >= 1")
        if self.beams not in (1, 2):
            raise ValueError("beams must be 1 or 2")

    @property
    def label(self) -> str:
        return f"({self.draft_len}, {self.beams})"


def commit(
    prefix: list[int], new_tokens: list[int], eos_id: int
) -> tuple[list[int], bool]:
    """Append ``new_tokens`` to ``prefix``; stop at the first EOS."""
    done = False
    for token in new_tokens:
        prefix.append(token)
        if token == eos_id:
            done = True
            break
    return prefix, done


class SpeculativeDecoder:
    """Draft-then-verify decoding with a fixed prediction length."""

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: SpeculativeConfig = SpeculativeConfig(),
        name: str | None = None,
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self.name = name or f"speculative{config.label}"

    # -- public API ----------------------------------------------------------
    def begin(self, unit) -> PhasedDecodeStepper:
        """Step-resumable decode; each step is one draft→verify round, split
        into a draft phase and a verify phase."""
        clock = SimClock()
        return PhasedDecodeStepper(self._decode_phases(unit, clock), clock)

    def decode(self, unit) -> DecodeResult:
        return self.begin(unit).drain()

    def _decode_phases(self, unit, clock: SimClock) -> PhaseGenerator:
        draft_session = self.draft.session(unit, clock)
        target_session = self.target.session(unit, clock)
        draft_session.prefill()
        eos_id = self.target.vocab.eos_id
        trace = DecodeTrace()
        prefix: list[int] = []
        draft_cursor = as_cursor(draft_session)
        target_cursor = as_cursor(target_session)
        limit = target_session.max_decode_positions()
        single = self.config.beams == 1
        target_prefilled = False
        done = False
        while not done and len(prefix) < limit:
            stats = RoundStats()
            draft_fn = self._draft_single if single else self._draft_beams
            drafted = draft_fn(draft_cursor, draft_session, stats, eos_id)
            yield PHASE_DRAFT, self.draft.name, (), False, False
            if not target_prefilled:
                # Target prefill bills to the first verify phase, so a
                # disaggregating router charges it to the target pool.
                target_session.prefill()
                target_prefilled = True
            verify_fn = self._verify_single if single else self._verify_beams
            emitted = verify_fn(target_session, target_cursor, drafted, stats)
            trace.rounds.append(stats)
            committed_before = len(prefix)
            prefix, done = commit(prefix, emitted, eos_id)
            newly_committed = prefix[committed_before:]
            draft_cursor = draft_cursor.extend(newly_committed)
            target_cursor = target_cursor.extend(newly_committed)
            draft_cursor.rollback()
            target_cursor.rollback()
            done = done or len(prefix) >= limit
            yield PHASE_VERIFY, self.target.name, newly_committed, True, done
        return DecodeResult(
            tokens=strip_eos(prefix, eos_id),
            clock=clock,
            trace=trace,
            method=self.name,
        )

    # -- single-beam round ------------------------------------------------------
    def _draft_single(self, draft_cursor, draft_session, stats, eos_id) -> list[int]:
        drafts: list[int] = []
        cursor = draft_cursor
        for _ in range(self.config.draft_len):
            result = draft_session.step(cursor, kind=KIND_DRAFT)
            stats.draft_steps += 1
            drafts.append(result.token)
            if result.token == eos_id:
                break
            cursor = cursor.advance(result.token)
        stats.drafted_tokens = len(drafts)
        stats.submitted_tokens = len(drafts)
        stats.tree_nodes = len(drafts)
        return drafts

    def _verify_single(self, target_session, target_cursor, drafts, stats) -> list[int]:
        outcome = verify_sequence(target_session, target_cursor, drafts)
        stats.accepted_tokens = outcome.accepted
        emitted = drafts[: outcome.accepted] + [outcome.correction]
        stats.emitted_tokens = len(emitted)
        return emitted

    # -- two-beam round ------------------------------------------------------
    def _draft_beams(self, draft_cursor, draft_session, stats, eos_id) -> TokenTree:
        tree = TokenTree()
        first = draft_session.step(draft_cursor, kind=KIND_DRAFT)
        stats.draft_steps += 1
        primary = tree.add(first.token, ROOT_PARENT, first.top_prob)
        node_cursors = {primary: draft_cursor.advance(first.token)}
        frontier = [primary]
        if len(first.topk) > 1 and first.topk[1][0] != first.token:
            secondary_token, secondary_prob = first.topk[1]
            secondary = tree.add(secondary_token, ROOT_PARENT, secondary_prob)
            node_cursors[secondary] = draft_cursor.advance(secondary_token)
            frontier.append(secondary)
        # Extend every live branch one token per batched draft pass.
        for _ in range(self.config.draft_len - 1):
            live = [node for node in frontier if tree.nodes[node].token != eos_id]
            if not live:
                break
            results = draft_session.step_frontier(
                [node_cursors[node] for node in live], kind=KIND_DRAFT
            )
            stats.draft_steps += 1
            frontier = []
            for node, result in zip(live, results, strict=True):
                child = tree.add(result.token, node, result.top_prob)
                node_cursors[child] = node_cursors[node].advance(result.token)
                frontier.append(child)
        stats.drafted_tokens = len(tree)
        stats.submitted_tokens = tree.max_depth()
        stats.tree_nodes = len(tree)
        return tree

    def _verify_beams(self, target_session, target_cursor, tree, stats) -> list[int]:
        outcome = verify_tree(target_session, target_cursor, tree)
        stats.accepted_tokens = len(outcome.accepted_tokens)
        emitted = outcome.accepted_tokens + [outcome.correction]
        stats.emitted_tokens = len(emitted)
        return emitted
