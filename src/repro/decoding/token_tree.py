"""Draft token trees with SpecInfer-style 2-D attention masks.

A token tree holds multiple candidate draft sequences sharing common
prefixes.  For verification the tree is flattened into a node list and a 2-D
attention mask lets the target model evaluate every branch independently in
one forward pass (paper Fig. 4): node *i* may attend to node *j* iff *j* is
an ancestor of *i* (or *i* itself), plus the committed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

ROOT_PARENT = -1


@dataclass(slots=True)
class TreeNode:
    """One drafted token in the tree."""

    token: int
    parent: int  # index of parent node, or ROOT_PARENT for first-level nodes
    prob: float = 0.0  # draft top-prob when this token was generated
    recycled: bool = False  # True if reused from a previous draft sequence
    children: list[int] = field(default_factory=list)


class TokenTree:
    """A tree of draft tokens rooted at the committed prefix."""

    def __init__(self) -> None:
        self.nodes: list[TreeNode] = []

    # -- construction ------------------------------------------------------
    def add(
        self,
        token: int,
        parent: int = ROOT_PARENT,
        prob: float = 0.0,
        recycled: bool = False,
    ) -> int:
        """Append a node under ``parent`` and return its index."""
        if parent != ROOT_PARENT and not 0 <= parent < len(self.nodes):
            raise IndexError(f"parent index {parent} out of range")
        index = len(self.nodes)
        self.nodes.append(TreeNode(token, parent, prob, recycled))
        if parent != ROOT_PARENT:
            self.nodes[parent].children.append(index)
        return index

    def add_chain(
        self,
        tokens: Sequence[int],
        parent: int = ROOT_PARENT,
        probs: Sequence[float] | None = None,
        recycled: bool = False,
    ) -> list[int]:
        """Append a linear chain of tokens; returns the new node indices."""
        indices = []
        for offset, token in enumerate(tokens):
            prob = probs[offset] if probs is not None else 0.0
            parent = self.add(token, parent, prob, recycled)
            indices.append(parent)
        return indices

    @classmethod
    def from_sequences(cls, sequences: Iterable[Sequence[int]]) -> "TokenTree":
        """Build a trie merging shared prefixes of candidate sequences."""
        tree = cls()
        # Maps (parent, token) -> node index to merge shared prefixes.
        edges: dict[tuple[int, int], int] = {}
        for sequence in sequences:
            parent = ROOT_PARENT
            for token in sequence:
                key = (parent, token)
                node = edges.get(key)
                if node is None:
                    node = tree.add(token, parent)
                    edges[key] = node
                parent = node
        return tree

    # -- inspection ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def depth_of(self, index: int) -> int:
        """1-based depth (distance from the committed prefix)."""
        depth = 0
        while index != ROOT_PARENT:
            index = self.nodes[index].parent
            depth += 1
        return depth

    def ancestors(self, index: int) -> list[int]:
        """Ancestor indices from first level down to ``index`` inclusive."""
        chain = []
        while index != ROOT_PARENT:
            chain.append(index)
            index = self.nodes[index].parent
        chain.reverse()
        return chain

    def path_tokens(self, index: int) -> list[int]:
        """Tokens along the path from the prefix to ``index`` inclusive."""
        return [self.nodes[i].token for i in self.ancestors(index)]

    def leaves(self) -> list[int]:
        return [i for i, node in enumerate(self.nodes) if not node.children]

    def roots(self) -> list[int]:
        return [i for i, node in enumerate(self.nodes) if node.parent == ROOT_PARENT]

    def max_depth(self) -> int:
        return max((self.depth_of(leaf) for leaf in self.leaves()), default=0)

    def num_branches(self) -> int:
        return len(self.leaves())

    def recycled_count(self) -> int:
        return sum(1 for node in self.nodes if node.recycled)

    # -- verification support ------------------------------------------------
    def attention_mask(self) -> np.ndarray:
        """Boolean mask ``(n, n)``: entry [i, j] is True iff node ``i`` may
        attend to node ``j`` (ancestor-or-self).  The committed prefix is
        implicitly visible to every node."""
        n = len(self.nodes)
        mask = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in self.ancestors(i):
                mask[i, j] = True
        return mask

    def validate(self) -> None:
        """Raise if parent links or children lists are inconsistent."""
        for index, node in enumerate(self.nodes):
            if node.parent != ROOT_PARENT:
                if not 0 <= node.parent < index:
                    raise ValueError(
                        f"node {index} has forward/invalid parent {node.parent}"
                    )
                if index not in self.nodes[node.parent].children:
                    raise ValueError(f"node {index} missing from parent children")
            for child in node.children:
                if self.nodes[child].parent != index:
                    raise ValueError(f"child link mismatch at node {index}")
