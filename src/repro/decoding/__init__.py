"""Decoding algorithms: autoregressive and speculative baselines, token trees."""

from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.base import (
    PHASE_DRAFT,
    PHASE_VERIFY,
    DecodeResult,
    DecodeStepper,
    DecodeTrace,
    Decoder,
    PhasedDecodeStepper,
    PhaseOutcome,
    PrefixCursor,
    RoundStats,
    StepOutcome,
    as_cursor,
    begin_decode,
    is_cursor,
)
from repro.decoding.dynamic_tree import DynamicTreeConfig, DynamicTreeDecoder
from repro.decoding.sampling import (
    SamplingConfig,
    SamplingDecoder,
    SpeculativeSamplingDecoder,
)
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.decoding.token_tree import TokenTree, TreeNode
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder
from repro.decoding.verifier import (
    SequenceVerifyOutcome,
    TreeVerifyOutcome,
    verify_sequence,
    verify_tree,
)

__all__ = [
    "AutoregressiveDecoder",
    "DecodeResult",
    "DecodeStepper",
    "DecodeTrace",
    "Decoder",
    "DynamicTreeConfig",
    "DynamicTreeDecoder",
    "FixedTreeConfig",
    "FixedTreeDecoder",
    "PHASE_DRAFT",
    "PHASE_VERIFY",
    "PhaseOutcome",
    "PhasedDecodeStepper",
    "PrefixCursor",
    "RoundStats",
    "StepOutcome",
    "as_cursor",
    "begin_decode",
    "is_cursor",
    "SamplingConfig",
    "SamplingDecoder",
    "SequenceVerifyOutcome",
    "SpeculativeConfig",
    "SpeculativeDecoder",
    "SpeculativeSamplingDecoder",
    "TokenTree",
    "TreeNode",
    "TreeVerifyOutcome",
    "verify_sequence",
    "verify_tree",
]
