"""Dynamic token-tree speculative decoding (ProPD / EAGLE-2 family).

The "Dynamic Tree" row of the paper's Table I: instead of a fixed branching
schedule, the draft grows the token tree guided by its own probabilities —
a frontier node is expanded with every candidate whose *path probability*
(product of candidate probabilities along the branch) stays above a
threshold, and the whole tree is capped by a node budget, keeping
verification batches small while spending width only where the draft is
genuinely uncertain.

This is a faithful baseline implementation, not part of SpecASR itself; it
exists so the Table I comparison measures a real dynamic-tree competitor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.decoding.base import (
    DecodeResult,
    DecodeTrace,
    ModelLike,
    RoundStats,
    as_cursor,
    strip_eos,
)
from repro.decoding.speculative import commit
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.decoding.verifier import verify_tree
from repro.models.latency import KIND_DRAFT, SimClock


@dataclass(frozen=True)
class DynamicTreeConfig:
    """Probability-guided tree growth parameters.

    Attributes:
        node_budget: Maximum tree nodes per round (verification batch cap).
        max_depth: Maximum tree depth per round.
        expand_threshold: Minimum path probability for a candidate to enter
            the tree; below it the branch is pruned (ProPD-style).
        max_children: Cap on children expanded per node.
    """

    node_budget: int = 24
    max_depth: int = 10
    expand_threshold: float = 0.08
    max_children: int = 3

    def __post_init__(self) -> None:
        if self.node_budget < 1:
            raise ValueError("node_budget must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < self.expand_threshold < 1.0:
            raise ValueError("expand_threshold must be in (0, 1)")
        if self.max_children < 1:
            raise ValueError("max_children must be >= 1")


class DynamicTreeDecoder:
    """Speculative decoding with a probability-guided dynamic token tree."""

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: DynamicTreeConfig = DynamicTreeConfig(),
        name: str | None = None,
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self.name = name or f"dynamic-tree(n={config.node_budget})"

    def decode(self, unit) -> DecodeResult:
        clock = SimClock()
        draft_session = self.draft.session(unit, clock)
        target_session = self.target.session(unit, clock)
        draft_session.prefill()
        target_session.prefill()
        eos_id = self.target.vocab.eos_id
        trace = DecodeTrace()
        prefix: list[int] = []
        draft_cursor = as_cursor(draft_session)
        target_cursor = as_cursor(target_session)
        limit = target_session.max_decode_positions()
        done = False
        while not done and len(prefix) < limit:
            emitted = self._round(
                draft_cursor,
                target_cursor,
                draft_session,
                target_session,
                trace,
                eos_id,
            )
            committed_before = len(prefix)
            prefix, done = commit(prefix, emitted, eos_id)
            newly_committed = prefix[committed_before:]
            draft_cursor = draft_cursor.extend(newly_committed)
            target_cursor = target_cursor.extend(newly_committed)
            draft_cursor.rollback()
            target_cursor.rollback()
        return DecodeResult(
            tokens=strip_eos(prefix, eos_id),
            clock=clock,
            trace=trace,
            method=self.name,
        )

    def _round(
        self,
        draft_cursor,
        target_cursor,
        draft_session,
        target_session,
        trace,
        eos_id,
    ) -> list[int]:
        stats = RoundStats()
        tree = TokenTree()
        config = self.config
        # Path probability per node; ROOT_PARENT's is 1.
        path_prob: dict[int, float] = {ROOT_PARENT: 1.0}
        node_cursors = {ROOT_PARENT: draft_cursor}
        # Frontier of nodes whose children have not been generated yet.
        frontier: list[int] = [ROOT_PARENT]
        depth = 0
        while frontier and len(tree) < config.node_budget and depth < config.max_depth:
            results = draft_session.step_frontier(
                [node_cursors[node] for node in frontier], kind=KIND_DRAFT
            )
            stats.draft_steps += 1
            # Collect candidate children across the whole frontier, then
            # admit the highest-path-probability ones within the budget.
            candidates: list[tuple[float, int, int, int, float]] = []
            for order, (node, result) in enumerate(zip(frontier, results, strict=True)):
                seen: set[int] = set()
                for token, prob in result.topk[: config.max_children]:
                    if token in seen:
                        continue
                    seen.add(token)
                    p_path = path_prob[node] * prob
                    if p_path < config.expand_threshold:
                        continue
                    # heapq is a min-heap: negate for best-first.
                    candidates.append((-p_path, order, node, token, prob))
            heapq.heapify(candidates)
            next_frontier: list[int] = []
            while candidates and len(tree) < config.node_budget:
                neg_p, _order, node, token, prob = heapq.heappop(candidates)
                child = tree.add(token, node, prob)
                path_prob[child] = -neg_p
                node_cursors[child] = node_cursors[node].advance(token)
                if token != eos_id:
                    next_frontier.append(child)
            frontier = next_frontier
            depth += 1

        if len(tree) == 0:
            # Degenerate round (nothing above threshold): draft one token.
            result = draft_session.step(draft_cursor, kind=KIND_DRAFT)
            stats.draft_steps += 1
            node = tree.add(result.token, ROOT_PARENT, result.top_prob)
            path_prob[node] = result.top_prob

        stats.drafted_tokens = len(tree)
        stats.submitted_tokens = tree.max_depth()
        stats.tree_nodes = len(tree)
        outcome = verify_tree(target_session, target_cursor, tree)
        stats.accepted_tokens = len(outcome.accepted_tokens)
        emitted = outcome.accepted_tokens + [outcome.correction]
        stats.emitted_tokens = len(emitted)
        trace.rounds.append(stats)
        return emitted
