"""Stochastic decoding: temperature sampling and speculative *sampling*.

The paper (and this repo's core) uses greedy decoding, where acceptance is
exact token match.  Production ASR sometimes samples (e.g. temperature
fallback in Whisper), and speculative decoding has a sampling-correct
counterpart (Leviathan et al.; Chen et al.): accept a draft token ``x`` with
probability ``min(1, p_target(x) / p_draft(x))`` and, on rejection, resample
from the residual distribution ``max(p_target - p_draft, 0)``.  The combined
process provably emits tokens distributed exactly as target sampling —
lossless in distribution rather than in value.

Distributions here are the session top-k distributions renormalised; the
distribution-preservation property is verified statistically in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decoding.base import (
    DecodeResult,
    DecodeTrace,
    ModelLike,
    RoundStats,
    as_cursor,
    strip_eos,
)
from repro.models.latency import KIND_DECODE, KIND_DRAFT, SimClock
from repro.models.simulated import StepResult
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class SamplingConfig:
    """Sampling-mode parameters."""

    seed: int = 0
    draft_len: int = 8

    def __post_init__(self) -> None:
        if self.draft_len < 1:
            raise ValueError("draft_len must be >= 1")


def _distribution(step: StepResult) -> dict[int, float]:
    """The step's top-k distribution, renormalised to sum to 1."""
    total = sum(prob for _tok, prob in step.topk)
    if total <= 0:
        raise ValueError("degenerate step distribution")
    return {token: prob / total for token, prob in step.topk}


def _sample(dist: dict[int, float], rng: RngStream) -> int:
    draw = rng.uniform()
    cumulative = 0.0
    last = None
    for token, prob in dist.items():
        cumulative += prob
        last = token
        if draw < cumulative:
            return token
    return last  # numeric slack lands on the final token


class SamplingDecoder:
    """Plain autoregressive *sampling* on the target model."""

    def __init__(
        self,
        target: ModelLike,
        config: SamplingConfig = SamplingConfig(),
        name: str = "sampling",
    ) -> None:
        self.target = target
        self.config = config
        self.name = name

    def decode(self, unit) -> DecodeResult:
        clock = SimClock()
        session = self.target.session(unit, clock)
        session.prefill()
        rng = RngStream(self.config.seed, "sampling", unit.seed)
        eos_id = self.target.vocab.eos_id
        tokens: list[int] = []
        cursor = as_cursor(session)
        limit = session.max_decode_positions()
        while len(tokens) < limit:
            step = session.step(cursor, kind=KIND_DECODE)
            token = _sample(_distribution(step), rng.child("tok", len(tokens)))
            tokens.append(token)
            if token == eos_id:
                break
            cursor = cursor.advance(token)
        return DecodeResult(
            tokens=strip_eos(tokens, eos_id),
            clock=clock,
            trace=DecodeTrace(),
            method=self.name,
        )


class SpeculativeSamplingDecoder:
    """Speculative sampling: draft proposals + probability-ratio acceptance.

    Emits tokens with *exactly* the target's sampling distribution (over the
    shared top-k support), while most tokens are proposed by the cheap draft.
    """

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: SamplingConfig = SamplingConfig(),
        name: str | None = None,
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self.name = name or f"spec-sampling({config.draft_len})"

    def decode(self, unit) -> DecodeResult:
        clock = SimClock()
        draft_session = self.draft.session(unit, clock)
        target_session = self.target.session(unit, clock)
        draft_session.prefill()
        target_session.prefill()
        rng = RngStream(self.config.seed, "spec-sampling", unit.seed)
        eos_id = self.target.vocab.eos_id
        trace = DecodeTrace()
        prefix: list[int] = []
        draft_cursor = as_cursor(draft_session)
        target_cursor = as_cursor(target_session)
        limit = target_session.max_decode_positions()
        step_index = 0
        done = False
        while not done and len(prefix) < limit:
            stats = RoundStats()
            # --- draft phase: sample gamma tokens from the draft -----------------
            drafts: list[int] = []
            draft_dists: list[dict[int, float]] = []
            cursor = draft_cursor
            for _ in range(self.config.draft_len):
                step = draft_session.step(cursor, kind=KIND_DRAFT)
                stats.draft_steps += 1
                dist = _distribution(step)
                token = _sample(dist, rng.child("draft", step_index, len(drafts)))
                drafts.append(token)
                draft_dists.append(dist)
                if token == eos_id:
                    break
                cursor = cursor.advance(token)
            stats.drafted_tokens = len(drafts)
            stats.submitted_tokens = len(drafts)
            stats.tree_nodes = len(drafts)
            # --- verification: one batched target pass --------------------------
            verify_cursors = [target_cursor]
            for token in drafts:
                verify_cursors.append(verify_cursors[-1].advance(token))
            results = target_session.verify_eval(
                verify_cursors, billed_tokens=len(drafts)
            )
            emitted: list[int] = []
            accepted = 0
            for index, token in enumerate(drafts):
                target_dist = _distribution(results[index])
                p_target = target_dist.get(token, 0.0)
                p_draft = draft_dists[index].get(token, 1e-12)
                ratio = min(1.0, p_target / p_draft)
                if rng.child("accept", step_index, index).uniform() < ratio:
                    accepted += 1
                    emitted.append(token)
                    continue
                # Rejected: resample from the residual distribution.
                residual = {
                    tok: max(prob - draft_dists[index].get(tok, 0.0), 0.0)
                    for tok, prob in target_dist.items()
                }
                total = sum(residual.values())
                if total <= 0.0:
                    residual = target_dist
                    total = 1.0
                residual = {tok: prob / total for tok, prob in residual.items()}
                emitted.append(
                    _sample(residual, rng.child("resample", step_index, index))
                )
                break
            else:
                # All drafts accepted: bonus token from the final distribution.
                bonus_dist = _distribution(results[len(drafts)])
                emitted.append(_sample(bonus_dist, rng.child("bonus", step_index)))
            stats.accepted_tokens = accepted
            stats.emitted_tokens = len(emitted)
            trace.rounds.append(stats)
            committed_before = len(prefix)
            for token in emitted:
                prefix.append(token)
                if token == eos_id:
                    done = True
                    break
            newly_committed = prefix[committed_before:]
            draft_cursor = draft_cursor.extend(newly_committed)
            target_cursor = target_cursor.extend(newly_committed)
            draft_cursor.rollback()
            target_cursor.rollback()
            step_index += 1
        return DecodeResult(
            tokens=strip_eos(prefix, eos_id),
            clock=clock,
            trace=trace,
            method=self.name,
        )
