"""Lossless greedy verification of draft sequences and token trees.

Verification is what guarantees iso-accuracy: a draft token is accepted iff
it equals the token the target model itself would produce at that position
given the same prefix.  By induction the accepted prefix is always exactly
the target's own greedy path, so every speculative strategy in this repo
emits the identical transcript to plain autoregressive decoding — a property
the test suite checks exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.decoding.base import SessionLike, as_cursor
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.models.simulated import StepResult


@dataclass
class SequenceVerifyOutcome:
    """Result of verifying a linear draft sequence."""

    accepted: int  # number of leading draft tokens accepted
    correction: int  # target token to emit after the accepted ones
    correction_result: StepResult  # full distribution of the correction
    results: list[StepResult]  # target outputs at each draft position


def verify_sequence(
    target: SessionLike, prefix: Sequence[int], draft_tokens: Sequence[int]
) -> SequenceVerifyOutcome:
    """Verify ``draft_tokens`` after ``prefix`` in one target pass.

    The target evaluates the next-token distribution after every draft
    prefix (one batched forward of ``len(draft_tokens)`` input tokens; the
    distribution after the full prefix is cached from the previous round).

    ``prefix`` may be a token sequence or a session cursor; cursors keep the
    per-position cost O(1) instead of re-hashing the full prefix.
    """
    drafts = list(draft_tokens)
    if not drafts:
        raise ValueError("verify_sequence needs at least one draft token")
    cursor = as_cursor(target, prefix)
    cursors = [cursor]
    for token in drafts:
        cursor = cursor.advance(token)
        cursors.append(cursor)
    results = target.verify_eval(cursors, billed_tokens=len(drafts))
    accepted = 0
    # results carries one extra entry (the post-acceptance correction
    # distribution), so this zip truncates by design.
    for draft_token, result in zip(drafts, results, strict=False):
        if result.token != draft_token:
            break
        accepted += 1
    correction_result = results[accepted]
    return SequenceVerifyOutcome(
        accepted=accepted,
        correction=correction_result.token,
        correction_result=correction_result,
        results=results[: len(drafts)],
    )


@dataclass
class TreeVerifyOutcome:
    """Result of verifying a token tree."""

    accepted_tokens: list[int]  # tokens along the best accepted path
    accepted_node: int  # deepest accepted node index, or ROOT_PARENT
    correction: int  # target token after the accepted path
    correction_result: StepResult
    accepted_set: frozenset[int]  # all accepted node indices
    node_results: list[StepResult]  # target output *at* each node's path


def verify_tree(
    target: SessionLike,
    prefix: Sequence[int],
    tree: TokenTree,
    billed_tokens: int | None = None,
) -> TreeVerifyOutcome:
    """Verify every branch of ``tree`` in one masked target pass.

    ``billed_tokens`` defaults to the number of tree nodes — the inputs the
    2-D attention mask evaluates in parallel.  ``prefix`` may be a token
    sequence or a session cursor; each node's evaluation point is reached by
    advancing its parent's cursor one token, so the whole tree costs
    O(nodes) rather than O(nodes × prefix length).
    """
    if len(tree) == 0:
        raise ValueError("cannot verify an empty token tree")
    root_cursor = as_cursor(target, prefix)
    # Evaluate the target at the bare prefix (root-level distribution, cached
    # from the previous round) and after each node's path.  Nodes are in
    # topological order, so every parent cursor exists before its children.
    node_cursors: list = []
    for node in tree.nodes:
        parent = (
            root_cursor if node.parent == ROOT_PARENT else node_cursors[node.parent]
        )
        node_cursors.append(parent.advance(node.token))
    billed = billed_tokens if billed_tokens is not None else len(tree)
    results = target.verify_eval([root_cursor, *node_cursors], billed_tokens=billed)
    root_result = results[0]
    node_results = results[1:]

    accepted: set[int] = set()
    best_node = ROOT_PARENT
    best_depth = 0
    # Nodes are in topological order (parents precede children).
    for index, node in enumerate(tree.nodes):
        if node.parent == ROOT_PARENT:
            expected = root_result.token
            parent_ok = True
        else:
            expected = node_results[node.parent].token
            parent_ok = node.parent in accepted
        if parent_ok and node.token == expected:
            accepted.add(index)
            depth = tree.depth_of(index)
            if depth > best_depth:
                best_depth = depth
                best_node = index

    if best_node == ROOT_PARENT:
        correction_result = root_result
        accepted_tokens: list[int] = []
    else:
        correction_result = node_results[best_node]
        accepted_tokens = tree.path_tokens(best_node)
    return TreeVerifyOutcome(
        accepted_tokens=accepted_tokens,
        accepted_node=best_node,
        correction=correction_result.token,
        correction_result=correction_result,
        accepted_set=frozenset(accepted),
        node_results=node_results,
    )
