"""Command-line interface: ``specasr`` / ``python -m repro``.

Subcommands:

* ``list``            — list reproducible experiments (paper figures/tables)
* ``run EXP [...]``   — run one or all experiments and print their reports
* ``decode``          — decode a sample utterance with every method
* ``serve-sim``       — simulate live traffic against a latency SLO
* ``lint``            — statically check the determinism/simulation contracts
* ``models``          — show the model registry
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.experiments import list_experiments, run_experiment
from repro.harness.methods import STANDARD_METHODS, standard_methods
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import PAIRINGS, get_spec, list_models, model_pair
from repro.serving.router import ROUTER_ALIASES, ROUTER_POLICIES, SPLIT_POLICIES
from repro.version import PAPER_TITLE, __version__


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _unit_interval(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"expected a value in [0, 1], got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="specasr",
        description=f"Reproduction of {PAPER_TITLE!r} (v{__version__})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments")

    run_parser = sub.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument("--utterances", type=int, default=32)
    run_parser.add_argument("--seed", type=int, default=2025)
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decode corpora with N parallel workers (results are identical "
        "to the serial runner; see repro.harness.executor)",
    )
    run_parser.add_argument(
        "--json-dir",
        default=None,
        help="also save each report as JSON under this directory",
    )
    run_parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the run under cProfile and write pstats data to PATH "
        "(inspect with `python -m pstats PATH` or snakeviz); results are "
        "unchanged — profiling only observes the run",
    )

    decode_parser = sub.add_parser("decode", help="decode a sample utterance")
    decode_parser.add_argument("--pairing", choices=sorted(PAIRINGS), default="whisper")
    decode_parser.add_argument("--split", default="test-clean")
    decode_parser.add_argument("--index", type=int, default=0)

    serve_parser = sub.add_parser(
        "serve-sim",
        help="simulate live request traffic and report SLO metrics",
    )
    serve_parser.add_argument(
        "--method",
        default="specasr-asp",
        help=f"decoding method (e.g. {', '.join(STANDARD_METHODS)})",
    )
    serve_parser.add_argument(
        "--qps",
        type=_positive_float,
        default=2.0,
        help="offered load, requests per second",
    )
    serve_parser.add_argument("--requests", type=_positive_int, default=48)
    serve_parser.add_argument("--seed", type=int, default=2025)
    serve_parser.add_argument(
        "--utterances",
        type=_positive_int,
        default=32,
        help="corpus size backing the request mix",
    )
    serve_parser.add_argument("--pairing", choices=sorted(PAIRINGS), default="whisper")
    serve_parser.add_argument(
        "--arrival", choices=("poisson", "uniform"), default="poisson"
    )
    serve_parser.add_argument(
        "--trace", default=None, help="replay a JSON arrival trace instead"
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=3000.0,
        help="completion SLO deadline per request",
    )
    serve_parser.add_argument(
        "--max-batch",
        "--batch",
        dest="batch",
        type=_positive_int,
        default=4,
        help="max phases co-scheduled per device pass",
    )
    serve_parser.add_argument(
        "--inflight",
        type=_positive_int,
        default=8,
        help="max concurrent decode sessions",
    )
    serve_parser.add_argument("--queue-capacity", type=_positive_int, default=32)
    serve_parser.add_argument(
        "--overlap",
        type=_unit_interval,
        default=0.8,
        help="batching efficiency in [0, 1]",
    )
    serve_parser.add_argument(
        "--devices",
        type=_positive_int,
        default=None,
        help="simulated accelerators in the serving cluster (default 1, or "
        "the size of --device-spec; an explicit mismatch is an error)",
    )
    serve_parser.add_argument(
        "--router",
        choices=sorted((*ROUTER_POLICIES, *ROUTER_ALIASES)),
        default="colocated",
        help="placement policy: colocated K-way sharding, disaggregated "
        "draft/target pools, or merged cross-request verification",
    )
    serve_parser.add_argument(
        "--device-spec",
        default="",
        help="heterogeneous cluster shorthand, comma-separated COUNTxSPEED "
        "groups with an optional @BLOCKS KV capacity (e.g. "
        "2x1.0@64,2x0.5 = two full-speed devices with 64 KV blocks each "
        "+ two half-speed ones); sets the device count, so --devices may "
        "be omitted",
    )
    serve_parser.add_argument(
        "--split",
        choices=SPLIT_POLICIES,
        default="fixed",
        help="draft/target pool sizing for disaggregating routers: 'fixed' "
        "keeps the K//2 prefix split, 'balanced' sizes pools from the "
        "measured draft:verify cost ratio and device speeds",
    )
    serve_parser.add_argument(
        "--faults",
        default="",
        help="inject a deterministic fault plan, ';'-separated events: "
        "crash@T:devI[:restart=MS], stall@T+D:devI, slow[@T+D]:devI:xF, "
        "perr:RATE (see repro.serving.faults)",
    )
    serve_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the transient phase-error hash in --faults",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="per-phase failure budget before a request is shed",
    )
    serve_parser.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=25.0,
        help="base of the exponential retry backoff",
    )
    serve_parser.add_argument(
        "--straggler-k",
        type=float,
        default=0.0,
        help="re-issue a running phase whose projected completion exceeds "
        "k x its pool median on the fastest idle peer (0 = off)",
    )
    serve_parser.add_argument(
        "--admission-deadline-ms",
        type=float,
        default=None,
        help="shed interactive requests already older than this at admission",
    )
    serve_parser.add_argument(
        "--batch-deadline-ms",
        type=float,
        default=None,
        help="SLO deadline and admission shed bound for batch-class requests",
    )
    serve_parser.add_argument(
        "--batch-fraction",
        type=float,
        default=0.0,
        help="fraction of synthetic arrivals tagged batch-class (seeded)",
    )
    serve_parser.add_argument(
        "--memory-blocks",
        type=int,
        default=None,
        help="KV-cache capacity per device, in blocks (default: memory is "
        "unconstrained; per-device @BLOCKS in --device-spec overrides)",
    )
    serve_parser.add_argument(
        "--block-size",
        type=int,
        default=16,
        help="tokens per KV block",
    )
    serve_parser.add_argument(
        "--no-prefix-sharing",
        action="store_true",
        help="disable copy-on-write prefix sharing across requests that "
        "decode the same utterance",
    )
    serve_parser.add_argument(
        "--reprefill-ms-per-block",
        type=float,
        default=2.0,
        help="device-time cost of rebuilding one evicted KV block on resume",
    )
    serve_parser.add_argument(
        "--streaming",
        action="store_true",
        help="stream each request's audio in timed chunks instead of "
        "delivering whole utterances at arrival; decode progress is gated "
        "on audio heard and the report gains word-level TTFT / emission "
        "latency percentiles (transcripts stay identical to offline)",
    )
    serve_parser.add_argument(
        "--rtf",
        type=_positive_float,
        default=1.0,
        help="audio delivery speed for --streaming: 1.0 = real time, "
        "2.0 = double speed",
    )
    serve_parser.add_argument(
        "--chunk-s",
        type=_positive_float,
        default=1.0,
        help="seconds of audio per streamed chunk event",
    )
    serve_parser.add_argument(
        "--lookahead-s",
        type=float,
        default=0.3,
        help="audio margin (seconds) the decoder holds back for context",
    )
    serve_parser.add_argument(
        "--no-max-qps", action="store_true", help="skip the max-sustainable-QPS search"
    )
    serve_parser.add_argument(
        "--slo-target",
        type=float,
        default=0.95,
        help="goodput ratio defining 'sustainable'",
    )
    serve_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also save the report as JSON here",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="statically check the determinism & simulation contracts",
        description="AST-based lint over the repo's determinism contracts "
        "(DET001-004), simulation cost billing (SIM001), config pickle "
        "compat (CFG001) and export surfaces (API001).  Suppress one "
        "finding with a '# repro: ignore[RULE]' comment on its line.",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report style: compiler-log text or machine-readable JSON",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any finding survives suppressions/baseline",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of grandfathered findings to filter out "
        "(matched on rule+path+message; line numbers are ignored)",
    )
    lint_parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    lint_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="analyse files with N parallel workers (identical output; "
        "see repro.harness.executor)",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )

    sub.add_parser("models", help="show the model registry")
    return parser


def _cmd_list() -> int:
    for exp_id in list_experiments():
        print(exp_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run_experiments(args)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile}", file=sys.stderr)
    return _run_experiments(args)


def _run_experiments(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        seed=args.seed, utterances=args.utterances, workers=args.workers
    )
    targets = list_experiments() if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        report = run_experiment(exp_id, config)
        print(report.render())
        print()
        if args.json_dir:
            from repro.harness.io import save_report

            path = save_report(report, f"{args.json_dir}/{exp_id}.json")
            print(f"saved {path}")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    vocab = shared_vocabulary()
    dataset = load_split(args.split, ExperimentConfig())
    if not 0 <= args.index < len(dataset):
        print(f"index {args.index} outside dataset of {len(dataset)}", file=sys.stderr)
        return 1
    utterance = dataset[args.index]
    draft, target = model_pair(args.pairing, vocab)
    print(f"utterance : {utterance.utterance_id} ({utterance.duration_s:.1f}s)")
    print(f"reference : {utterance.text}")
    for name, decoder in standard_methods(draft, target).items():
        result = decoder.decode(utterance)
        text = " ".join(vocab.decode_ids(result.tokens))
        print(f"\n[{name}] {result.total_ms:.1f} ms simulated")
        print(f"  {text}")
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serving import (
        ServeSimConfig,
        build_decoder,
        load_trace,
        max_sustainable_qps,
        simulate,
    )

    try:
        # Construction validates the memory spec; the calls below do the
        # cross-argument validation (e.g. disaggregation needs >= 2 devices,
        # max_inflight >= max_batch, fault events naming absent devices) —
        # fail with a clean message, not a traceback.
        config = ServeSimConfig(
            method=args.method,
            pairing=args.pairing,
            qps=args.qps,
            num_requests=args.requests,
            seed=args.seed,
            utterances=args.utterances,
            arrival=args.arrival,
            deadline_ms=args.deadline_ms,
            max_batch=args.batch,
            max_inflight=args.inflight,
            queue_capacity=args.queue_capacity,
            overlap=args.overlap,
            devices=args.devices,
            router=args.router,
            pool_split=args.split,
            device_spec=args.device_spec,
            faults=args.faults,
            fault_seed=args.fault_seed,
            max_retries=args.max_retries,
            retry_backoff_ms=args.retry_backoff_ms,
            straggler_k=args.straggler_k,
            admission_deadline_ms=args.admission_deadline_ms,
            batch_deadline_ms=args.batch_deadline_ms,
            batch_fraction=args.batch_fraction,
            memory_blocks=args.memory_blocks,
            block_size=args.block_size,
            prefix_sharing=not args.no_prefix_sharing,
            reprefill_ms_per_block=args.reprefill_ms_per_block,
            streaming=args.streaming,
            rtf=args.rtf,
            chunk_s=args.chunk_s,
            lookahead_s=args.lookahead_s,
        )
        config.scheduler_config()
        cluster = config.cluster_config()
        plan = config.fault_plan()
        if plan is not None:
            plan.validate_for(cluster.devices)
        if not 0.0 <= args.batch_fraction <= 1.0:
            raise ValueError(
                f"batch_fraction must be in [0, 1], got {args.batch_fraction}"
            )
    except ValueError as error:
        raise SystemExit(f"specasr serve-sim: error: {error}") from None
    trace = load_trace(args.trace) if args.trace else None
    decoder = build_decoder(config)
    if args.router != "colocated" and not hasattr(decoder, "begin"):
        raise SystemExit(
            f"specasr serve-sim: error: method {args.method!r} has no "
            f"phase-split stepper; --router {args.router} needs one "
            "(use --router colocated)"
        )
    report = simulate(config, trace=trace, decoder=decoder)
    if not args.no_max_qps and trace is None:
        max_qps, _ = max_sustainable_qps(
            config, target_ratio=args.slo_target, decoder=decoder
        )
        report = report.with_max_qps(max_qps)
    elif trace is not None and not args.no_max_qps:
        print(
            "note: max-sustainable-QPS search skipped — it measures a "
            "synthetic arrival process, not the replayed --trace workload",
            file=sys.stderr,
        )
    print(report.render())
    if args.json_path:
        path = Path(args.json_path)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"saved {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        default_rules,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.rules:
        for rule in default_rules():
            scope = f" [{rule.scope}]" if rule.scope else ""
            print(f"{rule.id}{scope}: {rule.summary}")
        return 0
    root = Path.cwd()
    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            raise SystemExit(
                f"specasr lint: error: baseline file {args.baseline!r} not found"
            )
        baseline = load_baseline(baseline_path)
    try:
        result = run_lint(args.paths, root, workers=args.workers, baseline=baseline)
    except FileNotFoundError as error:
        raise SystemExit(f"specasr lint: error: {error}") from None
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), list(result.findings))
        print(
            f"baseline with {len(result.findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    if args.strict and not result.clean:
        return 1
    return 0


def _cmd_models() -> int:
    print(
        f"{'model':22s} {'family':8s} {'dec (B)':>8s} {'enc (B)':>8s} "
        f"{'capacity':>8s}"
    )
    for name in list_models():
        spec = get_spec(name)
        print(
            f"{spec.name:22s} {spec.family:8s} {spec.decoder_params_b:8.3f} "
            f"{spec.encoder_params_b:8.3f} {spec.capacity:8.2f}"
        )
    print("\npairings:")
    for pairing, (draft, target) in PAIRINGS.items():
        print(f"  {pairing}: draft={draft} target={target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "decode":
        return _cmd_decode(args)
    if args.command == "serve-sim":
        return _cmd_serve_sim(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "models":
        return _cmd_models()
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
