"""Seeded random-number streams.

Every stochastic component owns an :class:`RngStream` derived from the global
experiment seed plus a string scope, so adding a new consumer never perturbs
the draws of existing ones (no shared global generator).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.utils.hashing import stable_hash


def derive_seed(base_seed: int, *scope: Any) -> int:
    """Derive a child seed from ``base_seed`` and a scope description."""
    return stable_hash(base_seed, *scope)


#: Bound once at import: the emission hot path constructs thousands of
#: single-use generators per corpus decode, and two module-attribute loads
#: per construction are measurable there.
_Generator = np.random.Generator
_PCG64 = np.random.PCG64


def _fast_seed_class():
    """The cheapest seed-expansion path that stays bit-identical.

    ``SeedSequence.generate_state`` ships wrapped in an ``np.errstate``
    guard; the guard is redundant here (state expansion is pure integer
    hashing and cannot raise fp warnings) but costs over a microsecond per
    single-use generator.  When the unwrapped function is reachable, build
    a subclass that calls it directly — and keep it only if a probe shows
    draws bit-identical to the stock path; otherwise fall back to plain
    ``SeedSequence``.
    """
    base = np.random.SeedSequence
    raw = getattr(base.generate_state, "__wrapped__", None)
    if raw is None:
        return base

    class _FastSeed(base):
        generate_state = raw

    try:
        for probe in (0, 1, 2025, 2**63 + 11, 2**127 + 5):
            stock = _Generator(_PCG64(probe))
            fast = _Generator(_PCG64(_FastSeed(probe)))
            if stock.standard_normal(8).tolist() != fast.standard_normal(8).tolist():
                return base
            if stock.uniform() != fast.uniform():
                return base
    except Exception:
        return base
    return _FastSeed


_SeedSeq = _fast_seed_class()


def fast_generator(
    seed: int, _generator=_Generator, _pcg64=_PCG64, _seedseq=_SeedSeq
) -> np.random.Generator:
    """A generator bit-identical to ``np.random.default_rng(seed)``.

    ``Generator(PCG64(seed))`` is what ``default_rng`` builds internally but
    skips its argument dispatch, which matters in the emission hot path
    (thousands of single-use generators per corpus decode).  The seed is
    pre-expanded through the verified errstate-free path when available.
    """
    return _generator(_pcg64(_seedseq(seed)))


# -- batched seed expansion ---------------------------------------------------
#
# ``SeedSequence`` expands a seed into PCG64 state through a fixed pool-mixing
# schedule of uint32 hashes.  The hash-constant sequence is value-independent,
# and every per-seed operation is elementwise — so the expansion for an entire
# block of seeds vectorises into one numpy pass.  The reimplementation below
# is verified bit-identical against ``SeedSequence.generate_state`` at import
# time (over fixed and random probe seeds); if the probe fails on some future
# numpy, :func:`batched_generators` silently falls back to per-seed
# construction, so correctness never depends on this fast path.

_M32 = 0xFFFFFFFF
_MULT_A = 0x931E8875
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)


def _hash_const_pairs(init: int, mult: int, count: int) -> list:
    """(const-before, const-after) pairs of the SeedSequence hash schedule."""
    pairs = []
    const = init
    for _ in range(count):
        before = const
        const = (const * mult) & _M32
        pairs.append((np.uint32(before), np.uint32(const)))
    return pairs


_POOL_CONSTS = _hash_const_pairs(0x43B0D7E5, _MULT_A, 16)
_STATE_CONSTS = _hash_const_pairs(0x8B51F9DD, 0x58F38DED, 8)


def batched_seed_states(seeds: Sequence[int]) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for a block of seeds.

    One vectorised pass over all seeds; rows follow ``seeds`` order.  Seeds
    must lie in ``[0, 2**64)`` (every hash in this repo is 64-bit).  Zero
    high words hash identically to the absent words of a short entropy
    array, so no per-length grouping is needed.
    """
    arr = np.asarray(seeds, dtype=np.uint64)
    count = len(arr)
    cols = np.zeros((4, count), dtype=np.uint32)
    cols[0] = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    cols[1] = (arr >> np.uint64(32)).astype(np.uint32)
    pool = np.empty((4, count), dtype=np.uint32)
    k = 0
    for i in range(4):
        c_xor, c_mul = _POOL_CONSTS[k]
        k += 1
        value = cols[i] ^ c_xor
        value = value * c_mul
        value ^= value >> _XSHIFT
        pool[i] = value
    for i_src in range(4):
        for i_dst in range(4):
            if i_src == i_dst:
                continue
            c_xor, c_mul = _POOL_CONSTS[k]
            k += 1
            hashed = pool[i_src] ^ c_xor
            hashed = hashed * c_mul
            hashed ^= hashed >> _XSHIFT
            mixed = pool[i_dst] * _MIX_L - hashed * _MIX_R
            mixed ^= mixed >> _XSHIFT
            pool[i_dst] = mixed
    state = np.empty((count, 8), dtype=np.uint32)
    for j in range(8):
        c_xor, c_mul = _STATE_CONSTS[j]
        value = pool[j % 4] ^ c_xor
        value = value * c_mul
        value ^= value >> _XSHIFT
        state[:, j] = value
    return state.view(np.uint64)


class _PrecomputedSeed:
    """Minimal ISeedSequence: hands PCG64 a pre-expanded state row."""

    __slots__ = ("words",)

    def __init__(self, words: np.ndarray) -> None:
        self.words = words

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        return self.words


np.random.bit_generator.ISpawnableSeedSequence.register(_PrecomputedSeed)


def _batched_path_ok() -> bool:
    """Probe the vectorised expansion against numpy's own, draws included."""
    try:
        probes = [0, 1, 2025, 2**32 - 1, 2**32, 2**63 + 11, 2**64 - 1]
        rng = fast_generator(0xBA7C4)
        probes += [int(x) for x in rng.integers(0, 2**63, size=64)]
        states = batched_seed_states(probes)
        for row, seed in enumerate(probes):
            if not np.array_equal(
                np.random.SeedSequence(seed).generate_state(4, np.uint64),
                states[row],
            ):
                return False
        for row, seed in enumerate(probes[:8]):
            stock = _Generator(_PCG64(seed))
            fast = _Generator(_PCG64(_PrecomputedSeed(states[row])))
            if stock.standard_normal(8).tolist() != fast.standard_normal(8).tolist():
                return False
            if stock.uniform() != fast.uniform():
                return False
    except Exception:
        return False
    return True


_BATCH_OK = _batched_path_ok()


def batched_generators(seeds: Sequence[int]) -> "list[np.random.Generator]":
    """Generators bit-identical to ``[fast_generator(s) for s in seeds]``.

    Expands every seed's PCG64 state in one vectorised pass (several times
    cheaper than per-seed ``SeedSequence`` expansion), then wraps each row.
    Falls back to per-seed construction if the vectorised path failed its
    import-time probe or a seed falls outside ``[0, 2**64)``.
    """
    if not _BATCH_OK or not seeds:
        return [fast_generator(seed) for seed in seeds]
    lo, hi = min(seeds), max(seeds)
    if lo < 0 or hi >> 64:
        return [fast_generator(seed) for seed in seeds]
    states = batched_seed_states(seeds)
    generator, pcg64, pre = _Generator, _PCG64, _PrecomputedSeed
    return [generator(pcg64(pre(states[row]))) for row in range(len(seeds))]


class RngStream:
    """A named, independently-seeded random stream.

    Thin wrapper around :class:`numpy.random.Generator` that can spawn
    deterministic children by scope name.
    """

    def __init__(self, seed: int, *scope: Any) -> None:
        self.seed = derive_seed(seed, *scope) if scope else seed
        self._rng = fast_generator(self.seed)

    def child(self, *scope: Any) -> "RngStream":
        """Spawn an independent child stream for ``scope``."""
        return RngStream(self.seed, *scope)

    # -- draws ------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._rng.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Draw an integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def choice(self, seq: Sequence[Any], p: Sequence[float] | None = None) -> Any:
        index = int(self._rng.choice(len(seq), p=p))
        return seq[index]

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def geometric(self, p: float) -> int:
        return int(self._rng.geometric(p))

    @property
    def numpy(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._rng
