"""Seeded random-number streams.

Every stochastic component owns an :class:`RngStream` derived from the global
experiment seed plus a string scope, so adding a new consumer never perturbs
the draws of existing ones (no shared global generator).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.utils.hashing import stable_hash


def derive_seed(base_seed: int, *scope: Any) -> int:
    """Derive a child seed from ``base_seed`` and a scope description."""
    return stable_hash(base_seed, *scope)


def fast_generator(seed: int) -> np.random.Generator:
    """A generator bit-identical to ``np.random.default_rng(seed)``.

    ``Generator(PCG64(seed))`` is what ``default_rng`` builds internally but
    skips its argument dispatch, which matters in the emission hot path
    (thousands of single-use generators per corpus decode).
    """
    return np.random.Generator(np.random.PCG64(seed))


class RngStream:
    """A named, independently-seeded random stream.

    Thin wrapper around :class:`numpy.random.Generator` that can spawn
    deterministic children by scope name.
    """

    def __init__(self, seed: int, *scope: Any) -> None:
        self.seed = derive_seed(seed, *scope) if scope else seed
        self._rng = fast_generator(self.seed)

    def child(self, *scope: Any) -> "RngStream":
        """Spawn an independent child stream for ``scope``."""
        return RngStream(self.seed, *scope)

    # -- draws ------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._rng.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Draw an integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def choice(self, seq: Sequence[Any], p: Sequence[float] | None = None) -> Any:
        index = int(self._rng.choice(len(seq), p=p))
        return seq[index]

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def geometric(self, p: float) -> int:
        return int(self._rng.geometric(p))

    @property
    def numpy(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._rng
