"""Levenshtein alignment between token sequences.

Used for word-error-rate computation and for the draft-recycling analysis
(aligning an unaccepted draft suffix against the target's verification
sequence, Fig. 6b of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Sequence


class AlignmentOp(Enum):
    """One step of a minimal edit script."""

    MATCH = "match"
    SUBSTITUTE = "sub"
    INSERT = "ins"  # token present in hypothesis but not in reference
    DELETE = "del"  # token present in reference but not in hypothesis


@dataclass(frozen=True)
class AlignedPair:
    """One aligned (reference, hypothesis) position."""

    op: AlignmentOp
    ref_index: int | None
    hyp_index: int | None


def edit_distance(ref: Sequence[Hashable], hyp: Sequence[Hashable]) -> int:
    """Levenshtein distance between two sequences (unit costs)."""
    n, m = len(ref), len(hyp)
    if n == 0:
        return m
    if m == 0:
        return n
    prev = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        ref_tok = ref[i - 1]
        for j in range(1, m + 1):
            sub_cost = 0 if ref_tok == hyp[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost)
        prev = cur
    return prev[m]


def align(ref: Sequence[Hashable], hyp: Sequence[Hashable]) -> list[AlignedPair]:
    """Return a minimal edit script aligning ``hyp`` to ``ref``.

    Ties are broken preferring match/substitute, then delete, then insert,
    which keeps alignments monotone and stable across runs.
    """
    n, m = len(ref), len(hyp)
    dist = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dist[i][0] = i
    for j in range(m + 1):
        dist[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            sub_cost = 0 if ref[i - 1] == hyp[j - 1] else 1
            dist[i][j] = min(
                dist[i - 1][j - 1] + sub_cost,
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
            )
    pairs: list[AlignedPair] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            sub_cost = 0 if ref[i - 1] == hyp[j - 1] else 1
            if dist[i][j] == dist[i - 1][j - 1] + sub_cost:
                op = AlignmentOp.MATCH if sub_cost == 0 else AlignmentOp.SUBSTITUTE
                pairs.append(AlignedPair(op, i - 1, j - 1))
                i, j = i - 1, j - 1
                continue
        if i > 0 and dist[i][j] == dist[i - 1][j] + 1:
            pairs.append(AlignedPair(AlignmentOp.DELETE, i - 1, None))
            i -= 1
            continue
        pairs.append(AlignedPair(AlignmentOp.INSERT, None, j - 1))
        j -= 1
    pairs.reverse()
    return pairs


def wer_counts(
    ref: Sequence[Hashable], hyp: Sequence[Hashable]
) -> tuple[int, int, int, int]:
    """Return ``(substitutions, insertions, deletions, ref_len)``."""
    subs = ins = dels = 0
    for pair in align(ref, hyp):
        if pair.op is AlignmentOp.SUBSTITUTE:
            subs += 1
        elif pair.op is AlignmentOp.INSERT:
            ins += 1
        elif pair.op is AlignmentOp.DELETE:
            dels += 1
    return subs, ins, dels, len(ref)
