"""Shared utilities: seeded randomness, alignment, hashing, math helpers."""

from repro.utils.editdist import AlignmentOp, align, edit_distance, wer_counts
from repro.utils.hashing import stable_hash, stable_uniform
from repro.utils.mathutil import clamp, sigmoid, softmax
from repro.utils.rng import RngStream, derive_seed

__all__ = [
    "AlignmentOp",
    "RngStream",
    "align",
    "clamp",
    "derive_seed",
    "edit_distance",
    "sigmoid",
    "softmax",
    "stable_hash",
    "stable_uniform",
    "wer_counts",
]
