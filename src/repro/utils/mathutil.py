"""Small numeric helpers shared across the simulation."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp bounds inverted: low={low} > high={high}")
    return max(low, min(high, value))


def sigmoid(x: float) -> float:
    """Numerically-stable logistic function."""
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


def softmax_array(scores: Sequence[float], temperature: float = 1.0) -> np.ndarray:
    """Softmax over ``scores`` as a float64 array summing to 1."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    arr = np.asarray(scores, dtype=np.float64) / temperature
    arr -= arr.max()
    exp = np.exp(arr)
    total = exp.sum()
    return exp / total


def softmax_block(scores: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Row-wise softmax over a 2-D score block.

    Bit-identical to calling :func:`softmax_array` on each row: the max
    subtraction is exact, exp is elementwise, and the normalising sum
    reduces along the contiguous last axis with the same pairwise tree as
    the 1-D per-row reduction.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    arr = np.asarray(scores, dtype=np.float64) / temperature
    arr -= arr.max(axis=-1, keepdims=True)
    exp = np.exp(arr)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax(scores: Sequence[float], temperature: float = 1.0) -> list[float]:
    """Softmax over ``scores`` with the given temperature.

    Returns a plain list of floats summing to 1.
    """
    return softmax_array(scores, temperature).tolist()


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    seq = list(values)
    if not seq:
        return 0.0
    return float(sum(seq)) / len(seq)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``; 0.0 if empty."""
    seq = list(values)
    if not seq:
        return 0.0
    return float(np.percentile(np.asarray(seq, dtype=np.float64), q))
