"""Small bounded caches shared by the simulation layers.

The emission oracles are expensive to build (per-position numpy draws) but
cheap to keep, so model-level caches want LRU semantics: hold the working
set of a corpus run, evict the oldest entries once a long-lived model has
seen many distinct utterances.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry.

    ``maxsize <= 0`` disables the bound (unbounded cache).  Reads and
    writes are guarded by a lock: model- and module-level caches are shared
    across the corpus executor's thread backend, where an unguarded
    get/move_to_end pair could race a concurrent eviction.
    """

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self.maxsize > 0:
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self.evictions += 1

    def __getstate__(self) -> dict:
        # Locks don't pickle; process-pool workers get their own.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()

    def keys(self):
        return self._data.keys()
