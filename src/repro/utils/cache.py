"""Small bounded caches shared by the simulation layers.

The emission oracles are expensive to build (per-position numpy draws) but
cheap to keep, so model-level caches want LRU semantics: hold the working
set of a corpus run, evict the oldest entries once a long-lived model has
seen many distinct utterances.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, KeysView, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry.

    ``maxsize <= 0`` disables the bound (unbounded cache).  Reads and
    writes are guarded by a lock: model- and module-level caches are shared
    across the corpus executor's thread backend, where an unguarded
    get/move_to_end pair could race a concurrent eviction.
    """

    __slots__ = ("maxsize", "_data", "_lock", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        data = self._data
        with self._lock:
            value = data.get(key)
            if value is None:
                self.misses += 1
                return None
            data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        with self._lock:
            data[key] = value
            data.move_to_end(key)
            if self.maxsize > 0:
                while len(data) > self.maxsize:
                    data.popitem(last=False)
                    self.evictions += 1

    def __getstate__(self) -> dict[str, object]:
        # Locks don't pickle; process-pool workers get their own.
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_lock"
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()

    def keys(self) -> KeysView[K]:
        return self._data.keys()
