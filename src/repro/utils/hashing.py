"""Deterministic, platform-stable hashing used to seed the simulation.

Python's builtin ``hash`` is salted per process, so every random decision in
the simulated models flows through :func:`stable_hash` instead.  The whole
reproduction must be a pure function of its configuration; this module is the
root of that guarantee.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

_MASK_64 = (1 << 64) - 1


def _encode(part: Any) -> bytes:
    """Encode one hashable part into a canonical byte string.

    The byte layout is frozen: every simulated decision in the repo derives
    from these hashes, so changing the encoding changes every output.  The
    exact-type checks up front are hot-path shortcuts only — they produce
    the same bytes as the ``isinstance`` chain below (``type(True) is int``
    is False, so bools never take the int fast path).
    """
    kind = type(part)
    if kind is int:
        return b"i%d" % part
    if kind is str:
        return b"s" + part.encode("utf-8")
    if kind is tuple or kind is list:
        return b"t(" + b"".join([_encode(p) + b"," for p in part]) + b")"
    if isinstance(part, bytes):
        return b"b" + part
    if isinstance(part, bool):
        # bool must be checked before int: True would otherwise encode as 1.
        return b"o" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i" + str(part).encode("ascii")
    if isinstance(part, float):
        return b"f" + struct.pack("<d", part)
    if isinstance(part, str):
        return b"s" + part.encode("utf-8")
    if isinstance(part, (tuple, list)):
        inner = b"".join(_encode(p) + b"," for p in part)
        return b"t(" + inner + b")"
    if part is None:
        return b"n"
    raise TypeError(f"stable_hash cannot encode {type(part).__name__}: {part!r}")


def stable_hash(*parts: Any) -> int:
    """Hash ``parts`` into a 64-bit integer, stable across processes.

    Accepts ints, floats, strings, bytes, bools, ``None`` and (nested)
    tuples/lists of those.
    """
    payload = b"|".join([_encode(p) for p in parts])
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MASK_64


def hash_prefix(*parts: Any) -> bytes:
    """Precompute the payload prefix of ``stable_hash(*parts, ...)``.

    Hot loops that hash a fixed scope plus a varying tail (e.g. a seed, a
    tag string, then a position) can encode the fixed scope once and finish
    each hash with :func:`stable_hash_with`.
    """
    return b"|".join([_encode(p) for p in parts])


def stable_hash_with(prefix: bytes, *parts: Any) -> int:
    """``stable_hash(*prefix_parts, *parts)`` given an encoded prefix.

    Bit-identical to calling :func:`stable_hash` with the full argument
    list: the payload bytes are assembled identically.
    """
    if parts:
        payload = prefix + b"|" + b"|".join([_encode(p) for p in parts])
    else:
        payload = prefix
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MASK_64


def stable_hash_ints(prefix: bytes, *parts: int) -> int:
    """:func:`stable_hash_with` specialised to an all-``int`` tail.

    The emission hot path finishes tens of thousands of hashes per corpus
    decode with one to three integer parts (position, perturb level,
    context digest); formatting the tail directly skips the generic
    per-part encode/join machinery.  Callers must pass real ints — a bool
    would encode differently under :func:`_encode`.
    """
    count = len(parts)
    if count == 1:
        payload = prefix + b"|i%d" % parts
    elif count == 3:
        payload = prefix + b"|i%d|i%d|i%d" % parts
    else:
        payload = prefix + b"|" + b"|".join([b"i%d" % (p,) for p in parts])
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MASK_64


def stable_uniform(*parts: Any) -> float:
    """Map ``parts`` to a deterministic float in ``[0, 1)``."""
    return stable_hash(*parts) / float(1 << 64)
