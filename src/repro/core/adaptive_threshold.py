"""Online adaptation of the ASP truncation threshold.

The paper tunes the threshold offline and notes that the optimum "may vary
depending on the model".  This extension closes that loop at decode time: a
small proportional controller nudges the threshold after every verification
round based on what actually happened —

* the round *truncated early* but every submitted token was accepted →
  the threshold is too aggressive (correct tokens are being cut): lower it;
* the round contained a rejection at a position the threshold let through →
  the threshold is too permissive (wasted draft steps): raise it;
* otherwise leave it alone.

The controller is deliberately conservative (small steps, hard bounds) so a
run never leaves the sane region; losslessness is unaffected because the
threshold only changes *when* drafting stops, never what is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.mathutil import clamp


@dataclass(frozen=True)
class ThresholdControllerConfig:
    """Bounds and gains of the online threshold controller."""

    initial: float = 0.4
    minimum: float = 0.15
    maximum: float = 0.65
    step_up: float = 0.02  # applied after a wasteful rejection
    step_down: float = 0.01  # applied after an over-eager truncation

    def __post_init__(self) -> None:
        if not 0.0 <= self.minimum <= self.initial <= self.maximum < 1.0:
            raise ValueError("require 0 <= minimum <= initial <= maximum < 1")
        if self.step_up < 0 or self.step_down < 0:
            raise ValueError("controller steps must be non-negative")


class ThresholdController:
    """Tracks and adapts the truncation threshold across rounds."""

    def __init__(self, config: ThresholdControllerConfig | None = None) -> None:
        self.config = config or ThresholdControllerConfig()
        self._value = self.config.initial
        self.updates_up = 0
        self.updates_down = 0

    @property
    def value(self) -> float:
        return self._value

    def observe_round(self, truncated: bool, submitted: int, accepted: int) -> float:
        """Update the threshold from one round's outcome; returns the new value.

        Args:
            truncated: whether drafting stopped due to the threshold.
            submitted: tokens submitted for verification on the main path.
            accepted: tokens the target accepted.
        """
        if submitted < 0 or not 0 <= accepted <= max(submitted, 0):
            raise ValueError(
                f"inconsistent round outcome: submitted={submitted}, "
                f"accepted={accepted}"
            )
        config = self.config
        if truncated and accepted == submitted and submitted > 0:
            # Truncated a fully-correct draft: loosen.
            self._value = clamp(
                self._value - config.step_down, config.minimum, config.maximum
            )
            self.updates_down += 1
        elif accepted < submitted - 1:
            # Rejection with wasted tokens behind it: tighten.
            self._value = clamp(
                self._value + config.step_up, config.minimum, config.maximum
            )
            self.updates_up += 1
        return self._value
