"""Draft sequence recycling (paper Sec. IV-B, Fig. 9).

After a verification round rejects a draft token, the tokens *behind* the
rejection are normally thrown away.  In ASR they are too valuable to waste:
decoding is audio-conditioned, so the rejected region is usually a localized
acoustic hiccup and the rest of the old draft still matches what both models
will say next.  The recycler therefore keeps the unaccepted suffix
("sequence 1") and, in the next round, runs two draft frontiers inside one
masked token tree:

* the **regeneration frontier** re-drafts from the corrected prefix
  ("sequence 2"), and
* the **extension frontier** keeps extending beyond the end of the retained
  suffix,

advancing both in a single batched draft forward pass per step — the
regeneration delay hides inside the ongoing prediction.  Each regenerated
token is compared against the retained suffix at the corresponding (or, with
``adjacent_merge``, the ±1) position; on a match the two branches merge and
the remainder of the retained suffix is spliced in *without recomputation*.
If no merge happens, both branches are submitted for tree verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.adaptive import UncertainPoint
from repro.core.config import SpecASRConfig
from repro.decoding.base import SessionLike, as_cursor
from repro.models.latency import KIND_DRAFT


@dataclass(frozen=True)
class DraftedToken:
    """One draft token with the metadata recycling and TSP need."""

    token: int
    prob: float
    topk: tuple[tuple[int, float], ...] = ()
    recycled: bool = False


@dataclass
class RecycledSuffix:
    """The unaccepted remainder of a previously submitted draft sequence."""

    items: list[DraftedToken] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    @property
    def tokens(self) -> list[int]:
        return [item.token for item in self.items]

    @classmethod
    def from_items(
        cls, items: list[DraftedToken], eos_id: int, max_len: int
    ) -> "RecycledSuffix":
        """Build a suffix: trim after the first EOS and cap the length."""
        trimmed: list[DraftedToken] = []
        for item in items:
            trimmed.append(item)
            if item.token == eos_id:
                break
        return cls(items=trimmed[: max(max_len - 1, 0)])


@dataclass
class RecyclingDraft:
    """Output of one recycling drafting phase.

    ``main`` is the primary candidate path: the merged chain when the
    regeneration re-joined the retained suffix, otherwise the retained
    suffix plus its extension.  ``alt`` is the unmerged regeneration branch
    (None when merged or empty).
    """

    main: list[DraftedToken]
    alt: list[DraftedToken] | None
    merged: bool
    merge_index: int | None  # suffix index the regeneration merged at
    draft_steps: int
    fresh_tokens: int
    recycled_tokens: int

    def uncertain_points(self, threshold: float, eos_id: int) -> list[UncertainPoint]:
        """Low-confidence positions along the main path (for TSP pass 2)."""
        points = []
        for offset, item in enumerate(self.main):
            if item.token != eos_id and item.prob < threshold:
                points.append(
                    UncertainPoint(
                        offset=offset, top_prob=item.prob, alternatives=item.topk
                    )
                )
        return points


def _match_offset(
    token: int, suffix: list[DraftedToken], j: int, adjacent: bool
) -> int | None:
    """Index in ``suffix`` that ``token`` (regenerated at offset ``j``)
    matches, checking the corresponding position first, then ±1."""
    order = [j, j + 1, j - 1] if adjacent else [j]
    for candidate in order:
        if 0 <= candidate < len(suffix) and suffix[candidate].token == token:
            return candidate
    return None


def draft_with_recycling(
    session: SessionLike,
    prefix,
    suffix: RecycledSuffix,
    config: SpecASRConfig,
    eos_id: int,
    truncate: bool = True,
) -> RecyclingDraft:
    """Run one recycling drafting phase after ``prefix``.

    ``prefix`` may be a token list or a session cursor.  ``truncate=True``
    applies the ASP threshold to both frontiers; ``truncate=False`` (TSP
    trunk pass) lets generation run through uncertain positions, which are
    only recorded.
    """
    if not suffix:
        raise ValueError("draft_with_recycling requires a non-empty suffix")
    retained = list(suffix.items)
    max_len = config.max_draft_len

    extension: list[DraftedToken] = []
    regen: list[DraftedToken] = []
    merge_index: int | None = None
    steps = 0
    fresh = 0

    base = as_cursor(session, prefix)
    # Both frontiers advance one token per batched pass; cursors make each
    # advance O(1) instead of rebuilding the full prefix list.
    ext_cursor = base.extend([t.token for t in retained])
    regen_cursor = base

    def ext_room() -> bool:
        return len(retained) + len(extension) < max_len

    last = retained[-1]
    ext_alive = last.token != eos_id and ext_room()
    if truncate and last.prob < config.threshold:
        ext_alive = False
    regen_alive = True

    while ext_alive or (regen_alive and merge_index is None):
        frontier: list[tuple[str, object]] = []
        if ext_alive:
            frontier.append(("ext", ext_cursor))
        if regen_alive and merge_index is None:
            frontier.append(("regen", regen_cursor))
        results = session.step_frontier([c for _, c in frontier], kind=KIND_DRAFT)
        steps += 1
        for (kind, _), result in zip(frontier, results, strict=True):
            drafted = DraftedToken(result.token, result.top_prob, result.topk)
            if kind == "ext":
                extension.append(drafted)
                ext_cursor = ext_cursor.advance(result.token)
                fresh += 1
                if result.token == eos_id or not ext_room():
                    ext_alive = False
                elif truncate and result.top_prob < config.threshold:
                    ext_alive = False
            else:
                regen.append(drafted)
                regen_cursor = regen_cursor.advance(result.token)
                fresh += 1
                j = len(regen) - 1
                matched = _match_offset(
                    result.token, retained, j, config.adjacent_merge
                )
                if matched is not None:
                    merge_index = matched
                elif result.token == eos_id or len(regen) >= max_len:
                    regen_alive = False
                elif truncate and result.top_prob < config.threshold:
                    regen_alive = False

    if merge_index is not None:
        spliced = [replace(t, recycled=True) for t in retained[merge_index + 1 :]]
        main = regen + spliced + extension
        return RecyclingDraft(
            main=main,
            alt=None,
            merged=True,
            merge_index=merge_index,
            draft_steps=steps,
            fresh_tokens=fresh,
            recycled_tokens=len(spliced),
        )

    main = [replace(t, recycled=True) for t in retained] + extension
    return RecyclingDraft(
        main=main,
        alt=regen or None,
        merged=False,
        merge_index=None,
        draft_steps=steps,
        fresh_tokens=fresh,
        recycled_tokens=len(retained),
    )


def suffix_alignment_rate(
    suffix_tokens: list[int], verification_tokens: list[int]
) -> float:
    """Fraction of retained-suffix tokens that re-appear, in order, in the
    target's verification sequence (paper Fig. 6b analysis helper)."""
    if not suffix_tokens:
        return 0.0
    matched = 0
    cursor = 0
    for token in suffix_tokens:
        while cursor < len(verification_tokens):
            if verification_tokens[cursor] == token:
                matched += 1
                cursor += 1
                break
            cursor += 1
    return matched / len(suffix_tokens)
