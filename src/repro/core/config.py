"""Configuration for the SpecASR engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpecASRConfig:
    """Knobs of the SpecASR framework (paper Sec. IV).

    Attributes:
        max_draft_len: Maximum draft tokens per round.  The paper extends
            this to 24 (vs. the usual 4-8) because ASR drafts stay aligned.
        threshold: Normalised-logit truncation threshold.  Draft positions
            whose top probability falls below it are considered likely to
            fail verification; 0.4 is the paper's tuned value (Fig. 13a).
        recycling: Enable draft-sequence recycling (reuse of the unaccepted
            suffix from the previous round).
        sparse_tree: Enable two-pass sparse-tree prediction; implies
            recycling inside branch exploration.
        branch_top_k: Which alternative to branch on at uncertain positions;
            2 means the second-highest-probability token (the paper shows
            rank 2 covers over two-thirds of top-1 failures, Fig. 13b).
        max_branches: Cap on secondary branches explored per round.
        branch_extension_cap: Maximum fresh tokens per secondary branch
            before it must merge back or stop.
        adjacent_merge: Also merge recycled tokens matching at +/-1 offsets
            (alignment slips), not just the corresponding position.
        merge_verify_window: After a branch merges back onto the trunk, at
            most this many recycled tokens are appended to the branch's
            verification path.  Keeps the sparse tree sparse: acceptance
            that deep through a side branch is rare, and every appended
            node costs target-verification compute.
        adaptive_threshold: Adapt the truncation threshold online from
            per-round accept/reject feedback instead of keeping it fixed
            (see :mod:`repro.core.adaptive_threshold`); ``threshold`` is
            then the controller's initial value.
    """

    max_draft_len: int = 24
    threshold: float = 0.4
    recycling: bool = True
    sparse_tree: bool = False
    branch_top_k: int = 2
    max_branches: int = 2
    branch_extension_cap: int = 4
    adjacent_merge: bool = True
    merge_verify_window: int = 16
    adaptive_threshold: bool = False

    def __post_init__(self) -> None:
        if self.max_draft_len < 1:
            raise ValueError("max_draft_len must be >= 1")
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError("threshold must be in [0, 1)")
        if self.branch_top_k < 2:
            raise ValueError("branch_top_k must be >= 2 (rank of the alternative)")
        if self.max_branches < 0:
            raise ValueError("max_branches must be >= 0")
        if self.branch_extension_cap < 1:
            raise ValueError("branch_extension_cap must be >= 1")
        if self.merge_verify_window < 0:
            raise ValueError("merge_verify_window must be >= 0")

    @property
    def mode(self) -> str:
        """Human-readable mode used as the default method label."""
        if self.sparse_tree:
            return "specasr-tsp"
        if self.recycling:
            return "specasr-asp+recycle"
        return "specasr-asp"


#: Ablation ladder of the paper's Table II.
def asp_only() -> SpecASRConfig:
    """Adaptive single-sequence prediction only."""
    return SpecASRConfig(recycling=False, sparse_tree=False)


def asp_with_recycling() -> SpecASRConfig:
    """ASP + draft sequence recycling."""
    return SpecASRConfig(recycling=True, sparse_tree=False)


def full_specasr() -> SpecASRConfig:
    """ASP + recycling + two-pass sparse-tree prediction."""
    return SpecASRConfig(recycling=True, sparse_tree=True)
