"""SpecASR core: the paper's contribution.

Adaptive single-sequence prediction (ASP), draft sequence recycling (DSR)
and two-pass sparse-tree prediction (TSP), composed by
:class:`~repro.core.engine.SpecASREngine`.
"""

from repro.core.adaptive import DraftSequence, UncertainPoint, draft_adaptive
from repro.core.adaptive_threshold import ThresholdController, ThresholdControllerConfig
from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.core.recycling import RecycledSuffix, RecyclingDraft, draft_with_recycling
from repro.core.sparse_tree import SparseTreeDraft, build_sparse_tree_round
from repro.core.streaming import StreamingConfig, StreamingResult, StreamingSpecASR

__all__ = [
    "DraftSequence",
    "RecycledSuffix",
    "RecyclingDraft",
    "SparseTreeDraft",
    "SpecASRConfig",
    "SpecASREngine",
    "StreamingConfig",
    "StreamingResult",
    "StreamingSpecASR",
    "ThresholdController",
    "ThresholdControllerConfig",
    "UncertainPoint",
    "build_sparse_tree_round",
    "draft_adaptive",
    "draft_with_recycling",
]
