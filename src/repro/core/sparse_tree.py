"""Two-pass sparse-tree prediction (paper Sec. IV-C, Fig. 10).

Pass 1 decodes a long greedy "main trunk" *without* truncating at uncertain
positions — those are only marked, together with their top-k alternatives.
Pass 2 explores narrow side branches exclusively at the marked positions,
seeding each branch with the trunk's rank-2 token (the paper shows rank 2
covers over two-thirds of top-1 failures).  Branch extension reuses the
recycling idea: as soon as a branch token matches the trunk (or an earlier
branch) at the corresponding/adjacent position, the branch is concatenated
back instead of extended further.  The result is a *sparse* token tree —
long trunk, few short branches — verified in one SpecInfer-masked target
pass.  TSP shines when the target is much larger than the draft: extra draft
work buys fewer, better-filled verification passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.adaptive import UncertainPoint, draft_adaptive
from repro.core.config import SpecASRConfig
from repro.core.recycling import (
    DraftedToken,
    RecycledSuffix,
    draft_with_recycling,
)
from repro.decoding.base import SessionLike, as_cursor
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.models.latency import KIND_DRAFT


@dataclass
class SparseBranch:
    """One side branch rooted at an uncertain trunk position."""

    trunk_offset: int  # uncertain position u in trunk coordinates
    items: list[DraftedToken]  # [alternative token] + fresh extensions
    merged_suffix: list[DraftedToken] = field(default_factory=list)
    merged: bool = False
    merge_at: int | None = None  # absolute trunk offset the branch re-joined

    def path_items(self) -> list[DraftedToken]:
        return self.items + self.merged_suffix


@dataclass
class SparseTreeDraft:
    """Output of the two-pass sparse-tree drafting phase."""

    trunk: list[DraftedToken]
    alt_branch: list[DraftedToken] | None  # unmerged pass-1 regeneration
    branches: list[SparseBranch]
    draft_steps: int
    fresh_tokens: int
    recycled_tokens: int


def _absolute_tokens(
    trunk: list[DraftedToken], branch: SparseBranch
) -> list[DraftedToken]:
    """A branch's candidate sequence laid out in absolute trunk coordinates."""
    return trunk[: branch.trunk_offset] + branch.path_items()


def build_sparse_tree_round(
    session: SessionLike,
    prefix,
    suffix: RecycledSuffix | None,
    config: SpecASRConfig,
    eos_id: int,
) -> SparseTreeDraft:
    """Run both TSP passes and return the drafted sparse tree.

    ``prefix`` may be a token list or a session cursor.
    """
    base = as_cursor(session, prefix)
    # ---- pass 1: main trunk (recycled when a suffix is available) -----------
    alt_branch: list[DraftedToken] | None = None
    if suffix:
        recycled = draft_with_recycling(
            session, base, suffix, config, eos_id, truncate=False
        )
        trunk = recycled.main
        alt_branch = recycled.alt
        steps = recycled.draft_steps
        fresh = recycled.fresh_tokens
        recycled_count = recycled.recycled_tokens
    else:
        plain = draft_adaptive(session, base, config, eos_id, truncate=False)
        trunk = [
            DraftedToken(token, prob, ())
            for token, prob in zip(plain.tokens, plain.probs, strict=True)
        ]
        # draft_adaptive records alternatives on uncertain points; fold the
        # top-k back into the trunk items so pass 2 can branch on them.
        for point in plain.uncertain:
            trunk[point.offset] = replace(trunk[point.offset], topk=point.alternatives)
        steps = plain.draft_steps
        fresh = len(plain.tokens)
        recycled_count = 0

    # ---- select branch points ------------------------------------------------
    uncertain = [
        UncertainPoint(offset, item.prob, item.topk)
        for offset, item in enumerate(trunk)
        if item.token != eos_id and item.prob < config.threshold and item.topk
    ]
    uncertain.sort(key=lambda p: p.top_prob)
    branches: list[SparseBranch] = []
    for point in uncertain[: config.max_branches]:
        alternative = point.alternative_token(config.branch_top_k)
        if alternative is None or alternative == trunk[point.offset].token:
            continue
        alt_prob = point.alternatives[config.branch_top_k - 1][1]
        branches.append(
            SparseBranch(
                trunk_offset=point.offset,
                items=[DraftedToken(alternative, alt_prob, ())],
            )
        )

    # ---- pass 2: extend branches, merging back where possible ----------------
    live = [b for b in branches if b.items[-1].token != eos_id]
    # Try zero-cost merges first: the alternative token itself may already
    # match the trunk at an adjacent position.
    still_live: list[SparseBranch] = []
    for branch in live:
        if _try_merge(branch, trunk, branches, config):
            recycled_count += len(branch.merged_suffix)
            continue
        still_live.append(branch)
    live = still_live

    # One cursor per trunk position (trunk_cursors[i] = after trunk[:i]),
    # built once; each live branch then advances its own cursor per step.
    if live:
        trunk_cursors = [base]
        max_offset = max(b.trunk_offset for b in live)
        for item in trunk[:max_offset]:
            trunk_cursors.append(trunk_cursors[-1].advance(item.token))
        branch_cursors = {
            id(b): trunk_cursors[b.trunk_offset].advance(b.items[0].token) for b in live
        }

    while live:
        results = session.step_frontier(
            [branch_cursors[id(b)] for b in live], kind=KIND_DRAFT
        )
        steps += 1
        next_live: list[SparseBranch] = []
        for branch, result in zip(live, results, strict=True):
            branch.items.append(
                DraftedToken(result.token, result.top_prob, result.topk)
            )
            branch_cursors[id(branch)] = branch_cursors[id(branch)].advance(
                result.token
            )
            fresh += 1
            if _try_merge(branch, trunk, branches, config):
                recycled_count += len(branch.merged_suffix)
                continue
            if result.token == eos_id:
                continue
            if result.top_prob < config.threshold:
                continue
            if len(branch.items) - 1 >= config.branch_extension_cap:
                continue
            next_live.append(branch)
        live = next_live

    return SparseTreeDraft(
        trunk=trunk,
        alt_branch=alt_branch,
        branches=branches,
        draft_steps=steps,
        fresh_tokens=fresh,
        recycled_tokens=recycled_count,
    )


def _try_merge(
    branch: SparseBranch,
    trunk: list[DraftedToken],
    branches: list[SparseBranch],
    config: SpecASRConfig,
) -> bool:
    """Merge ``branch`` back onto the trunk or an earlier merged branch.

    The branch's latest token sits at absolute trunk offset
    ``trunk_offset + len(items) - 1``; a match at the corresponding or ±1
    position concatenates the target's remaining tokens (capped by
    ``merge_verify_window``) onto the branch.
    """
    j = branch.trunk_offset + len(branch.items) - 1
    token = branch.items[-1].token
    targets: list[list[DraftedToken]] = [trunk]
    for other in branches:
        if other is not branch and other.merged:
            targets.append(_absolute_tokens(trunk, other))
    offsets = [j, j + 1, j - 1] if config.adjacent_merge else [j]
    for target in targets:
        for m in offsets:
            if m <= branch.trunk_offset:
                continue  # must re-join strictly after the branch point
            if 0 <= m < len(target) and target[m].token == token:
                window = target[m + 1 : m + 1 + config.merge_verify_window]
                branch.merged_suffix = [replace(t, recycled=True) for t in window]
                branch.merged = True
                branch.merge_at = m
                return True
    return False


def assemble_tree(
    trunk: list[DraftedToken],
    alt_branch: list[DraftedToken] | None = None,
    branches: list[SparseBranch] | None = None,
) -> tuple[TokenTree, list[DraftedToken]]:
    """Assemble the verification token tree from drafted paths.

    Returns the tree plus ``node_info`` aligned with ``tree.nodes`` so the
    engine can rebuild a :class:`RecycledSuffix` from any path after
    verification.
    """
    tree = TokenTree()
    info: list[DraftedToken] = []

    def add_chain(items: list[DraftedToken], parent: int) -> list[int]:
        nodes = []
        for item in items:
            parent = tree.add(item.token, parent, item.prob, item.recycled)
            info.append(item)
            nodes.append(parent)
        return nodes

    trunk_nodes = add_chain(trunk, ROOT_PARENT)
    if alt_branch:
        add_chain(alt_branch, ROOT_PARENT)
    for branch in branches or ():
        offset = branch.trunk_offset
        parent = trunk_nodes[offset - 1] if offset > 0 else ROOT_PARENT
        add_chain(branch.path_items(), parent)
    return tree, info
