"""The SpecASR decoding engine (paper Sec. IV, Fig. 8).

Composes the three techniques according to the configuration:

* ``SpecASRConfig(recycling=False)``            → adaptive single-sequence
  prediction only (the Table II "+ASP" row);
* ``SpecASRConfig(recycling=True)``             → ASP + draft sequence
  recycling ("+recycling" row);
* ``SpecASRConfig(sparse_tree=True)``           → full SpecASR with two-pass
  sparse-tree prediction ("+TSP" row, best for large targets).

Every round drafts (adaptively, possibly reusing the previous round's
unaccepted suffix), verifies in one masked target pass, commits the accepted
tokens plus the target's correction, and retains the new unaccepted suffix
for the next round.  The engine is lossless: its transcript always equals
the target model's greedy decode.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.adaptive import draft_adaptive
from repro.core.adaptive_threshold import ThresholdController, ThresholdControllerConfig
from repro.core.config import SpecASRConfig
from repro.core.recycling import (
    DraftedToken,
    RecycledSuffix,
    draft_with_recycling,
)
from repro.core.sparse_tree import assemble_tree, build_sparse_tree_round
from repro.decoding.base import (
    PHASE_DRAFT,
    PHASE_VERIFY,
    DecodeResult,
    DecodeTrace,
    ModelLike,
    PhaseGenerator,
    PhasedDecodeStepper,
    RoundStats,
    as_cursor,
    strip_eos,
)
from repro.decoding.speculative import commit
from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.decoding.verifier import TreeVerifyOutcome, verify_tree
from repro.models.latency import SimClock


class SpecASREngine:
    """SpecASR speculative decoding for one draft/target model pair."""

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: SpecASRConfig = SpecASRConfig(),
        name: str | None = None,
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self.name = name or config.mode

    # -- public API ----------------------------------------------------------
    def begin(
        self,
        unit,
        start_prefix: tuple[int, ...] = (),
        max_positions: int | None = None,
    ) -> PhasedDecodeStepper:
        """Step-resumable decode; each step is one draft→verify round, split
        into a draft phase and a verify phase.

        ``start_prefix`` primes the decode with an already-committed
        transcript prefix (long-form windowing: the engine is lossless, so
        decoding from a prefix of the greedy sequence continues it
        identically).  ``max_positions`` caps how many transcript positions
        the decode may commit (a window budget); the decode ends at the cap
        even if EOS was not reached.
        """
        clock = SimClock()
        return PhasedDecodeStepper(
            self._decode_phases(unit, clock, start_prefix, max_positions), clock
        )

    def decode(
        self,
        unit,
        start_prefix: tuple[int, ...] = (),
        max_positions: int | None = None,
    ) -> DecodeResult:
        return self.begin(unit, start_prefix, max_positions).drain()

    def _decode_phases(
        self,
        unit,
        clock: SimClock,
        start_prefix: tuple[int, ...] = (),
        max_positions: int | None = None,
    ) -> PhaseGenerator:
        draft_session = self.draft.session(unit, clock)
        target_session = self.target.session(unit, clock)
        draft_session.prefill()
        eos_id = self.target.vocab.eos_id
        trace = DecodeTrace()
        prefix: list[int] = list(start_prefix)
        # One cursor per session at the committed prefix; both advance in
        # O(1) per committed token instead of re-hashing the whole prefix.
        draft_cursor = as_cursor(draft_session, tuple(start_prefix))
        target_cursor = as_cursor(target_session, tuple(start_prefix))
        suffix: RecycledSuffix | None = None
        limit = target_session.max_decode_positions()
        if max_positions is not None:
            if max_positions < len(prefix):
                raise ValueError(
                    f"max_positions ({max_positions}) is shorter than the "
                    f"start prefix ({len(prefix)} tokens)"
                )
            limit = min(limit, max_positions)
        controller = (
            ThresholdController(
                ThresholdControllerConfig(initial=self.config.threshold)
            )
            if self.config.adaptive_threshold
            else None
        )
        target_prefilled = False
        done = False
        while not done and len(prefix) < limit:
            # Per-round view of the config; differs from `config` only when
            # the adaptive threshold controller is active.  Kept local so
            # concurrent decode() calls on one engine never share state.
            round_config = (
                replace(self.config, threshold=controller.value)
                if controller is not None
                else self.config
            )
            tree, info, stats = self._draft_round(
                draft_session, draft_cursor, suffix, eos_id, round_config
            )
            if len(tree) == 0:
                # Defensive: nothing draftable; end the decode on a final
                # draft phase.  The target still prefills so the clock
                # total matches the pre-phase-split implementation.
                if not target_prefilled:
                    target_session.prefill()
                    target_prefilled = True
                yield PHASE_DRAFT, self.draft.name, (), True, True
                break
            yield PHASE_DRAFT, self.draft.name, (), False, False
            if not target_prefilled:
                # Target prefill bills to the first verify phase, so a
                # disaggregating router charges it to the target pool.
                target_session.prefill()
                target_prefilled = True
            outcome = verify_tree(target_session, target_cursor, tree)
            stats.accepted_tokens = len(outcome.accepted_tokens)
            emitted = outcome.accepted_tokens + [outcome.correction]
            stats.emitted_tokens = len(emitted)
            trace.rounds.append(stats)
            if controller is not None:
                controller.observe_round(
                    truncated=stats.submitted_tokens < self.config.max_draft_len,
                    submitted=stats.submitted_tokens,
                    accepted=stats.accepted_tokens,
                )
            suffix = self._extract_suffix(tree, info, outcome, eos_id)
            committed_before = len(prefix)
            prefix, done = commit(prefix, emitted, eos_id)
            newly_committed = prefix[committed_before:]
            draft_cursor = draft_cursor.extend(newly_committed)
            target_cursor = target_cursor.extend(newly_committed)
            draft_cursor.rollback()
            target_cursor.rollback()
            done = done or len(prefix) >= limit
            yield PHASE_VERIFY, self.target.name, newly_committed, True, done
        return DecodeResult(
            tokens=strip_eos(prefix, eos_id),
            clock=clock,
            trace=trace,
            method=self.name,
        )

    # -- drafting ------------------------------------------------------------
    def _draft_round(
        self,
        draft_session,
        prefix,
        suffix: RecycledSuffix | None,
        eos_id: int,
        config: SpecASRConfig | None = None,
    ) -> tuple[TokenTree, list[DraftedToken], RoundStats]:
        stats = RoundStats()
        if config is None:
            config = self.config
        use_suffix = suffix if (config.recycling and suffix) else None

        if config.sparse_tree:
            drafted = build_sparse_tree_round(
                draft_session, prefix, use_suffix, config, eos_id
            )
            tree, info = assemble_tree(
                drafted.trunk, drafted.alt_branch, drafted.branches
            )
            stats.draft_steps = drafted.draft_steps
            stats.drafted_tokens = drafted.fresh_tokens
            stats.recycled_tokens = drafted.recycled_tokens
            stats.submitted_tokens = len(drafted.trunk)
            stats.tree_nodes = len(tree)
            return tree, info, stats

        if use_suffix is not None:
            drafted = draft_with_recycling(
                draft_session, prefix, use_suffix, config, eos_id, truncate=True
            )
            tree, info = assemble_tree(drafted.main, drafted.alt)
            stats.draft_steps = drafted.draft_steps
            stats.drafted_tokens = drafted.fresh_tokens
            stats.recycled_tokens = drafted.recycled_tokens
            stats.submitted_tokens = len(drafted.main)
            stats.tree_nodes = len(tree)
            return tree, info, stats

        plain = draft_adaptive(draft_session, prefix, config, eos_id, truncate=True)
        items = [
            DraftedToken(token, prob, ())
            for token, prob in zip(plain.tokens, plain.probs, strict=True)
        ]
        tree, info = assemble_tree(items)
        stats.draft_steps = plain.draft_steps
        stats.drafted_tokens = len(items)
        stats.submitted_tokens = len(items)
        stats.tree_nodes = len(tree)
        return tree, info, stats

    # -- suffix retention ------------------------------------------------------
    def _extract_suffix(
        self,
        tree: TokenTree,
        info: list[DraftedToken],
        outcome: TreeVerifyOutcome,
        eos_id: int,
    ) -> RecycledSuffix | None:
        """Retain the unaccepted remainder of the verified main path.

        The path containing the deepest accepted node is "sequence 1" in the
        paper's Fig. 9; everything after its rejected token becomes the
        recycled suffix for the next round.
        """
        if not self.config.recycling:
            return None
        best = outcome.accepted_node
        leaves = tree.leaves()
        if best == ROOT_PARENT:
            eligible = leaves
        else:
            eligible = [leaf for leaf in leaves if best in tree.ancestors(leaf)]
        if not eligible:
            return None
        leaf = max(eligible, key=tree.depth_of)
        path = tree.ancestors(leaf)
        accepted_len = len(outcome.accepted_tokens)
        # path[accepted_len] is the rejected node (replaced by the
        # correction); everything after it is reusable.
        remainder = path[accepted_len + 1 :]
        if not remainder:
            return None
        items = [info[node] for node in remainder]
        retained = RecycledSuffix.from_items(items, eos_id, self.config.max_draft_len)
        return retained if retained else None
