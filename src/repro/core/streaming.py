"""Streaming SpecASR: decode while audio is still arriving.

Real-time ASR (the paper's motivating deployment, cf. Speech-ReaLLM) cannot
wait for the full utterance: audio arrives in chunks, the encoder prefixes
grow incrementally, and the decoder may only emit tokens whose supporting
audio has actually been heard.  This module simulates that pipeline on a
wall-clock timeline:

* audio chunks arrive every ``chunk_s`` seconds of stream time;
* after each arrival the engine decodes as far as the *available* audio
  allows (a position cap derived from the audio duration heard so far, minus
  a lookahead margin the models need for stable context);
* decoding compute is charged on the same timeline, so a token's *emission
  time* is ``max(arrival of its audio, end of the compute that produced
  it)``.

The result reports per-token emission latencies, the first-token latency,
and the final latency after the last chunk — the quantities a streaming
system is judged by.  The transcript is identical to offline decoding of the
full utterance (the decoder is still lossless; streaming only restricts how
far ahead it may decode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.data.corpus import Utterance
from repro.decoding.base import ModelLike


def positions_available(
    utterance: Utterance, heard_s: float, lookahead_s: float
) -> int:
    """How many transcript positions ``heard_s`` seconds of audio support.

    Zero until the lookahead margin is covered, then proportional to the
    usable audio; the full ``num_tokens`` once the whole utterance is heard.
    Shared by the offline streaming pipeline and the serve scheduler's
    chunk-arrival gate, so both cap decode progress identically.
    """
    if lookahead_s < 0:
        raise ValueError("lookahead_s must be >= 0")
    if heard_s >= utterance.duration_s:
        return utterance.num_tokens
    usable = max(heard_s - lookahead_s, 0.0)
    rate = utterance.num_tokens / utterance.duration_s
    return min(int(usable * rate), utterance.num_tokens)


@dataclass(frozen=True)
class StreamingConfig:
    """Streaming pipeline parameters."""

    chunk_s: float = 1.0
    lookahead_s: float = 0.3  # audio the decoder must hold back
    specasr: SpecASRConfig = SpecASRConfig()

    def __post_init__(self) -> None:
        if self.chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        if self.lookahead_s < 0:
            raise ValueError("lookahead_s must be >= 0")


@dataclass
class StreamingResult:
    """Timeline of one streamed decode."""

    tokens: list[int]
    emission_times_s: list[float]  # stream time each token became final
    audio_duration_s: float
    total_compute_ms: float
    chunks: int
    partials: list[tuple[float, int]] = field(default_factory=list)
    # (stream time, tokens emitted so far) after each chunk

    @property
    def first_token_latency_s(self) -> float | None:
        """Delay from stream start to the first final token.

        ``None`` when the transcript is empty — an empty decode has no
        first token, and reporting ``0.0`` would read as perfect latency
        and skew any average it enters.
        """
        if not self.emission_times_s:
            return None
        return self.emission_times_s[0]

    @property
    def final_latency_s(self) -> float:
        """Delay from end-of-audio to the last final token."""
        if not self.emission_times_s:
            return 0.0
        return max(self.emission_times_s[-1] - self.audio_duration_s, 0.0)

    @property
    def real_time_factor(self) -> float:
        return self.total_compute_ms / 1000.0 / self.audio_duration_s


class StreamingSpecASR:
    """Chunked streaming wrapper around the SpecASR engine.

    Implementation note: the offline engine is deterministic and lossless,
    so the streamed transcript is computed per-chunk by decoding the
    utterance under a growing position cap; only *newly final* tokens are
    charged to the current chunk's compute window.  This mirrors how a
    streaming server re-enters its decode loop as context grows, without
    duplicating the engine's round logic.
    """

    def __init__(
        self,
        draft: ModelLike,
        target: ModelLike,
        config: StreamingConfig = StreamingConfig(),
    ) -> None:
        self.draft = draft
        self.target = target
        self.config = config
        self._engine = SpecASREngine(draft, target, config.specasr)

    # -- helpers ---------------------------------------------------------------
    def _positions_available(self, utterance: Utterance, heard_s: float) -> int:
        """How many transcript positions the heard audio supports."""
        return positions_available(utterance, heard_s, self.config.lookahead_s)

    def decode_stream(self, utterance: Utterance) -> StreamingResult:
        config = self.config
        full = self._engine.decode(utterance)
        full_tokens = full.tokens
        total_compute_ms = full.total_ms

        # Stream timeline: chunk i arrives at (i+1) * chunk_s.
        n_chunks = max(1, int(-(-utterance.duration_s // config.chunk_s)))
        emission_times: list[float] = []
        partials: list[tuple[float, int]] = []
        finalized = 0
        clock_s = 0.0
        # Compute cost is distributed over chunks proportionally to the new
        # tokens finalized after each chunk (a decode round costs the same
        # whether run incrementally or not — same engine, same rounds).
        per_token_ms = total_compute_ms / max(len(full_tokens), 1)
        for chunk in range(n_chunks):
            arrival_s = min((chunk + 1) * config.chunk_s, utterance.duration_s)
            clock_s = max(clock_s, arrival_s)
            available = self._positions_available(utterance, arrival_s)
            newly_final = max(min(available, len(full_tokens)) - finalized, 0)
            compute_s = newly_final * per_token_ms / 1000.0
            clock_s += compute_s
            for offset in range(newly_final):
                # tokens finalize progressively across the compute window
                fraction = (offset + 1) / newly_final
                emission_times.append(clock_s - compute_s * (1.0 - fraction))
            finalized += newly_final
            partials.append((clock_s, finalized))
        # Anything left (lookahead margin) finalizes after end-of-audio.
        remaining = len(full_tokens) - finalized
        if remaining > 0:
            compute_s = remaining * per_token_ms / 1000.0
            clock_s = max(clock_s, utterance.duration_s) + compute_s
            for offset in range(remaining):
                fraction = (offset + 1) / remaining
                emission_times.append(clock_s - compute_s * (1.0 - fraction))
            partials.append((clock_s, len(full_tokens)))
        return StreamingResult(
            tokens=full_tokens,
            emission_times_s=emission_times,
            audio_duration_s=utterance.duration_s,
            total_compute_ms=total_compute_ms,
            chunks=n_chunks,
            partials=partials,
        )


# -- long-form transcription --------------------------------------------------


@dataclass(frozen=True)
class LongFormConfig:
    """Sliding-window transcription budget for long utterances.

    ``window_s`` is the audio each decode window may cover; consecutive
    windows overlap by ``overlap_s`` so the stitcher can check that the
    re-decoded region agrees with the previous window's tail (it always
    does for the lossless engine — asserted, not assumed).
    """

    window_s: float = 8.0
    overlap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.overlap_s < 0:
            raise ValueError("overlap_s must be >= 0")
        if self.overlap_s >= self.window_s:
            raise ValueError("overlap_s must be smaller than window_s")


@dataclass
class LongFormResult:
    """Outcome of one windowed long-form transcription."""

    tokens: list[int]  # stitched transcript (== offline decode)
    windows: int  # decode windows executed
    window_spans: list[tuple[int, int]]  # [start, end) positions per window
    total_compute_ms: float  # summed window compute (incl. re-prefills)
    overlap_tokens_checked: int  # re-decoded positions verified against
    # the previous window during stitching


def decode_long_form(
    engine: SpecASREngine,
    utterance: Utterance,
    config: LongFormConfig = LongFormConfig(),
) -> LongFormResult:
    """Transcribe ``utterance`` in sliding, overlapping decode windows.

    Each window re-enters the engine primed with the stitched transcript up
    to the window start (``start_prefix``) and capped at the window end
    (``max_positions``).  Because the engine is lossless — its transcript is
    the target model's greedy decode, and decoding from a prefix of the
    greedy sequence continues it identically — the stitched transcript is
    bit-identical to the single-shot offline decode; the overlap region is
    re-decoded and *checked* against the previous window rather than merged
    heuristically.  Window slicing is positional, so each window pays its
    own prefill: ``total_compute_ms`` exceeds the offline decode's cost by
    exactly that re-prefill overhead.
    """
    rate = utterance.num_tokens / utterance.duration_s
    window_positions = max(int(config.window_s * rate), 1)
    overlap_positions = min(int(config.overlap_s * rate), window_positions - 1)
    stitched: list[int] = []
    spans: list[tuple[int, int]] = []
    total_ms = 0.0
    overlap_checked = 0
    start = 0
    while True:
        cap = start + window_positions
        result = engine.decode(
            utterance, start_prefix=tuple(stitched[:start]), max_positions=cap
        )
        decoded = list(result.tokens)
        total_ms += result.total_ms
        # The window re-decodes [start, len(stitched)): the overlap region.
        # Lossless stitching contract: it must reproduce the previous tail.
        previous_tail = stitched[start:]
        redecoded_tail = decoded[start : start + len(previous_tail)]
        if redecoded_tail != previous_tail:
            raise AssertionError(
                f"long-form stitching mismatch at positions "
                f"[{start}, {start + len(previous_tail)}): overlap re-decode "
                "disagrees with the previous window"
            )
        overlap_checked += len(previous_tail)
        spans.append((start, max(len(decoded), start)))
        stitched = decoded
        if len(stitched) < cap:
            break  # EOS (or the model's own limit) ended the decode early
        start = max(len(stitched) - overlap_positions, start + 1)
    return LongFormResult(
        tokens=stitched,
        windows=len(spans),
        window_spans=spans,
        total_compute_ms=total_ms,
        overlap_tokens_checked=overlap_checked,
    )
