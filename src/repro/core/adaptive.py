"""Adaptive single-sequence prediction (paper Sec. IV-A).

The draft decodes a long sequence (up to 24 tokens) but watches its own
normalised top logit: a position whose top probability falls below the
truncation threshold is likely to fail verification, so the draft stops
there and sends what it has.  This trades a slightly earlier verification
for a large cut in wasted draft steps — the paper reports 74.1 % fewer
ineffective prediction steps and a 94.4 % decoding-acceptance ratio.

The same routine, with truncation disabled, produces the *marked* trunk for
two-pass sparse-tree prediction: uncertain positions are recorded together
with their top-k alternatives instead of stopping generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SpecASRConfig
from repro.decoding.base import SessionLike, as_cursor
from repro.models.latency import KIND_DRAFT


@dataclass(frozen=True)
class UncertainPoint:
    """A draft position flagged as likely to fail verification."""

    offset: int  # position within the draft sequence (0-based)
    top_prob: float
    alternatives: tuple[tuple[int, float], ...]  # top-k (token, prob)

    def alternative_token(self, rank: int) -> int | None:
        """Token at 1-based ``rank`` in the draft's top-k, if present."""
        if 1 <= rank <= len(self.alternatives):
            return self.alternatives[rank - 1][0]
        return None


@dataclass
class DraftSequence:
    """Output of one adaptive drafting phase."""

    tokens: list[int] = field(default_factory=list)
    probs: list[float] = field(default_factory=list)
    draft_steps: int = 0
    uncertain: list[UncertainPoint] = field(default_factory=list)
    truncated: bool = False  # stopped early due to a low-confidence token
    hit_eos: bool = False

    def __len__(self) -> int:
        return len(self.tokens)


def draft_adaptive(
    session: SessionLike,
    prefix,
    config: SpecASRConfig,
    eos_id: int,
    truncate: bool = True,
    max_len: int | None = None,
) -> DraftSequence:
    """Draft a single sequence after ``prefix`` with adaptive truncation.

    ``prefix`` may be a token list or a session cursor.  With
    ``truncate=True`` (ASP) generation stops right after the first
    token whose top probability is below ``config.threshold`` — the token
    itself is still submitted, it just is not extended.  With
    ``truncate=False`` (TSP trunk pass) generation continues to the length
    cap and uncertain positions are only recorded.
    """
    limit = max_len if max_len is not None else config.max_draft_len
    draft = DraftSequence()
    cursor = as_cursor(session, prefix)
    while len(draft.tokens) < limit:
        result = session.step(cursor, kind=KIND_DRAFT)
        cursor = cursor.advance(result.token)
        draft.draft_steps += 1
        draft.tokens.append(result.token)
        draft.probs.append(result.top_prob)
        if result.token == eos_id:
            draft.hit_eos = True
            break
        if result.top_prob < config.threshold:
            draft.uncertain.append(
                UncertainPoint(
                    offset=len(draft.tokens) - 1,
                    top_prob=result.top_prob,
                    alternatives=result.topk,
                )
            )
            if truncate:
                draft.truncated = True
                break
    return draft
