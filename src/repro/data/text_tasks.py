"""Text-generation task corpus — the *non*-audio-conditioned comparator.

Fig. 5b of the paper contrasts speculative acceptance on ASR against plain
text tasks: in text generation there is no audio anchor, so once draft and
target disagree their continuations diverge.  This module provides prompts
for the :class:`repro.models.textlm.SimulatedTextLM` pair used to reproduce
that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.lexicon import SentenceSampler
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class TextPrompt:
    """One text-continuation task: a prompt plus a generation budget."""

    prompt_id: str
    prompt_words: tuple[str, ...]
    max_new_tokens: int

    @property
    def seed(self) -> int:
        from repro.utils.hashing import stable_hash

        return stable_hash("text-prompt", self.prompt_id)


@dataclass(frozen=True)
class TextTaskConfig:
    seed: int = 7
    num_prompts: int = 32
    prompt_words: int = 12
    max_new_tokens: int = 48


def build_text_corpus(config: TextTaskConfig = TextTaskConfig()) -> list[TextPrompt]:
    """Build a deterministic list of text-continuation prompts."""
    sampler = SentenceSampler()
    root = RngStream(config.seed, "text-tasks")
    prompts = []
    for index in range(config.num_prompts):
        rng = root.child("prompt", index)
        words = sampler.sentence(rng, config.prompt_words, config.prompt_words + 6)
        prompts.append(
            TextPrompt(
                prompt_id=f"text/{index:04d}",
                prompt_words=tuple(words[: config.prompt_words]),
                max_new_tokens=config.max_new_tokens,
            )
        )
    return prompts
