"""LibriSim: a deterministic LibriSpeech-like synthetic corpus.

LibriSpeech has four evaluation splits — ``dev-clean``, ``dev-other``,
``test-clean`` and ``test-other`` — where the "other" splits contain
recordings that are acoustically harder (accents, noise, fast speech).
LibriSim mirrors that structure: every split is generated from prose-like
sentences (:mod:`repro.data.lexicon`) plus a per-token *difficulty profile*
whose statistics differ between clean and other splits:

* a split-level base difficulty (other ≫ clean);
* a per-speaker offset (some speakers are simply harder);
* a smooth AR(1) drift along the utterance (channel/breath effects); and
* occasional short *bursts* of high difficulty — the paper's Observation 2
  attributes low-acceptance rounds to "variations in pronunciation and
  acoustic quality across specific speech segments", i.e. localized error
  regions, which is exactly what the bursts produce.

Alternatively, the builder can synthesise actual waveforms and *measure*
difficulty from per-token SNR (see :mod:`repro.audio.difficulty`); the
statistics agree, the direct path is just much faster for large sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.corpus import Dataset, Utterance
from repro.data.lexicon import SentenceSampler
from repro.models.vocab import Vocabulary
from repro.utils.mathutil import clamp
from repro.utils.rng import RngStream

#: Canonical LibriSpeech evaluation split names.
SPLITS = ("dev-clean", "dev-other", "test-clean", "test-other")

#: Average speaking rate (words per second); LibriSpeech averages ~2.8.
_WORDS_PER_SECOND = 2.8


@dataclass(frozen=True)
class SplitProfile:
    """Acoustic statistics for one split."""

    base_difficulty: float
    speaker_spread: float
    burst_rate: float  # expected bursts per 10 tokens
    burst_strength: float


#: Clean splits: mostly easy with rare mild bursts.  Other splits: noticeably
#: harder with frequent strong bursts.  Values were tuned so simulated WERs
#: land near Fig. 5a of the paper (small models ~10 %+, large models 20-33 %
#: relatively better).
SPLIT_PROFILES: dict[str, SplitProfile] = {
    "dev-clean": SplitProfile(0.13, 0.04, 0.62, 0.42),
    "test-clean": SplitProfile(0.14, 0.04, 0.65, 0.44),
    "dev-other": SplitProfile(0.24, 0.06, 0.95, 0.50),
    "test-other": SplitProfile(0.25, 0.06, 0.98, 0.52),
}


@dataclass(frozen=True)
class LibriSimConfig:
    """Configuration for building LibriSim splits."""

    seed: int = 2025
    utterances_per_split: int = 64
    speakers_per_split: int = 8
    min_words: int = 10
    max_words: int = 42

    def __post_init__(self) -> None:
        if self.utterances_per_split < 1:
            raise ValueError("utterances_per_split must be >= 1")
        if self.speakers_per_split < 1:
            raise ValueError("speakers_per_split must be >= 1")


@dataclass
class LibriSimBuilder:
    """Builds the four LibriSim splits deterministically from a config."""

    vocab: Vocabulary
    config: LibriSimConfig = field(default_factory=LibriSimConfig)
    sampler: SentenceSampler = field(default_factory=SentenceSampler)

    def build_all(self) -> dict[str, Dataset]:
        """Build every split, keyed by split name."""
        return {split: self.build(split) for split in SPLITS}

    def build(self, split: str) -> Dataset:
        """Build one split."""
        if split not in SPLIT_PROFILES:
            raise KeyError(f"unknown split {split!r}; expected one of {SPLITS}")
        profile = SPLIT_PROFILES[split]
        root = RngStream(self.config.seed, "librisim", split)
        speakers = [f"spk{idx:02d}" for idx in range(self.config.speakers_per_split)]
        speaker_offsets = {
            spk: root.child("speaker", spk).normal(0.0, profile.speaker_spread)
            for spk in speakers
        }
        utterances = []
        for index in range(self.config.utterances_per_split):
            rng = root.child("utt", index)
            speaker = speakers[index % len(speakers)]
            words = self.sampler.sentence(
                rng.child("text"), self.config.min_words, self.config.max_words
            )
            tokens = tuple(self.vocab.encode_words(words))
            difficulty = _difficulty_profile(
                rng.child("difficulty"),
                len(tokens),
                profile,
                speaker_offsets[speaker],
            )
            rate = _WORDS_PER_SECOND * (1.0 + rng.child("rate").normal(0.0, 0.08))
            duration = max(1.0, len(words) / max(rate, 1.0))
            utterances.append(
                Utterance(
                    utterance_id=f"{split}/{speaker}/{index:04d}",
                    speaker_id=speaker,
                    words=tuple(words),
                    tokens=tokens,
                    duration_s=duration,
                    difficulty=tuple(difficulty),
                    split=split,
                )
            )
        return Dataset(split, utterances)


def _difficulty_profile(
    rng: RngStream,
    length: int,
    profile: SplitProfile,
    speaker_offset: float,
) -> list[float]:
    """Per-token difficulty: base + speaker + AR(1) drift + bursts."""
    drift = 0.0
    values: list[float] = []
    for _ in range(length):
        drift = 0.75 * drift + rng.normal(0.0, 0.03)
        values.append(profile.base_difficulty + speaker_offset + drift)
    # Overlay short bursts of elevated difficulty (hard segments).
    expected_bursts = profile.burst_rate * length / 10.0
    n_bursts = int(expected_bursts)
    if rng.uniform() < expected_bursts - n_bursts:
        n_bursts += 1
    for _ in range(n_bursts):
        start = rng.integers(0, max(1, length))
        width = rng.integers(1, 4)
        # Wide strength spread: moderate bursts trip only the small model,
        # severe ones trip both — that spread is what separates model WERs.
        strength = profile.burst_strength * (0.35 + 1.3 * rng.uniform())
        for pos in range(start, min(length, start + width)):
            values[pos] += strength
    return [clamp(v, 0.0, 1.0) for v in values]


def build_split(
    split: str,
    vocab: Vocabulary,
    seed: int = 2025,
    utterances: int = 64,
) -> Dataset:
    """Convenience wrapper: build one LibriSim split."""
    config = LibriSimConfig(seed=seed, utterances_per_split=utterances)
    return LibriSimBuilder(vocab, config).build(split)
