"""Synthetic data substrate: lexicon, utterances, LibriSim corpus, text tasks."""

from repro.data.corpus import Dataset, Utterance
from repro.data.lexicon import Lexicon, SentenceSampler, default_lexicon
from repro.data.librisim import LibriSimBuilder, LibriSimConfig, build_split
from repro.data.text_tasks import TextPrompt, TextTaskConfig, build_text_corpus

__all__ = [
    "Dataset",
    "Lexicon",
    "LibriSimBuilder",
    "LibriSimConfig",
    "SentenceSampler",
    "TextPrompt",
    "TextTaskConfig",
    "Utterance",
    "build_split",
    "build_text_corpus",
    "default_lexicon",
]
