"""Core corpus datatypes: utterances and datasets.

An :class:`Utterance` carries everything the simulation needs about one
speech segment: the reference transcript (as words and token ids), a
duration, and a per-token *acoustic difficulty profile* in ``[0, 1]``.  The
difficulty profile is the hinge between the audio substrate and the model
substrate: it is either synthesised directly with LibriSpeech-like
statistics, or measured from synthetic waveforms via
:mod:`repro.audio.difficulty`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

from repro.utils.hashing import stable_hash


@dataclass(frozen=True)
class Utterance:
    """One speech segment with its reference transcript.

    Attributes:
        utterance_id: Stable identifier, e.g. ``"test-clean/spk03/0007"``.
        speaker_id: Synthetic speaker identifier.
        words: Reference transcript words.
        tokens: Reference transcript as vocabulary token ids (no BOS/EOS).
        duration_s: Audio duration in seconds.
        difficulty: Per-token acoustic difficulty in ``[0, 1]``; higher means
            the local acoustics are harder (noise, fast speech), which raises
            recognition-error probability for every model, smaller ones more.
        split: Corpus split name (``test-clean`` etc.).
    """

    utterance_id: str
    speaker_id: str
    words: tuple[str, ...]
    tokens: tuple[int, ...]
    duration_s: float
    difficulty: tuple[float, ...]
    split: str

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.words):
            raise ValueError(
                f"{self.utterance_id}: {len(self.words)} words but "
                f"{len(self.tokens)} tokens"
            )
        if len(self.difficulty) != len(self.tokens):
            raise ValueError(
                f"{self.utterance_id}: difficulty profile length "
                f"{len(self.difficulty)} != token count {len(self.tokens)}"
            )
        if self.duration_s <= 0:
            raise ValueError(f"{self.utterance_id}: non-positive duration")
        for value in self.difficulty:
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{self.utterance_id}: difficulty {value} outside [0, 1]"
                )

    @cached_property
    def seed(self) -> int:
        """Deterministic per-utterance seed derived from its identifier."""
        return stable_hash("utterance", self.utterance_id)

    @cached_property
    def content_key(self) -> int:
        """Hash of id *and* content; distinguishes same-id utterances from
        differently-configured corpora (cache keys must use this)."""
        return stable_hash(
            self.utterance_id, self.tokens, self.difficulty, self.duration_s
        )

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def text(self) -> str:
        return " ".join(self.words)

    def mean_difficulty(self) -> float:
        if not self.difficulty:
            return 0.0
        return sum(self.difficulty) / len(self.difficulty)


@dataclass
class Dataset:
    """A named collection of utterances (one corpus split)."""

    name: str
    utterances: list[Utterance] = field(default_factory=list)

    def __iter__(self) -> Iterator[Utterance]:
        return iter(self.utterances)

    def __len__(self) -> int:
        return len(self.utterances)

    def __getitem__(self, index: int) -> Utterance:
        return self.utterances[index]

    @property
    def total_duration_s(self) -> float:
        return sum(utt.duration_s for utt in self.utterances)

    @property
    def total_tokens(self) -> int:
        return sum(utt.num_tokens for utt in self.utterances)

    def subset(self, count: int) -> "Dataset":
        """The first ``count`` utterances as a new dataset."""
        return Dataset(self.name, self.utterances[:count])

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self)} utterances, "
            f"{self.total_duration_s:.1f}s audio, {self.total_tokens} tokens"
        )


def validate_datasets(datasets: Sequence[Dataset]) -> None:
    """Raise if any two datasets share an utterance id."""
    seen: dict[str, str] = {}
    for ds in datasets:
        for utt in ds:
            if utt.utterance_id in seen:
                raise ValueError(
                    f"duplicate utterance id {utt.utterance_id} in "
                    f"{ds.name} and {seen[utt.utterance_id]}"
                )
            seen[utt.utterance_id] = ds.name
