"""Embedded English lexicon and a bigram-flavoured sentence sampler.

LibriSpeech transcripts are public-domain audiobook prose.  The sampler below
generates prose-like word sequences from an embedded ~900-word lexicon with
Zipf-ish frequencies and part-of-speech templates, which is enough structure
for the ASR simulation: utterance lengths, word frequencies and sentence
rhythm match audiobook statistics closely while staying fully offline and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import RngStream

# Part-of-speech buckets.  Words were chosen from high-frequency English
# (Ogden's Basic English core plus common audiobook vocabulary).
_DETERMINERS = ["the", "a", "an", "this", "that", "these", "those", "his", "her", "their", "my", "your", "our", "its", "some", "any", "every", "each", "no"]

_PRONOUNS = ["i", "you", "he", "she", "it", "we", "they", "one", "who", "everyone", "someone", "nothing", "everything"]

_CONJUNCTIONS = ["and", "but", "or", "so", "yet", "for", "nor", "while", "because", "though", "although", "if", "when", "until", "since", "as", "where", "after", "before"]

_PREPOSITIONS = ["of", "in", "to", "with", "on", "at", "by", "from", "into", "over", "under", "through", "between", "against", "among", "within", "without", "toward", "upon", "about", "across", "behind", "beyond", "near", "during", "along"]

_ADVERBS = ["not", "very", "then", "now", "here", "there", "again", "once", "soon", "never", "always", "often", "almost", "quite", "rather", "perhaps", "indeed", "still", "just", "even", "only", "away", "back", "down", "up", "out", "together", "suddenly", "slowly", "quietly", "gently", "scarcely", "presently", "certainly", "really", "truly", "already", "instead", "therefore", "however", "moreover", "meanwhile", "everywhere", "somewhere"]

_ADJECTIVES = ["good", "great", "little", "old", "young", "new", "long", "short", "high", "low", "small", "large", "early", "late", "strong", "weak", "warm", "cold", "dark", "bright", "deep", "broad", "quick", "slow", "happy", "sad", "quiet", "loud", "white", "black", "red", "green", "blue", "grey", "golden", "silver", "ancient", "modern", "strange", "familiar", "beautiful", "plain", "rich", "poor", "heavy", "light", "soft", "hard", "sweet", "bitter", "clear", "dim", "empty", "full", "open", "closed", "free", "true", "false", "wild", "calm", "gentle", "fierce", "noble", "humble", "curious", "certain", "possible", "whole", "broken", "distant", "present", "former", "final", "first", "second", "third", "last", "next", "other", "same", "different", "several", "many", "few", "own", "dear", "pleasant", "weary", "eager", "anxious", "silent", "steady", "narrow", "wide", "sharp", "dull", "fresh", "faint", "pale", "rough", "smooth", "thick", "thin", "proud", "honest", "clever", "foolish", "brave", "afraid", "glad", "sorry", "busy", "idle", "common", "rare", "simple", "grand", "tiny", "vast", "lonely", "crowded", "splendid", "dreadful", "remarkable", "ordinary", "peculiar", "solemn", "cheerful", "miserable", "delightful", "terrible", "wonderful", "mysterious"]

_NOUNS = ["time", "year", "day", "night", "morning", "evening", "hour", "moment", "man", "woman", "child", "boy", "girl", "friend", "mother", "father", "brother", "sister", "son", "daughter", "wife", "husband", "family", "people", "person", "stranger", "neighbour", "doctor", "captain", "soldier", "sailor", "teacher", "master", "servant", "king", "queen", "prince", "princess", "lady", "gentleman", "world", "country", "city", "town", "village", "house", "home", "room", "door", "window", "wall", "floor", "roof", "garden", "field", "forest", "wood", "tree", "leaf", "flower", "grass", "river", "lake", "sea", "ocean", "shore", "island", "mountain", "hill", "valley", "road", "path", "street", "bridge", "corner", "place", "land", "ground", "earth", "sky", "sun", "moon", "star", "cloud", "wind", "rain", "snow", "storm", "fire", "water", "air", "stone", "rock", "sand", "iron", "gold", "silver", "glass", "paper", "book", "letter", "word", "story", "tale", "song", "voice", "sound", "music", "silence", "light", "shadow", "darkness", "colour", "picture", "face", "eye", "hand", "arm", "foot", "head", "heart", "mind", "soul", "spirit", "body", "hair", "shoulder", "finger", "lip", "smile", "tear", "breath", "sleep", "dream", "thought", "idea", "memory", "hope", "fear", "love", "joy", "sorrow", "anger", "pride", "courage", "truth", "doubt", "question", "answer", "reason", "purpose", "chance", "fortune", "fate", "life", "death", "birth", "youth", "age", "beginning", "end", "middle", "part", "side", "top", "bottom", "edge", "centre", "distance", "length", "depth", "height", "weight", "number", "half", "piece", "pair", "group", "crowd", "company", "army", "ship", "boat", "carriage", "horse", "dog", "cat", "bird", "fish", "sheep", "cattle", "table", "chair", "bed", "lamp", "candle", "clock", "mirror", "box", "bag", "basket", "bottle", "cup", "plate", "knife", "spoon", "coat", "dress", "hat", "shoe", "pocket", "ring", "chain", "key", "lock", "gate", "fence", "farm", "market", "shop", "school", "church", "castle", "tower", "palace", "prison", "station", "office", "kitchen", "hall", "stair", "cellar", "attic", "chamber", "passage", "journey", "voyage", "walk", "ride", "visit", "meeting", "party", "dance", "game", "work", "labour", "trade", "business", "money", "price", "value", "gift", "prize", "reward", "debt", "loss", "gain", "profit", "bread", "meat", "fruit", "wine", "tea", "coffee", "milk", "sugar", "salt", "dinner", "supper", "breakfast", "meal", "feast", "news", "report", "account", "history", "lesson", "example", "effect", "cause", "result", "matter", "thing", "object", "sign", "mark", "line", "point", "circle", "square", "form", "shape", "kind", "sort", "manner", "way", "method", "habit", "custom", "law", "rule", "order", "duty", "right", "power", "force", "strength", "health", "illness", "pain", "comfort", "pleasure", "trouble", "danger", "safety", "peace", "war", "battle", "victory", "defeat", "enemy", "weapon", "sword", "gun", "flag", "nation", "government", "council", "court", "judge", "crime", "punishment", "secret", "mystery", "adventure", "surprise", "wonder", "miracle", "magic", "ghost", "angel", "devil", "heaven", "hell", "god", "church", "prayer", "faith", "religion", "nature", "season", "spring", "summer", "autumn", "winter", "weather", "climate", "harvest", "seed", "root", "branch", "fruit", "crop"]

_VERBS = ["was", "were", "is", "are", "be", "been", "had", "has", "have", "did", "do", "does", "said", "says", "say", "went", "go", "goes", "came", "come", "comes", "saw", "see", "sees", "seen", "knew", "know", "known", "thought", "think", "took", "take", "taken", "gave", "give", "given", "found", "find", "made", "make", "told", "tell", "asked", "ask", "answered", "answer", "looked", "look", "seemed", "seem", "felt", "feel", "heard", "hear", "left", "leave", "kept", "keep", "held", "hold", "brought", "bring", "began", "begin", "stood", "stand", "sat", "sit", "lay", "lie", "walked", "walk", "ran", "run", "turned", "turn", "moved", "move", "stopped", "stop", "waited", "wait", "stayed", "stay", "lived", "live", "died", "die", "loved", "love", "hated", "hate", "wanted", "want", "wished", "wish", "hoped", "hope", "feared", "fear", "believed", "believe", "remembered", "remember", "forgot", "forget", "understood", "understand", "spoke", "speak", "called", "call", "cried", "cry", "laughed", "laugh", "smiled", "smile", "wept", "whispered", "shouted", "replied", "returned", "reached", "arrived", "departed", "entered", "opened", "closed", "raised", "lowered", "lifted", "carried", "dropped", "threw", "caught", "struck", "touched", "pressed", "pulled", "pushed", "drew", "wrote", "read", "sang", "played", "worked", "rested", "slept", "woke", "dreamed", "watched", "listened", "noticed", "observed", "discovered", "learned", "taught", "showed", "followed", "led", "passed", "crossed", "climbed", "fell", "rose", "grew", "changed", "became", "remained", "appeared", "vanished", "happened", "occurred", "continued", "finished", "started", "tried", "failed", "succeeded", "managed", "decided", "chose", "refused", "agreed", "promised", "offered", "accepted", "received", "sent", "bought", "sold", "paid", "spent", "saved", "lost", "won", "fought", "defended", "attacked", "escaped", "hid", "sought", "searched", "travelled", "wandered", "hurried", "paused", "hesitated", "trembled", "shivered", "breathed", "sighed", "gazed", "stared", "glanced", "nodded", "bowed", "knelt", "leaned", "settled", "gathered", "joined", "parted", "met", "greeted", "welcomed", "thanked", "begged", "demanded", "ordered", "obeyed", "served", "helped", "saved", "guarded", "warned", "threatened", "suffered", "endured", "bore", "wore", "ate", "drank", "cooked", "built", "broke", "mended", "cut", "dug", "planted", "burned", "froze", "melted", "shone", "glowed", "faded", "echoed", "rang", "sounded", "filled", "emptied", "covered", "wrapped", "tied", "untied", "locked", "unlocked"]

_INTERJECTIONS = ["oh", "ah", "well", "yes", "no", "alas", "indeed", "why", "hush", "come", "look", "listen"]


@dataclass(frozen=True)
class Lexicon:
    """A part-of-speech bucketed vocabulary with Zipf-ish word weights."""

    determiners: tuple[str, ...]
    pronouns: tuple[str, ...]
    conjunctions: tuple[str, ...]
    prepositions: tuple[str, ...]
    adverbs: tuple[str, ...]
    adjectives: tuple[str, ...]
    nouns: tuple[str, ...]
    verbs: tuple[str, ...]
    interjections: tuple[str, ...]

    def all_words(self) -> list[str]:
        """Every distinct word, sorted, suitable for vocabulary building."""
        seen: set[str] = set()
        for bucket in (
            self.determiners,
            self.pronouns,
            self.conjunctions,
            self.prepositions,
            self.adverbs,
            self.adjectives,
            self.nouns,
            self.verbs,
            self.interjections,
        ):
            seen.update(bucket)
        return sorted(seen)

    def zipf_weights(self) -> dict[str, float]:
        """Zipf-like weight per word: rank within sorted order, 1/(rank+2)."""
        words = self.all_words()
        return {word: 1.0 / (rank + 2.0) for rank, word in enumerate(words)}


def default_lexicon() -> Lexicon:
    """The embedded ~900-word lexicon used throughout the reproduction."""
    return Lexicon(
        determiners=tuple(_DETERMINERS),
        pronouns=tuple(_PRONOUNS),
        conjunctions=tuple(_CONJUNCTIONS),
        prepositions=tuple(_PREPOSITIONS),
        adverbs=tuple(_ADVERBS),
        adjectives=tuple(_ADJECTIVES),
        nouns=tuple(sorted(set(_NOUNS))),
        verbs=tuple(sorted(set(_VERBS))),
        interjections=tuple(_INTERJECTIONS),
    )


# Clause templates: sequences of POS tags expanded into words.  Chaining
# clauses with conjunctions yields audiobook-like sentence rhythm.
_CLAUSE_TEMPLATES: tuple[tuple[str, ...], ...] = (
    ("DET", "NOUN", "VERB", "PREP", "DET", "NOUN"),
    ("PRON", "VERB", "DET", "ADJ", "NOUN"),
    ("DET", "ADJ", "NOUN", "VERB", "ADV"),
    ("PRON", "ADV", "VERB", "DET", "NOUN", "PREP", "DET", "NOUN"),
    ("DET", "NOUN", "PREP", "DET", "NOUN", "VERB", "ADJ"),
    ("ADV", "DET", "NOUN", "VERB", "PREP", "DET", "ADJ", "NOUN"),
    ("PRON", "VERB", "ADV", "PREP", "DET", "NOUN"),
    ("DET", "ADJ", "ADJ", "NOUN", "VERB", "DET", "NOUN"),
    ("INTJ", "PRON", "VERB", "DET", "NOUN"),
    ("PRON", "VERB", "PRON", "VERB", "DET", "NOUN"),
)


@dataclass
class SentenceSampler:
    """Deterministic prose-like sentence generator.

    Sentences are built by expanding 1-4 clause templates joined with
    conjunctions; word choice inside each POS bucket is Zipf-weighted.
    """

    lexicon: Lexicon = field(default_factory=default_lexicon)

    def _bucket(self, tag: str) -> tuple[str, ...]:
        mapping = {
            "DET": self.lexicon.determiners,
            "PRON": self.lexicon.pronouns,
            "CONJ": self.lexicon.conjunctions,
            "PREP": self.lexicon.prepositions,
            "ADV": self.lexicon.adverbs,
            "ADJ": self.lexicon.adjectives,
            "NOUN": self.lexicon.nouns,
            "VERB": self.lexicon.verbs,
            "INTJ": self.lexicon.interjections,
        }
        return mapping[tag]

    def _pick(self, rng: RngStream, bucket: tuple[str, ...]) -> str:
        # Zipf-ish preference for the front of the bucket.
        weights = [1.0 / (i + 2.0) for i in range(len(bucket))]
        total = sum(weights)
        probs = [w / total for w in weights]
        return rng.choice(bucket, p=probs)

    def clause(self, rng: RngStream) -> list[str]:
        """Sample one clause as a list of words."""
        template = rng.choice(_CLAUSE_TEMPLATES)
        return [self._pick(rng, self._bucket(tag)) for tag in template]

    def sentence(self, rng: RngStream, min_words: int = 8, max_words: int = 40) -> list[str]:
        """Sample a sentence of roughly ``min_words``..``max_words`` words."""
        if min_words < 1 or max_words < min_words:
            raise ValueError(f"bad sentence length bounds ({min_words}, {max_words})")
        target = rng.integers(min_words, max_words + 1)
        words = self.clause(rng)
        while len(words) < target:
            words.append(self._pick(rng, self.lexicon.conjunctions))
            words.extend(self.clause(rng))
        return words[:target] if len(words) > max_words else words
