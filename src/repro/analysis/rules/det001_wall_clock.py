"""DET001 — no wall-clock reads inside the simulation.

Every latency the reproduction reports is *simulated* time accumulated on a
:class:`~repro.models.latency.SimClock`; a single ``time.perf_counter()``
or ``datetime.now()`` smuggled into ``src/repro`` makes results depend on
host load and breaks replay bit-identity.  Wall time is legitimate in the
bench tools (measuring it is their job), so this rule is scoped to
``src/repro`` only.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import import_aliases, iter_calls, resolve_call

RULE_ID = "DET001"

#: Fully-qualified callables whose return value is host wall-clock time.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def check(context: ModuleContext) -> Iterator[Finding]:
    aliases = import_aliases(context.tree)
    for call in iter_calls(context.tree):
        resolved = resolve_call(call, aliases)
        if resolved in WALL_CLOCK_CALLS:
            yield context.finding(
                call,
                RULE_ID,
                f"wall-clock read {resolved}(): simulated time must come "
                "from SimClock, never the host clock",
            )


RULE = Rule(
    id=RULE_ID,
    summary="no wall-clock reads under src/repro (sim time comes from SimClock)",
    check=check,
    scope="src/repro",
)
