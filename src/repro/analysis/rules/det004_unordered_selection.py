"""DET004 — no selection from unordered collections without a deterministic key.

Set iteration order depends on ``PYTHONHASHSEED`` for strings (and on
insertion/deletion history in general), so picking an element out of a set
— ``next(iter(s))``, ``s.pop()``, or ``min``/``max`` without an explicit
tie-breaking ``key=`` — can change across runs.  These are exactly the
scheduler tie-break bugs PR 4/5 had to hand-audit; this rule makes the
contract mechanical.

``dict.values()`` iteration is insertion-ordered in CPython, but *selecting*
from it without a key inherits whatever ordering produced the dict — the
rule flags it so the tie-break is written down (or consciously suppressed).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import dotted_name, iter_calls, keyword_arg

RULE_ID = "DET004"


def _unordered_expr(node: ast.expr) -> str | None:
    """Describe ``node`` if it produces an unordered/ambiguous iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        target = dotted_name(node.func)
        if target in ("set", "frozenset"):
            return f"a {target}"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "values":
            return ".values()"
    return None


def check(context: ModuleContext) -> Iterator[Finding]:
    for call in iter_calls(context.tree):
        target = dotted_name(call.func)
        # min(set_like) / max(set_like) without key=: ties resolve in
        # iteration order, which is hash-dependent for sets.
        if target in ("min", "max") and call.args:
            described = _unordered_expr(call.args[0])
            if described is not None and keyword_arg(call, "key") is None:
                yield context.finding(
                    call,
                    RULE_ID,
                    f"{target}() over {described} without key=: ties resolve "
                    "in iteration order — pass a deterministic key",
                )
        # next(iter(set_like)) selects an arbitrary element.
        if target == "next" and call.args:
            inner = call.args[0]
            if (
                isinstance(inner, ast.Call)
                and dotted_name(inner.func) == "iter"
                and inner.args
            ):
                described = _unordered_expr(inner.args[0])
                if described is not None:
                    yield context.finding(
                        call,
                        RULE_ID,
                        f"next(iter(...)) over {described} selects an "
                        "arbitrary element; sort or key the selection",
                    )
        # set_expr.pop() removes a hash-order-dependent element.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "pop"
            and not call.args
            and _unordered_expr(call.func.value) is not None
        ):
            yield context.finding(
                call,
                RULE_ID,
                "pop() on a set removes an arbitrary element; select "
                "deterministically instead",
            )


RULE = Rule(
    id=RULE_ID,
    summary="selection from sets/.values() needs a deterministic key",
    check=check,
)
