"""API001 — ``__all__`` matches what a module actually exports.

Two drift directions:

* a name listed in ``__all__`` that the module never binds (statically or
  through a PEP 562 module ``__getattr__``) breaks ``from pkg import *``
  and misleads readers about the public surface;
* in a package ``__init__.py``, a public name imported from the package's
  *own* submodules but missing from ``__all__`` is an accidental
  half-export — importable, undocumented, and liable to vanish.

Imports from outside the package (typing helpers, cross-package types)
and submodule imports (``from repro.x import submodule``) are not treated
as exports.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import string_literals

RULE_ID = "API001"


def _exported_names(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    if isinstance(value, (list, tuple)) and all(
                        isinstance(item, str) for item in value
                    ):
                        return node, list(value)
    return None


def _bound_names(tree: ast.Module) -> set[str]:
    """Top-level bindings, descending into conditional/guarded blocks."""
    bound: set[str] = set()

    def visit(statements: list[ast.stmt]) -> None:
        for node in statements:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.ClassDef):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return bound


def _lazy_names(tree: ast.Module) -> set[str]:
    """String constants inside a module-level ``__getattr__`` (PEP 562)."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__getattr__":
            return string_literals(node)
    return set()


def _package_dotted(rel: str) -> str | None:
    """``src/repro/serving/__init__.py`` -> ``repro.serving``."""
    parts = Path(rel).parts
    if parts[-1] != "__init__.py":
        return None
    try:
        anchor = parts.index("repro")
    except ValueError:
        return None
    return ".".join(parts[anchor:-1])


def _own_submodule_imports(
    tree: ast.Module, package: str, package_dir: set[str]
) -> dict[str, ast.ImportFrom]:
    """Public names imported from the package's own submodules."""
    out: dict[str, ast.ImportFrom] = {}
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        own = node.level >= 1 or (
            node.module is not None and node.module.startswith(package + ".")
        )
        if not own:
            continue
        for alias in node.names:
            name = alias.asname or alias.name
            if name.startswith("_") or alias.name == "*":
                continue
            if name in package_dir:
                continue  # importing a submodule, not re-exporting a name
            out[name] = node
    return out


def check(context: ModuleContext) -> Iterator[Finding]:
    exported = _exported_names(context.tree)
    if exported is None:
        return
    node, names = exported
    bound = _bound_names(context.tree) | _lazy_names(context.tree)
    seen: set[str] = set()
    for name in names:
        if name in seen:
            yield context.finding(
                node, RULE_ID, f"__all__ lists {name!r} more than once"
            )
        seen.add(name)
        if name not in bound:
            yield context.finding(
                node,
                RULE_ID,
                f"__all__ exports {name!r} but the module never binds it "
                "(statically or via module __getattr__)",
            )
    package = _package_dotted(context.rel)
    if package is None:
        return
    yield from _missing_exports(context, node, names, package)


def _missing_exports(
    context: ModuleContext,
    all_node: ast.stmt,
    names: list[str],
    package: str,
) -> Iterator[Finding]:
    package_dir: set[str] = set()
    # The engine analyses source text without touching the filesystem in
    # general, but submodule detection needs the sibling listing; in-memory
    # snippets (context.root is None) fall back to "no siblings".
    if context.root is not None:
        directory = context.root / Path(context.rel).parent
        if directory.is_dir():
            package_dir = {
                entry.stem for entry in directory.iterdir() if entry.suffix == ".py"
            } | {entry.name for entry in directory.iterdir() if entry.is_dir()}
    declared = set(names)
    for name, node in _own_submodule_imports(
        context.tree, package, package_dir
    ).items():
        if name not in declared:
            yield context.finding(
                node,
                RULE_ID,
                f"{name!r} is imported from an own submodule but missing "
                "from __all__ — export it or rename it underscore-private",
            )


RULE = Rule(
    id=RULE_ID,
    summary="__all__ must match the module's real export surface",
    check=check,
)
