"""DET003 — builtin ``hash()``/``id()`` are not seed, key or ordering material.

``hash()`` is salted per process (``PYTHONHASHSEED``) and ``id()`` is an
allocation address: feeding either into a sort key, a seed, arithmetic
seed-mixing or :func:`~repro.utils.hashing.stable_hash` arguments makes
output depend on interpreter internals.  All simulated decisions must
route through :mod:`repro.utils.hashing`, whose blake2b encoding is frozen
and platform-stable.

``id()`` used purely for *identity* — a per-process cache key or a
membership set — is deterministic in behaviour and allowed; only flows
into ordering/seed contexts are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import dotted_name, import_aliases, iter_calls

RULE_ID = "DET003"

#: Calls whose arguments become ordering material.
_ORDERING_CALLS = frozenset({"sorted", "min", "max"})

#: Hash sinks: id() fed into a stable hash defeats its purpose.
_HASH_SINKS = frozenset(
    {
        "stable_hash",
        "stable_hash_with",
        "stable_hash_ints",
        "stable_uniform",
        "hash_prefix",
        "derive_seed",
    }
)


def _flags_id_context(context: ModuleContext, call: ast.Call) -> str | None:
    """Why this ``id()`` call is ordering/seed material, or ``None``."""
    child: ast.AST = call
    for ancestor in context.ancestors(call):
        if isinstance(ancestor, ast.stmt):
            break
        if isinstance(ancestor, ast.Call):
            target = dotted_name(ancestor.func)
            if target in _ORDERING_CALLS:
                return f"inside {target}() — ordering material"
            if target is not None and target.rsplit(".", 1)[-1] in _HASH_SINKS:
                return f"fed into {target}() — seed material"
        if isinstance(ancestor, ast.keyword) and ancestor.arg in ("seed", "key"):
            return f"bound to {ancestor.arg}= — seed/ordering material"
        if isinstance(ancestor, ast.BinOp):
            return "mixed arithmetically — seed material"
        child = ancestor
    del child
    return None


def check(context: ModuleContext) -> Iterator[Finding]:
    aliases = import_aliases(context.tree)
    for call in iter_calls(context.tree):
        target = dotted_name(call.func)
        if target == "hash" and "hash" not in aliases:
            yield context.finding(
                call,
                RULE_ID,
                "builtin hash() is PYTHONHASHSEED-salted; route through "
                "repro.utils.hashing.stable_hash",
            )
        elif target == "id" and "id" not in aliases:
            reason = _flags_id_context(context, call)
            if reason is not None:
                yield context.finding(
                    call,
                    RULE_ID,
                    f"id() {reason}; it is an allocation address — use "
                    "repro.utils.hashing.stable_hash over stable content",
                )


RULE = Rule(
    id=RULE_ID,
    summary="builtin hash()/id() must not feed seeds, keys or orderings",
    check=check,
)
