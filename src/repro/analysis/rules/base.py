"""Shared AST helpers for the lint rules.

Every rule works on plain :mod:`ast` trees — no imports are executed — so
name resolution is necessarily syntactic.  The helpers here cover the two
forms the rules care about: resolving a call's dotted target through the
module's import aliases (``from time import perf_counter as pc`` makes a
``pc()`` call resolve to ``time.perf_counter``), and reading dataclass
field declarations out of a class body.
"""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted names they import.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from time import
    perf_counter as pc`` yields ``{"pc": "time.perf_counter"}``.  Only
    top-level and conditionally-nested imports are seen (the walk covers
    the whole tree), which is the right over-approximation for linting.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports resolve within the package
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted target of a call, through import aliases.

    ``np.random.seed(...)`` resolves to ``numpy.random.seed`` when ``np``
    aliases ``numpy``; a bare builtin like ``hash(...)`` resolves to
    ``hash`` only if the name was never imported from somewhere else.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{tail}" if tail else resolved_head


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def keyword_arg(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def has_star_args(node: ast.Call) -> bool:
    """Does the call forward ``*args`` / ``**kwargs`` it cannot see through?"""
    return any(isinstance(arg, ast.Starred) for arg in node.args) or any(
        keyword.arg is None for keyword in node.keywords
    )


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Is the class decorated with ``@dataclass`` / ``@dataclasses.dataclass``?"""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> Iterator[tuple[str, ast.AnnAssign]]:
    """Yield ``(field_name, annotation_node)`` for each declared field.

    ``ClassVar`` annotations are not dataclass fields and are skipped.
    """
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        yield statement.target.id, statement


def field_has_default(statement: ast.AnnAssign) -> bool:
    """Does the field declaration carry a default (incl. ``field(...)``)?"""
    value = statement.value
    if value is None:
        return False
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted in ("field", "dataclasses.field"):
            return any(
                keyword.arg in ("default", "default_factory")
                for keyword in value.keywords
            )
    return True


def string_literals(node: ast.AST) -> set[str]:
    """All string constants appearing anywhere under ``node``."""
    return {
        inner.value
        for inner in ast.walk(node)
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str)
    }
