"""The registered lint rules, one module per rule id.

Adding a rule is three steps: write ``<ruleid>_<slug>.py`` exposing a
module-level ``RULE`` (:class:`~repro.analysis.engine.Rule`), import it
here, and append it to :data:`ALL_RULES`.  The registry is ordered by rule
id so reports and ``--format json`` output stay stable as rules are added.
"""

from repro.analysis.engine import Rule
from repro.analysis.rules import (
    api001_export_drift,
    cfg001_config_compat,
    det001_wall_clock,
    det002_unseeded_random,
    det003_builtin_hash,
    det004_unordered_selection,
    sim001_phase_cost,
)

ALL_RULES: tuple[Rule, ...] = tuple(
    sorted(
        (
            api001_export_drift.RULE,
            cfg001_config_compat.RULE,
            det001_wall_clock.RULE,
            det002_unseeded_random.RULE,
            det003_builtin_hash.RULE,
            det004_unordered_selection.RULE,
            sim001_phase_cost.RULE,
        ),
        key=lambda rule: rule.id,
    )
)

__all__ = ["ALL_RULES"]
