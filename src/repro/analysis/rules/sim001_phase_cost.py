"""SIM001 — every phase construction and device execution bills explicit cost.

Simulated latency is the product under test: a
:class:`~repro.decoding.base.PhaseOutcome` whose ``ms`` is omitted (or a
hard-coded zero) silently makes a phase free, and a
``Device.execute(...)`` call that drops the phase batch bills nothing to
the busy timeline.  Both bugs keep every functional test green while
corrupting every latency/SLO number, so the contract is enforced
statically: constructions must pass ``ms`` explicitly (and not as a bare
``0`` literal — a genuinely free phase should say why with a suppression),
and ``execute`` calls must pass both a start time and the phase batch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import (
    dotted_name,
    has_star_args,
    iter_calls,
    keyword_arg,
)

RULE_ID = "SIM001"

#: Position of ``ms`` in PhaseOutcome's field order.
_MS_POSITION = 2


def _is_zero_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def check(context: ModuleContext) -> Iterator[Finding]:
    for call in iter_calls(context.tree):
        target = dotted_name(call.func)
        if target is not None and target.rsplit(".", 1)[-1] == "PhaseOutcome":
            if has_star_args(call):
                continue  # forwarded argument packs are opaque to the AST
            cost = keyword_arg(call, "ms")
            if cost is None and len(call.args) > _MS_POSITION:
                cost = call.args[_MS_POSITION]
            if cost is None:
                yield context.finding(
                    call,
                    RULE_ID,
                    "PhaseOutcome(...) without an explicit ms= cost: a "
                    "silently free phase corrupts every latency metric",
                )
            elif _is_zero_literal(cost):
                yield context.finding(
                    call,
                    RULE_ID,
                    "PhaseOutcome(...) with a literal zero ms: bill the "
                    "real SimClock delta (or suppress with a justification)",
                )
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "execute"
            and not has_star_args(call)
        ):
            head = dotted_name(call.func.value) or ""
            # Only device-shaped receivers: `device.execute`, `self.device…`,
            # pool members etc.  Unrelated APIs named execute (e.g. a DB
            # cursor) would not mention devices.
            if "device" not in head.lower() and head.lower() not in ("self", "pool"):
                continue
            positional = len(call.args)
            names = {keyword.arg for keyword in call.keywords}
            has_start = positional >= 1 or "start_ms" in names
            has_phases = positional >= 2 or "phases" in names
            if not (has_start and has_phases):
                yield context.finding(
                    call,
                    RULE_ID,
                    f"{head}.execute(...) must pass the start time and the "
                    "phase batch so the busy timeline is billed explicitly",
                )


RULE = Rule(
    id=RULE_ID,
    summary="PhaseOutcome/Device.execute must carry explicit costs",
    check=check,
    scope="src/repro",
)
