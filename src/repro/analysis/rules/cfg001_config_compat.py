"""CFG001 — serving config dataclasses stay pickle/kwarg upgradeable.

The serving configs (``*Spec`` sub-configs and ``ServeSimConfig``) are the
repo's persistence surface: they ride in checked-in bench JSON, replay
traces and worker-pool pickles across PR generations.  Two statically
checkable contracts keep old artefacts loadable:

* **every field carries a default** — an old pickle or flat-kwarg call
  site simply misses new fields, and only defaults make that a non-event;
* **sub-config fields are named in the** ``__setstate__`` **upgrade
  guard** — ``ServeSimConfig.__setstate__`` rebuilds through ``__init__``
  when a pickle predates a sub-config, and the trigger is a literal
  ``"name" not in state`` check per sub-config field.  A new sub-config
  added without extending the guard restores old pickles with the
  attribute missing entirely.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import (
    dataclass_fields,
    field_has_default,
    is_dataclass_def,
    string_literals,
)

RULE_ID = "CFG001"

_SPEC_TYPE_RE = re.compile(r"\b\w+Spec\b")


def _covered_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not is_dataclass_def(node):
            continue
        if node.name.endswith("Spec") or node.name == "ServeSimConfig":
            yield node


def _setstate_def(node: ast.ClassDef) -> ast.FunctionDef | None:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == "__setstate__":
            return statement
    return None


def check(context: ModuleContext) -> Iterator[Finding]:
    for class_def in _covered_classes(context.tree):
        fields = list(dataclass_fields(class_def))
        for name, statement in fields:
            if not field_has_default(statement):
                yield context.finding(
                    statement,
                    RULE_ID,
                    f"{class_def.name}.{name} has no default: old pickles "
                    "and flat-kwarg call sites cannot upgrade past it",
                )
        # Sub-config fields (annotated with a *Spec type) must be guarded
        # in the upgrade path so pre-sub-config pickles rebuild.
        spec_fields = [
            name
            for name, statement in fields
            if _SPEC_TYPE_RE.search(ast.unparse(statement.annotation))
        ]
        if not spec_fields:
            continue
        setstate = _setstate_def(class_def)
        if setstate is None:
            yield context.finding(
                class_def,
                RULE_ID,
                f"{class_def.name} nests sub-configs "
                f"({', '.join(spec_fields)}) but defines no __setstate__ "
                "upgrade path for pickles that predate them",
            )
            continue
        guarded = string_literals(setstate)
        for name in spec_fields:
            if name not in guarded:
                yield context.finding(
                    setstate,
                    RULE_ID,
                    f"{class_def.name}.__setstate__ never checks for "
                    f"{name!r}: a pickle predating that sub-config would "
                    "restore without the attribute",
                )


RULE = Rule(
    id=RULE_ID,
    summary="*Spec/ServeSimConfig fields need defaults + __setstate__ coverage",
    check=check,
    scope="src/repro/serving",
)
