"""DET002 — no unseeded or global-state randomness.

The whole reproduction is a pure function of its configuration: every
random decision flows through explicitly seeded generators
(:mod:`repro.utils.rng`) or :func:`repro.utils.hashing.stable_hash`
streams.  Three bug classes re-introduce hidden state:

* the stdlib ``random`` module's global functions (``random.random()``,
  ``random.shuffle()``, ...), seeded per process;
* numpy's *legacy* global RandomState (``np.random.seed``,
  ``np.random.rand``, ``np.random.choice``, ...);
* entropy-seeded constructors — ``default_rng()``, ``SeedSequence()``,
  ``PCG64()`` or ``random.Random()`` called with **no seed argument** pull
  OS entropy and differ on every run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.rules.base import (
    has_star_args,
    import_aliases,
    iter_calls,
    resolve_call,
)

RULE_ID = "DET002"

#: numpy legacy global-RandomState functions (the non-Generator API).
NUMPY_LEGACY = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
        "geometric",
        "lognormal",
    }
)

#: Constructors that fall back to OS entropy when called without a seed.
ENTROPY_WHEN_UNSEEDED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "random.Random",
    }
)

#: Sources that are nondeterministic no matter how they are called.
ALWAYS_NONDETERMINISTIC = frozenset(
    {
        "random.SystemRandom",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


def _is_seeded(call: ast.Call) -> bool:
    """Does the constructor call pass any seed material?"""
    if call.args or has_star_args(call):
        return True
    return any(keyword.arg in ("seed", "entropy", "x") for keyword in call.keywords)


def check(context: ModuleContext) -> Iterator[Finding]:
    aliases = import_aliases(context.tree)
    for call in iter_calls(context.tree):
        resolved = resolve_call(call, aliases)
        if resolved is None:
            continue
        # `np`/`numpy` both resolve through aliases; normalise the head.
        normalized = resolved.replace("np.random.", "numpy.random.", 1)
        if normalized in ALWAYS_NONDETERMINISTIC:
            yield context.finding(
                call,
                RULE_ID,
                f"{resolved}() is nondeterministic by construction; derive "
                "randomness from the config seed via repro.utils.rng",
            )
            continue
        if normalized in ENTROPY_WHEN_UNSEEDED:
            if not _is_seeded(call):
                yield context.finding(
                    call,
                    RULE_ID,
                    f"{resolved}() without a seed argument pulls OS entropy; "
                    "pass an explicit seed (see repro.utils.rng)",
                )
            continue
        head, _, tail = normalized.partition(".")
        if head == "random" and tail and "." not in tail:
            # Module-level stdlib random functions share hidden global state.
            yield context.finding(
                call,
                RULE_ID,
                f"module-level random.{tail}() uses the process-global RNG; "
                "use an explicitly seeded generator instead",
            )
        elif normalized.startswith("numpy.random.") and (
            normalized.rsplit(".", 1)[-1] in NUMPY_LEGACY
        ):
            yield context.finding(
                call,
                RULE_ID,
                f"legacy numpy global RNG call {resolved}(); use a seeded "
                "numpy.random.Generator (repro.utils.rng.fast_generator)",
            )


RULE = Rule(
    id=RULE_ID,
    summary="randomness must be explicitly seeded (no global RNG state)",
    check=check,
)
