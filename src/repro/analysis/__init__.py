"""Static analysis for the repo's determinism & simulation contracts.

``repro lint`` front-end lives in :mod:`repro.cli`; the engine
(:mod:`repro.analysis.engine`) and the rule set
(:mod:`repro.analysis.rules`) are importable on their own — a stdlib-only
leaf, strictly typed, with no simulation dependencies.
"""

from repro.analysis.engine import (
    SYNTAX_RULE,
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    analyze_file,
    analyze_source,
    collect_files,
    default_rules,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    suppressed_lines,
    write_baseline,
)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "SYNTAX_RULE",
    "analyze_file",
    "analyze_source",
    "collect_files",
    "default_rules",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "suppressed_lines",
    "write_baseline",
]
