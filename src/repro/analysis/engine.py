"""Pluggable AST rule engine behind ``repro lint``.

The reproduction's headline claims rest on *determinism contracts* —
streamed == offline transcripts, fault-free-identical completers,
ample-memory parity, scalar↔vector oracle parity — that runtime suites can
only sample.  This engine turns those contracts into named, statically
checkable rules: each rule walks one module's AST and reports
:class:`Finding` records; the engine handles file discovery, inline
suppressions, baselines, parallel execution and output formatting.

Design points:

* **Deterministic output.**  Files are analysed in sorted path order and
  findings are sorted by ``(path, line, rule, message)``, so two runs over
  the same tree — serial or parallel — emit byte-identical reports.
* **Inline suppressions.**  A ``# repro: ignore[RULE]`` comment (multiple
  ids comma-separated) silences exactly the named rules on exactly that
  line.  Suppressions are deliberate, grep-able contracts; there is no
  bare un-scoped form.
* **Baselines.**  ``--baseline FILE`` filters findings already recorded in
  a JSON baseline, matching on ``(rule, path, message)`` — line numbers
  drift with unrelated edits and are ignored.  The repo itself ships with
  an *empty* baseline; the flag exists for downstream forks.
* **Stdlib-only leaf.**  The engine imports nothing outside the standard
  library; the optional worker-pool fan-out borrows
  :meth:`repro.harness.executor.CorpusExecutor.map_jobs` via a lazy import
  so ``repro.analysis`` stays importable (and strictly typed) on its own.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Rule id of the pseudo-finding emitted for unparsable files.
SYNTAX_RULE = "E999"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Directory names never descended into during file discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, rule, message)`` so a sorted finding list
    reads like a compiler log.  :attr:`key` is the line-insensitive
    identity used for baseline matching.
    """

    path: str  # repo-relative, POSIX separators
    line: int  # 1-based
    rule: str
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data.get("line", 0)),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


class ModuleContext:
    """Everything one rule needs to inspect a single module."""

    def __init__(
        self,
        rel: str,
        source: str,
        tree: ast.Module,
        root: Path | None = None,
    ) -> None:
        self.rel = rel
        self.source = source
        self.tree = tree
        #: Filesystem root ``rel`` is relative to, when the module came from
        #: disk; ``None`` for in-memory snippets (fixtures, tests).
        self.root = root
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (built lazily, cached per module)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def finding(self, node: ast.AST | int, rule: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(path=self.rel, line=line, rule=rule, message=message)


CheckFn = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A named, path-scoped static check.

    ``scope`` is a repo-relative POSIX path prefix; ``None`` applies the
    rule to every analysed file.  Scoping is how e.g. DET001 bans
    wall-clock reads inside the simulation (``src/repro``) while the bench
    tools — whose whole job is measuring wall time — stay lintable.
    """

    id: str
    summary: str
    check: CheckFn
    scope: str | None = None

    def applies_to(self, rel: str) -> bool:
        if self.scope is None:
            return True
        return rel == self.scope or rel.startswith(self.scope.rstrip("/") + "/")


def default_rules() -> tuple[Rule, ...]:
    """The registered rule set, ordered by rule id."""
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


# -- per-file analysis -------------------------------------------------------


def suppressed_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids silenced by ``# repro: ignore[...]``."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                out[lineno] = ids
    return out


def analyze_source(
    source: str,
    rel: str,
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run every applicable rule over one module's source text."""
    if rules is None:
        rules = default_rules()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as error:
        line = error.lineno or 0
        return [Finding(rel, line, SYNTAX_RULE, f"syntax error: {error.msg}")]
    context = ModuleContext(rel, source, tree, root=root)
    suppressions = suppressed_lines(source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        for found in rule.check(context):
            silenced = suppressions.get(found.line, frozenset())
            if found.rule in silenced:
                continue
            findings.append(found)
    return sorted(findings)


def analyze_file(
    path: Path,
    root: Path,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyse one file; the finding paths are relative to ``root``."""
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, rel, rules, root=root)


def _analyze_job(job: tuple[str, str]) -> list[Finding]:
    """Picklable per-file unit for :meth:`CorpusExecutor.map_jobs`."""
    path_text, root_text = job
    return analyze_file(Path(path_text), Path(root_text))


# -- file discovery ----------------------------------------------------------


def collect_files(paths: Sequence[str | Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Sorting is by repo-relative POSIX path, which fixes both the job order
    handed to the worker pool and (together with per-file sorting) the
    final report order.
    """
    seen: set[Path] = set()
    for entry in paths:
        target = Path(entry)
        if not target.is_absolute():
            target = root / target
        if target.is_dir():
            for found in target.rglob("*.py"):
                if not _SKIP_DIRS.intersection(found.parts):
                    seen.add(found.resolve())
        elif target.suffix == ".py" and target.exists():
            seen.add(target.resolve())
        else:
            raise FileNotFoundError(
                f"lint target {entry!r} is not a .py file or directory"
            )
    resolved_root = root.resolve()
    return sorted(seen, key=lambda p: p.relative_to(resolved_root).as_posix())


# -- whole-run API -----------------------------------------------------------


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run (post-suppression, post-baseline)."""

    findings: tuple[Finding, ...]
    files_scanned: int
    baselined: int = 0  # findings filtered by the baseline file

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "baselined": self.baselined,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def run_lint(
    paths: Sequence[str | Path],
    root: Path,
    workers: int = 1,
    baseline: set[tuple[str, str, str]] | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) under repo ``root``.

    ``workers > 1`` fans per-file analysis out across a
    :class:`~repro.harness.executor.CorpusExecutor` worker pool; results
    come back in job order, so the report is identical to the serial run.
    """
    files = collect_files(paths, root)
    jobs = [(str(path), str(root)) for path in files]
    if workers > 1:
        # Lazy import: the executor pulls in the (numpy-backed) decode
        # stack, which the analysis leaf itself must not depend on.
        from repro.harness.executor import CorpusExecutor

        executor = CorpusExecutor(workers=workers, backend="auto")
        per_file = executor.map_jobs(_analyze_job, jobs)
    else:
        per_file = [_analyze_job(job) for job in jobs]
    findings = sorted(finding for batch in per_file for finding in batch)
    baselined = 0
    if baseline:
        kept = [finding for finding in findings if finding.key not in baseline]
        baselined = len(findings) - len(kept)
        findings = kept
    return LintResult(
        findings=tuple(findings),
        files_scanned=len(files),
        baselined=baselined,
    )


# -- baseline + output -------------------------------------------------------


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Read a baseline JSON file into a set of line-insensitive keys."""
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} is not a finding list")
    return {Finding.from_dict(entry).key for entry in entries}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the new grandfathered baseline."""
    payload = {
        "version": 1,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def render_text(result: LintResult, rules: Sequence[Rule] | None = None) -> str:
    """Compiler-log style report, one line per finding plus a summary."""
    lines = [
        f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        for finding in result.findings
    ]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = f"{len(result.findings)} {noun} in {result.files_scanned} files"
    if result.baselined:
        summary += f" ({result.baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2)
