"""Simulated ASR models and per-utterance decode sessions.

A :class:`SimulatedASRModel` behaves, from a decoder's point of view, exactly
like a real cascaded LLM-ASR model: you open a session on an utterance,
prefill (audio embeddings + text prompt), then request next-token
distributions given a text prefix.  Internally the next token comes from the
audio-conditioned :class:`~repro.models.acoustic.EmissionOracle`, and every
forward pass is charged to a :class:`~repro.models.latency.SimClock`.

Sessions track the *divergence state* of each prefix: how many perturbation
steps remain since the prefix last departed from this model's own greedy
path.  That state is what makes the simulation audio-conditioned — the model
re-anchors a couple of tokens after any injected correction (see
``acoustic.py`` for the rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.corpus import Utterance
from repro.models.acoustic import EmissionOracle, OracleParams, OracleStep
from repro.models.kv_cache import KVCacheTracker
from repro.models.latency import (
    KIND_DECODE,
    KIND_DRAFT,
    KIND_ENCODE,
    KIND_PREFILL,
    KIND_VERIFY,
    LatencyProfile,
    SimClock,
    forward_ms,
    prefill_ms,
)
from repro.models.vocab import Vocabulary
from repro.utils.hashing import stable_hash

#: Audio embeddings produced per second of audio after encoder downsampling.
EMBEDDINGS_PER_SECOND = 5.0

#: Fixed text-prompt length prepended during prefill ("transcribe:" etc.).
TEXT_PROMPT_TOKENS = 8

Prefix = tuple[int, ...]


@dataclass(frozen=True)
class StepResult:
    """Next-token output of one simulated forward position."""

    token: int
    top_prob: float
    topk: tuple[tuple[int, float], ...]
    position: int
    perturb_level: int

    def rank_of(self, token: int) -> int | None:
        for rank, (candidate, _prob) in enumerate(self.topk, start=1):
            if candidate == token:
                return rank
        return None


class SimulatedASRModel:
    """One simulated cascaded ASR model (audio encoder + LLM decoder)."""

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: LatencyProfile,
        vocab: Vocabulary,
        oracle_params: OracleParams | None = None,
        encoder_latency_ms_per_10s: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.vocab = vocab
        self.oracle_params = oracle_params or OracleParams()
        self.encoder_latency_ms_per_10s = encoder_latency_ms_per_10s
        self.seed = stable_hash("model", name, seed)
        self._oracles: dict[int, EmissionOracle] = {}

    def oracle(self, utterance: Utterance) -> EmissionOracle:
        key = utterance.content_key
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = EmissionOracle(
                self.name,
                self.seed,
                self.capacity,
                utterance,
                self.vocab,
                self.oracle_params,
            )
            self._oracles[key] = oracle
        return oracle

    def session(self, utterance: Utterance, clock: SimClock) -> "DecodeSession":
        """Open a decode session for ``utterance`` billing to ``clock``."""
        return DecodeSession(self, utterance, clock)

    def greedy_transcript(self, utterance: Utterance) -> list[int]:
        """The model's anchored greedy transcript, without the trailing EOS."""
        stream = self.oracle(utterance).greedy_stream()
        eos = self.vocab.eos_id
        return stream[:-1] if stream and stream[-1] == eos else stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedASRModel({self.name!r}, capacity={self.capacity})"


class DecodeSession:
    """Per-utterance decoding interface with latency and KV accounting."""

    def __init__(
        self, model: SimulatedASRModel, utterance: Utterance, clock: SimClock
    ) -> None:
        self.model = model
        self.utterance = utterance
        self.clock = clock
        self.kv = KVCacheTracker()
        self._oracle = model.oracle(utterance)
        self._states: dict[Prefix, int] = {(): 0}
        self._prompt_tokens = 0
        self._prefilled = False

    # -- setup -----------------------------------------------------------------
    def prefill(self) -> None:
        """Run the audio encoder and prefill audio embeddings + text prompt."""
        if self._prefilled:
            raise RuntimeError("session already prefilled")
        self._prefilled = True
        duration = self.utterance.duration_s
        audio_embeddings = max(1, int(duration * EMBEDDINGS_PER_SECOND))
        self._prompt_tokens = audio_embeddings + TEXT_PROMPT_TOKENS
        if self.model.encoder_latency_ms_per_10s > 0:
            encoder_ms = self.model.encoder_latency_ms_per_10s * duration / 10.0
            self.clock.record(self.model.name, KIND_ENCODE, audio_embeddings, 0, encoder_ms)
        ms = prefill_ms(self.model.latency, self._prompt_tokens)
        self.clock.record(self.model.name, KIND_PREFILL, self._prompt_tokens, 0, ms)
        self.kv.append(self._prompt_tokens)

    @property
    def prompt_tokens(self) -> int:
        return self._prompt_tokens

    # -- divergence-state tracking ----------------------------------------------
    def _context_key(self, prefix: Prefix) -> int:
        """Hash of the recent context, folded into perturbed emissions."""
        return stable_hash("ctx", prefix[-3:])

    def perturb_state(self, prefix: Prefix) -> int:
        """Remaining perturbation steps after decoding ``prefix``.

        0 means the model is anchored (the prefix ends on this model's own
        greedy path); k > 0 means the prefix diverged within the last
        ``perturb_window`` tokens.
        """
        state = self._states.get(prefix)
        if state is not None:
            return state
        # Walk forward from the longest cached ancestor.
        depth = len(prefix) - 1
        while depth >= 0 and prefix[:depth] not in self._states:
            depth -= 1
        state = self._states[prefix[:depth]] if depth >= 0 else 0
        window = self.model.oracle_params.perturb_window
        for pos in range(max(depth, 0), len(prefix)):
            sub = prefix[:pos]
            expected = self._oracle.step(
                pos, state, self._context_key(sub) if state else 0
            ).token
            state = max(state - 1, 0) if prefix[pos] == expected else window
            self._states[prefix[: pos + 1]] = state
        return state

    def _oracle_step(self, prefix: Prefix) -> OracleStep:
        state = self.perturb_state(prefix)
        context = self._context_key(prefix) if state else 0
        return self._oracle.step(len(prefix), state, context)

    # -- forward passes ------------------------------------------------------
    def peek(self, prefix: Sequence[int]) -> StepResult:
        """Next-token distribution without charging any latency."""
        prefix = tuple(prefix)
        step = self._oracle_step(prefix)
        return StepResult(
            token=step.token,
            top_prob=step.top_prob,
            topk=step.topk,
            position=step.position,
            perturb_level=self.perturb_state(prefix),
        )

    def step(self, prefix: Sequence[int], kind: str = KIND_DECODE) -> StepResult:
        """One single-token forward pass."""
        self._require_prefill()
        prefix = tuple(prefix)
        cached = self._prompt_tokens + len(prefix)
        ms = forward_ms(self.model.latency, 1, cached)
        self.clock.record(self.model.name, kind, 1, cached, ms)
        self.kv.append(1)
        return self.peek(prefix)

    def step_frontier(
        self, prefixes: Sequence[Sequence[int]], kind: str = KIND_DRAFT
    ) -> list[StepResult]:
        """One batched forward pass over several tree-frontier prefixes.

        Models the masked token tree of the paper's recycling strategy: the
        draft advances all branches in a single forward pass, so regenerating
        a rejected segment hides inside the ongoing prediction.
        """
        self._require_prefill()
        if not prefixes:
            raise ValueError("step_frontier needs at least one prefix")
        tuples = [tuple(p) for p in prefixes]
        cached = self._prompt_tokens + max(len(p) for p in tuples)
        ms = forward_ms(self.model.latency, len(tuples), cached)
        self.clock.record(self.model.name, kind, len(tuples), cached, ms)
        self.kv.append(len(tuples))
        return [self.peek(p) for p in tuples]

    def verify_eval(
        self,
        prefixes: Sequence[Sequence[int]],
        billed_tokens: int | None = None,
    ) -> list[StepResult]:
        """One verification forward pass evaluating ``prefixes`` in parallel.

        ``billed_tokens`` is the number of *input* tokens fed to the target
        in this pass (tree nodes / draft tokens).  It defaults to
        ``len(prefixes)``; tree verification passes the number of unique
        nodes, which is what the 2-D attention mask actually evaluates.
        """
        self._require_prefill()
        if not prefixes:
            raise ValueError("verify_eval needs at least one prefix")
        tuples = [tuple(p) for p in prefixes]
        billed = billed_tokens if billed_tokens is not None else len(tuples)
        if billed < 1:
            raise ValueError(f"billed_tokens must be >= 1, got {billed}")
        cached = self._prompt_tokens + min(len(p) for p in tuples)
        ms = forward_ms(self.model.latency, billed, cached)
        self.clock.record(self.model.name, KIND_VERIFY, billed, cached, ms)
        self.kv.append(billed)
        return [self.peek(p) for p in tuples]

    def rollback(self, kept_prefix_len: int) -> None:
        """Roll the KV cache back to ``prompt + kept_prefix_len`` positions."""
        target = self._prompt_tokens + kept_prefix_len
        if target <= self.kv.length:
            self.kv.rollback_to(target)

    # -- helpers ------------------------------------------------------------
    def is_eos(self, token: int) -> bool:
        return token == self.model.vocab.eos_id

    def max_decode_positions(self) -> int:
        """Hard cap on decode length (reference + margin), safety net."""
        return self.utterance.num_tokens + 8

    def _require_prefill(self) -> None:
        if not self._prefilled:
            raise RuntimeError("call prefill() before decoding")
