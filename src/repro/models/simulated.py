"""Simulated ASR models and per-utterance decode sessions.

A :class:`SimulatedASRModel` behaves, from a decoder's point of view, exactly
like a real cascaded LLM-ASR model: you open a session on an utterance,
prefill (audio embeddings + text prompt), then request next-token
distributions given a text prefix.  Internally the next token comes from the
audio-conditioned :class:`~repro.models.acoustic.EmissionOracle`, and every
forward pass is charged to a :class:`~repro.models.latency.SimClock`.

Sessions track the *divergence state* of each prefix: how many perturbation
steps remain since the prefix last departed from this model's own greedy
path.  That state is what makes the simulation audio-conditioned — the model
re-anchors a couple of tokens after any injected correction (see
``acoustic.py`` for the rationale).

Divergence states live in a per-session **prefix trie**: one node per
explored prefix, each holding the state after that prefix, the (cached)
context key of its last three tokens, and the (cached) oracle distribution
for the next position.  A :class:`SessionCursor` is a handle onto a trie
node; advancing a cursor by one token is an O(1) dictionary hop, so decoders
that keep cursors pay O(L) per utterance instead of the O(L²) cost of
re-hashing full prefix tuples on every forward pass.  Plain token sequences
are still accepted everywhere (they walk the trie from the root), so legacy
callers and test fakes keep working unchanged.
"""

from __future__ import annotations

import weakref
from typing import Iterator, NamedTuple, Sequence

from repro.data.corpus import Utterance
from repro.models.acoustic import (
    BASE_BLOCK_SIZE,
    EmissionOracle,
    OracleFactory,
    OracleParams,
    prewarm_oracles,
)
from repro.models.latency import (
    KIND_DECODE,
    KIND_DRAFT,
    KIND_ENCODE,
    KIND_PREFILL,
    KIND_VERIFY,
    LatencyProfile,
    SimClock,
    forward_ms,
    prefill_ms,
)
from repro.models.vocab import Vocabulary
from repro.utils.hashing import stable_hash

#: Audio embeddings produced per second of audio after encoder downsampling.
EMBEDDINGS_PER_SECOND = 5.0

#: Fixed text-prompt length prepended during prefill ("transcribe:" etc.).
TEXT_PROMPT_TOKENS = 8


def prompt_token_count(utterance) -> int:
    """Prompt positions one session prefills for ``utterance``.

    Audio embeddings (encoder output after downsampling) plus the fixed
    text prompt.  The serving memory gate uses the same arithmetic to bill
    a session's resident prompt blocks without building a session.
    """
    duration = getattr(utterance, "duration_s", 0.0)
    return max(1, int(duration * EMBEDDINGS_PER_SECOND)) + TEXT_PROMPT_TOKENS

#: Default bound on the per-model oracle cache (distinct utterances held).
DEFAULT_ORACLE_CACHE = 64

Prefix = tuple[int, ...]

#: Memo of context keys by trailing-3-token window.  The key is a pure
#: function of the window (model-independent), and decode sessions revisit
#: the same windows constantly, so a dict hit replaces a blake2b hash.
_CTX_CACHE: dict[Prefix, int] = {}
_CTX_CACHE_MAX = 1 << 16

#: Per-oracle memo of finished StepResults keyed by (position, state, ctx).
#: All sessions over the same (model, utterance) share it, so re-decoding an
#: utterance with another method rebuilds its trie from dict lookups instead
#: of re-deriving distributions.  Dies with the oracle (which the model
#: bounds with an LRU).
_RESULT_CACHES: "weakref.WeakKeyDictionary[EmissionOracle, dict]" = (
    weakref.WeakKeyDictionary()
)

#: Per-oracle shared trie root.  Divergence states and distributions are
#: pure functions of (model, utterance, prefix), so every session over the
#: same oracle can walk one trie: decoding an utterance with a second
#: method reuses the committed-path nodes the first method left behind.
#: Rollback pruning keeps the shared trie from growing without bound.
_TRIE_CACHES: "weakref.WeakKeyDictionary[EmissionOracle, _TrieNode]" = (
    weakref.WeakKeyDictionary()
)


def _context_key(last3: Prefix) -> int:
    ctx = _CTX_CACHE.get(last3)
    if ctx is None:
        if len(_CTX_CACHE) >= _CTX_CACHE_MAX:
            _CTX_CACHE.clear()
        ctx = stable_hash("ctx", last3)
        _CTX_CACHE[last3] = ctx
    return ctx


class StepResult(NamedTuple):
    """Next-token output of one simulated forward position.

    A NamedTuple rather than a dataclass: construction sits on the decode
    hot path (one per evaluated tree node / draft position).
    """

    token: int
    top_prob: float
    topk: tuple[tuple[int, float], ...]
    position: int
    perturb_level: int

    def rank_of(self, token: int) -> int | None:
        for rank, (candidate, _prob) in enumerate(self.topk, start=1):
            if candidate == token:
                return rank
        return None


def prewarm_models(
    models: "Sequence[SimulatedASRModel]", utterances: "Sequence[Utterance]"
) -> None:
    """Materialise every (model, utterance) anchored distribution in one
    cross-oracle grouped array pass — the corpus-grid entry point of the
    vectorised scoring path.  No latency is billed (cache warming only);
    scalar-path models (``oracle_block_size <= 1``) are left untouched so
    the per-position reference stays pure.
    """
    prewarm_oracles(
        [model.oracle(utterance) for model in models for utterance in utterances]
    )


def _resolve_pending_steps(oracle: EmissionOracle, pending: list) -> None:
    """Fill ``node.step`` for every ``(results, node, key)`` entry via one
    batched oracle pass.

    ``results`` is the per-oracle StepResult memo the node's session shares;
    entries may span several sessions as long as they share ``oracle``.
    Results are bit-identical to resolving each node through the scalar
    ``_node_step`` path (the oracle's batched scoring is bit-identical to
    its scalar scoring, and StepResult construction is the same).
    """
    oracle_steps = oracle.step_many([key for _results, _node, key in pending])
    for (results, node, key), oracle_step in zip(pending, oracle_steps, strict=True):
        step = results.get(key)
        if step is None:
            step = StepResult(
                token=oracle_step.token,
                top_prob=oracle_step.top_prob,
                topk=oracle_step.topk,
                position=oracle_step.position,
                perturb_level=node.state,
            )
            results[key] = step
        node.step = step


class SimulatedASRModel:
    """One simulated cascaded ASR model (audio encoder + LLM decoder)."""

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: LatencyProfile,
        vocab: Vocabulary,
        oracle_params: OracleParams | None = None,
        encoder_latency_ms_per_10s: float = 0.0,
        seed: int = 0,
        oracle_cache_size: int = DEFAULT_ORACLE_CACHE,
        oracle_block_size: int = BASE_BLOCK_SIZE,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.vocab = vocab
        self.oracle_params = oracle_params or OracleParams()
        self.encoder_latency_ms_per_10s = encoder_latency_ms_per_10s
        self.seed = stable_hash("model", name, seed)
        self.oracle_block_size = int(oracle_block_size)
        self._oracles = OracleFactory(
            model_name=self.name,
            model_seed=self.seed,
            capacity=self.capacity,
            vocab=self.vocab,
            params=self.oracle_params,
            cache_size=oracle_cache_size,
            block_size=self.oracle_block_size,
        )

    def oracle(self, utterance: Utterance) -> EmissionOracle:
        return self._oracles.for_utterance(utterance)

    def session(self, utterance: Utterance, clock: SimClock) -> "DecodeSession":
        """Open a decode session for ``utterance`` billing to ``clock``."""
        return DecodeSession(self, utterance, clock)

    def greedy_transcript(self, utterance: Utterance) -> list[int]:
        """The model's anchored greedy transcript, without the trailing EOS."""
        stream = self.oracle(utterance).greedy_stream()
        eos = self.vocab.eos_id
        return stream[:-1] if stream and stream[-1] == eos else stream

    def prewarm(self, utterance: Utterance) -> None:
        """Materialise every anchored distribution for ``utterance`` in one
        batched oracle pass (no latency is billed — this is cache warming,
        the corpus-grid form of the vectorised scoring path)."""
        prewarm_oracles([self.oracle(utterance)])

    def score_batch(
        self,
        requests: "Sequence[tuple]",
        kind: str = KIND_VERIFY,
    ) -> "list[list[StepResult]]":
        """One cross-session batched scoring pass.

        ``requests`` is a sequence of ``(session, prefixes)`` or
        ``(session, prefixes, billed_tokens)`` entries; each ``prefixes``
        is the frontier of one :class:`DecodeSession` (token sequences or
        cursors).  Per session the pass bills **exactly** the latency record
        the equivalent solo call would write — ``verify_eval`` semantics for
        ``kind=KIND_VERIFY`` (billed tokens default to the frontier size,
        KV context at the shallowest node), ``step_frontier`` semantics
        otherwise — so SimClock totals are bit-identical to looping the
        per-session calls.  All uncached distributions across every request
        are then resolved with one grouped array pass per distinct
        utterance oracle, instead of a python loop per session.

        Returns one list of StepResults per request, in request order.
        """
        prepared: list[tuple[DecodeSession, list[_TrieNode]]] = []
        for entry in requests:
            session, prefixes = entry[0], entry[1]
            billed_tokens = entry[2] if len(entry) > 2 else None
            session._require_prefill()
            nodes = [session._resolve(p) for p in prefixes]
            if not nodes:
                raise ValueError("score_batch needs at least one prefix per entry")
            if kind == KIND_VERIFY:
                billed = billed_tokens if billed_tokens is not None else len(nodes)
                if billed < 1:
                    raise ValueError(f"billed_tokens must be >= 1, got {billed}")
                cached = session.kv.context_length(
                    min(node.depth for node in nodes)
                )
            else:
                billed = len(nodes)
                cached = session.kv.context_length(
                    max(node.depth for node in nodes)
                )
            ms = forward_ms(session.model.latency, billed, cached)
            session.clock.record(session.model.name, kind, billed, cached, ms)
            session.kv.append(billed)
            prepared.append((session, nodes))
        # Group uncached queries by oracle: sessions over the same utterance
        # share one grouped pass (and one StepResult memo).
        buckets: dict[int, tuple[EmissionOracle, list]] = {}
        for session, nodes in prepared:
            results = session._results
            oracle = session._oracle
            for node in nodes:
                if node.step is None:
                    context = _context_key(node.last3) if node.state else 0
                    key = (node.depth, node.state, context)
                    step = results.get(key)
                    if step is None:
                        bucket = buckets.get(id(oracle))
                        if bucket is None:
                            bucket = buckets[id(oracle)] = (oracle, [])
                        bucket[1].append((results, node, key))
                    else:
                        node.step = step
        for oracle, pending in buckets.values():
            _resolve_pending_steps(oracle, pending)
        return [
            [session._node_step(node) for node in nodes]
            for session, nodes in prepared
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedASRModel({self.name!r}, capacity={self.capacity})"


class _TrieNode:
    """One explored prefix: divergence state plus cached oracle output."""

    __slots__ = ("token", "parent", "depth", "state", "last3", "children", "step")

    def __init__(
        self,
        token: int | None,
        parent: "_TrieNode | None",
        depth: int,
        state: int,
        last3: Prefix,
    ) -> None:
        self.token = token
        self.parent = parent
        self.depth = depth
        self.state = state
        self.last3 = last3  # up to three trailing tokens (context key input)
        self.children: dict[int, _TrieNode] = {}
        self.step: StepResult | None = None  # lazily computed distribution

    def prefix(self) -> Prefix:
        tokens: list[int] = []
        node: _TrieNode | None = self
        while node is not None and node.token is not None:
            tokens.append(node.token)
            node = node.parent
        tokens.reverse()
        return tuple(tokens)


class SessionCursor:
    """O(1) handle onto one prefix of a :class:`DecodeSession` trie.

    Cursors are immutable: :meth:`advance` and :meth:`extend` return new
    cursors, so a decoder can keep cursors for several branches of a token
    tree at once.  Iterating a cursor yields its prefix tokens (an O(depth)
    walk), which keeps cursors usable anywhere a token sequence is expected.
    """

    __slots__ = ("session", "node")

    def __init__(self, session: "DecodeSession", node: _TrieNode) -> None:
        self.session = session
        self.node = node

    def advance(self, token: int) -> "SessionCursor":
        """Cursor for this prefix extended by one token (O(1))."""
        node = self.node
        # Inlined hit path of DecodeSession._child: existing trie edges are
        # the overwhelmingly common case in the per-token decode loops.
        child = node.children.get(token)
        if child is None:
            child = self.session._child(node, token)
        return SessionCursor(self.session, child)

    def extend(self, tokens: Sequence[int]) -> "SessionCursor":
        node = self.node
        child = self.session._child
        for token in tokens:
            hit = node.children.get(token)
            node = hit if hit is not None else child(node, token)
        return SessionCursor(self.session, node)

    def rollback(self) -> None:
        """Roll the session's KV cache back to this prefix and prune dead
        divergence branches (everything off the committed path)."""
        self.session.rollback(self.node.depth, keep=self)

    @property
    def tokens(self) -> Prefix:
        return self.node.prefix()

    @property
    def perturb_level(self) -> int:
        return self.node.state

    def __len__(self) -> int:
        return self.node.depth

    def __iter__(self) -> Iterator[int]:
        return iter(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionCursor(depth={self.node.depth})"


class DecodeSession:
    """Per-utterance decoding interface with latency and KV accounting."""

    def __init__(
        self, model: SimulatedASRModel, utterance: Utterance, clock: SimClock
    ) -> None:
        self.model = model
        self.utterance = utterance
        self.clock = clock
        # Deferred import: the tracker lives with the serving-layer block
        # allocator, and a module-level import here would cycle through
        # repro.serving.__init__ while repro.models is still initialising.
        from repro.serving.memory import KVCacheTracker

        self.kv = KVCacheTracker()
        self._oracle = model.oracle(utterance)
        results = _RESULT_CACHES.get(self._oracle)
        if results is None:
            results = {}
            _RESULT_CACHES[self._oracle] = results
        self._results: dict[tuple[int, int, int], StepResult] = results
        self._window = model.oracle_params.perturb_window
        root = _TRIE_CACHES.get(self._oracle)
        if root is None:
            root = _TrieNode(None, None, 0, 0, ())
            _TRIE_CACHES[self._oracle] = root
        self._root = root
        self._committed = root  # deepest node on this session's committed path
        self._prompt_tokens = 0
        self._prefilled = False

    # -- setup -----------------------------------------------------------------
    def prefill(self) -> None:
        """Run the audio encoder and prefill audio embeddings + text prompt."""
        if self._prefilled:
            raise RuntimeError("session already prefilled")
        self._prefilled = True
        duration = self.utterance.duration_s
        audio_embeddings = max(1, int(duration * EMBEDDINGS_PER_SECOND))
        self._prompt_tokens = prompt_token_count(self.utterance)
        if self.model.encoder_latency_ms_per_10s > 0:
            encoder_ms = self.model.encoder_latency_ms_per_10s * duration / 10.0
            self.clock.record(
                self.model.name, KIND_ENCODE, audio_embeddings, 0, encoder_ms
            )
        ms = prefill_ms(self.model.latency, self._prompt_tokens)
        self.clock.record(self.model.name, KIND_PREFILL, self._prompt_tokens, 0, ms)
        self.kv.prefill(self._prompt_tokens)

    @property
    def prompt_tokens(self) -> int:
        return self._prompt_tokens

    # -- prefix trie -----------------------------------------------------------
    def cursor(self, prefix: Sequence[int] = ()) -> SessionCursor:
        """A cursor at ``prefix`` (walks the trie once; root is free)."""
        return SessionCursor(self, self._resolve(prefix))

    def _node_step(self, node: _TrieNode) -> StepResult:
        """The next-token distribution for the position *after* ``node``."""
        step = node.step
        if step is None:
            context = _context_key(node.last3) if node.state else 0
            key = (node.depth, node.state, context)
            step = self._results.get(key)
            if step is None:
                oracle_step = self._oracle.step(node.depth, node.state, context)
                step = StepResult(
                    token=oracle_step.token,
                    top_prob=oracle_step.top_prob,
                    topk=oracle_step.topk,
                    position=oracle_step.position,
                    perturb_level=node.state,
                )
                self._results[key] = step
            node.step = step
        return step

    def _node_steps(self, nodes: "list[_TrieNode]") -> list[StepResult]:
        """Batched :meth:`_node_step`: every uncached distribution in
        ``nodes`` is resolved through one grouped oracle pass
        (:meth:`EmissionOracle.step_many`), bit-identical to the scalar
        per-node path."""
        pending: list = []
        results = self._results
        for node in nodes:
            if node.step is None:
                context = _context_key(node.last3) if node.state else 0
                key = (node.depth, node.state, context)
                step = results.get(key)
                if step is None:
                    pending.append((results, node, key))
                else:
                    node.step = step
        if pending:
            _resolve_pending_steps(self._oracle, pending)
        # Every node's step is populated by now (hit, memo, or batch above).
        return [node.step for node in nodes]

    def _child(self, node: _TrieNode, token: int) -> _TrieNode:
        child = node.children.get(token)
        if child is None:
            if token == self._node_step(node).token:
                state = node.state - 1
                if state < 0:
                    state = 0
            else:
                state = self._window
            child = _TrieNode(
                token, node, node.depth + 1, state, (node.last3 + (token,))[-3:]
            )
            node.children[token] = child
        return child

    def _resolve(self, prefix) -> _TrieNode:
        if isinstance(prefix, SessionCursor):
            if prefix.session is self:
                return prefix.node
            prefix = prefix.tokens  # foreign cursor: fall back to its tokens
        node = self._root
        child = self._child
        for token in prefix:
            node = child(node, token)
        return node

    def perturb_state(self, prefix: Sequence[int]) -> int:
        """Remaining perturbation steps after decoding ``prefix``.

        0 means the model is anchored (the prefix ends on this model's own
        greedy path); k > 0 means the prefix diverged within the last
        ``perturb_window`` tokens.
        """
        return self._resolve(prefix).state

    def trie_size(self) -> int:
        """Number of live trie nodes (excluding the root) — memory metric."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            children = node.children.values()
            count += len(children)
            stack.extend(children)
        return count

    # -- forward passes ------------------------------------------------------
    def _peek_node(self, node: _TrieNode) -> StepResult:
        return self._node_step(node)

    def peek(self, prefix) -> StepResult:
        """Next-token distribution without charging any latency."""
        return self._node_step(self._resolve(prefix))

    def step(self, prefix, kind: str = KIND_DECODE) -> StepResult:
        """One single-token forward pass."""
        self._require_prefill()
        # Inlined cursor fast path of _resolve: per-token decode loops pass
        # this session's own cursors almost exclusively.
        if type(prefix) is SessionCursor and prefix.session is self:
            node = prefix.node
        else:
            node = self._resolve(prefix)
        kv = self.kv
        cached = kv.context_length(node.depth)
        ms = forward_ms(self.model.latency, 1, cached)
        self.clock.record(self.model.name, kind, 1, cached, ms)
        kv.append(1)
        step = node.step
        return step if step is not None else self._node_step(node)

    def step_frontier(self, prefixes, kind: str = KIND_DRAFT) -> list[StepResult]:
        """One batched forward pass over several tree-frontier prefixes.

        Models the masked token tree of the paper's recycling strategy: the
        draft advances all branches in a single forward pass, so regenerating
        a rejected segment hides inside the ongoing prediction.
        """
        self._require_prefill()
        nodes = [self._resolve(p) for p in prefixes]
        if not nodes:
            raise ValueError("step_frontier needs at least one prefix")
        cached = self.kv.context_length(max(node.depth for node in nodes))
        ms = forward_ms(self.model.latency, len(nodes), cached)
        self.clock.record(self.model.name, kind, len(nodes), cached, ms)
        self.kv.append(len(nodes))
        return self._node_steps(nodes)

    def verify_eval(
        self, prefixes, billed_tokens: int | None = None
    ) -> list[StepResult]:
        """One verification forward pass evaluating ``prefixes`` in parallel.

        ``billed_tokens`` is the number of *input* tokens fed to the target
        in this pass (tree nodes / draft tokens).  It defaults to
        ``len(prefixes)``; tree verification passes the number of unique
        nodes, which is what the 2-D attention mask actually evaluates.
        """
        self._require_prefill()
        nodes = [self._resolve(p) for p in prefixes]
        if not nodes:
            raise ValueError("verify_eval needs at least one prefix")
        billed = billed_tokens if billed_tokens is not None else len(nodes)
        if billed < 1:
            raise ValueError(f"billed_tokens must be >= 1, got {billed}")
        cached = self.kv.context_length(min(node.depth for node in nodes))
        ms = forward_ms(self.model.latency, billed, cached)
        self.clock.record(self.model.name, KIND_VERIFY, billed, cached, ms)
        self.kv.append(billed)
        return self._node_steps(nodes)

    def rollback(self, kept_prefix_len: int, keep: SessionCursor | None = None) -> None:
        """Roll the KV cache back to ``prompt + kept_prefix_len`` positions.

        When ``keep`` (a cursor at the committed prefix) is given, divergence
        branches off the committed path are pruned from the trie, so long
        utterances with many speculation rounds don't accumulate dead
        divergence-state entries.  The subtree *below* the committed node is
        retained — it is the live speculation cache for the next round.
        """
        target = self.kv.context_length(kept_prefix_len)
        if target <= self.kv.length:
            self.kv.rollback_to(target)
        if keep is not None and keep.session is self:
            self._prune_to(keep.node)

    def _prune_to(self, node: _TrieNode) -> None:
        # Collect the chain from the previously committed node down to the
        # newly committed one, then drop every off-chain sibling subtree.
        chain: list[_TrieNode] = []
        walk: _TrieNode | None = node
        while walk is not None and walk is not self._committed:
            chain.append(walk)
            walk = walk.parent
        if walk is None:
            return  # not a descendant of the committed path; nothing to prune
        for child in reversed(chain):
            parent = child.parent
            assert parent is not None
            if len(parent.children) > 1:
                parent.children = {child.token: child}
        self._committed = node

    # -- helpers ------------------------------------------------------------
    def is_eos(self, token: int) -> bool:
        return token == self.model.vocab.eos_id

    def max_decode_positions(self) -> int:
        """Hard cap on decode length (reference + margin), safety net."""
        return self.utterance.num_tokens + 8

    def _require_prefill(self) -> None:
        if not self._prefilled:
            raise RuntimeError("call prefill() before decoding")
