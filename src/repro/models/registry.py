"""Model registry: specs, latency presets and draft/target pairings.

Latency constants are calibrated in *simulated milliseconds* so that:

* the paper's Table II baseline-speculative row (Whisper tiny.en draft +
  medium.en target on an RTX A6000) lands near 231 ms draft / 254 ms target
  per 10 s of audio, and
* the TinyLlama / Llama-7B / Vicuna-13B pairings reproduce the relative
  draft-vs-target cost regimes of Fig. 7 and Fig. 11 (the target dominates
  more as it grows; per-forward cost is memory-bound so it scales sublinearly
  with parameters).

Capacities set recognition quality (via the emission oracle).  Following the
paper's Sec. V-A note, the TinyLlama↔Llama/Vicuna WER gap is *smaller* than
the Whisper tiny↔medium gap, so the LLM drafts get higher capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.acoustic import OracleParams
from repro.models.latency import LatencyProfile
from repro.models.simulated import SimulatedASRModel
from repro.models.vocab import Vocabulary, build_default_vocabulary


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one simulated model."""

    name: str
    family: str
    decoder_params_b: float  # LLM decoder parameters, billions
    encoder_params_b: float  # audio encoder parameters, billions (0 = none)
    capacity: float
    latency: LatencyProfile
    encoder_latency_ms_per_10s: float

    @property
    def total_params_b(self) -> float:
        return self.decoder_params_b + self.encoder_params_b


def _profile(
    name: str, base_ms: float, per_token_ms: float, kv_us: float
) -> LatencyProfile:
    return LatencyProfile(
        name=name,
        base_ms=base_ms,
        per_token_ms=per_token_ms,
        kv_us_per_token=kv_us,
        prefill_per_token_ms=per_token_ms * 0.3,
    )


#: All model presets.  base_ms is the per-forward-pass cost (batch 1);
#: per_token_ms the marginal cost per extra token in the same pass.
_SPECS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec(
            name="whisper-tiny-sim",
            family="whisper",
            decoder_params_b=0.039,
            encoder_params_b=0.008,
            capacity=0.72,
            latency=_profile("whisper-tiny-sim", 4.6, 0.10, 1.0),
            encoder_latency_ms_per_10s=8.0,
        ),
        ModelSpec(
            name="whisper-base-sim",
            family="whisper",
            decoder_params_b=0.074,
            encoder_params_b=0.020,
            capacity=0.78,
            latency=_profile("whisper-base-sim", 7.0, 0.13, 1.2),
            encoder_latency_ms_per_10s=12.0,
        ),
        ModelSpec(
            name="whisper-small-sim",
            family="whisper",
            decoder_params_b=0.244,
            encoder_params_b=0.088,
            capacity=0.85,
            latency=_profile("whisper-small-sim", 15.0, 0.20, 1.5),
            encoder_latency_ms_per_10s=22.0,
        ),
        ModelSpec(
            name="whisper-medium-sim",
            family="whisper",
            decoder_params_b=0.769,
            encoder_params_b=0.307,
            capacity=0.93,
            latency=_profile("whisper-medium-sim", 33.0, 0.30, 2.0),
            encoder_latency_ms_per_10s=45.0,
        ),
        ModelSpec(
            name="whisper-large-sim",
            family="whisper",
            decoder_params_b=1.550,
            encoder_params_b=0.635,
            capacity=0.95,
            latency=_profile("whisper-large-sim", 55.0, 0.35, 2.5),
            encoder_latency_ms_per_10s=80.0,
        ),
        # LLM-decoder ASR models: audio encoder is a sub-1B Conformer-like
        # module (paper Fig. 1); the LLM dominates parameters and latency.
        ModelSpec(
            name="tinyllama-sim",
            family="llama",
            decoder_params_b=1.1,
            encoder_params_b=0.11,
            capacity=0.86,
            latency=_profile("tinyllama-sim", 7.0, 0.13, 1.5),
            encoder_latency_ms_per_10s=16.0,
        ),
        ModelSpec(
            name="llama-7b-sim",
            family="llama",
            decoder_params_b=7.0,
            encoder_params_b=0.30,
            capacity=0.93,
            latency=_profile("llama-7b-sim", 30.0, 0.30, 2.5),
            encoder_latency_ms_per_10s=40.0,
        ),
        ModelSpec(
            name="vicuna-13b-sim",
            family="llama",
            decoder_params_b=13.0,
            encoder_params_b=0.30,
            capacity=0.95,
            latency=_profile("vicuna-13b-sim", 52.0, 0.35, 3.0),
            encoder_latency_ms_per_10s=40.0,
        ),
    )
}

#: Draft/target pairings evaluated in the paper.
PAIRINGS: dict[str, tuple[str, str]] = {
    "whisper": ("whisper-tiny-sim", "whisper-medium-sim"),
    "llama-7b": ("tinyllama-sim", "llama-7b-sim"),
    "vicuna-13b": ("tinyllama-sim", "vicuna-13b-sim"),
}


def list_models() -> list[str]:
    return sorted(_SPECS)


def get_spec(name: str) -> ModelSpec:
    if name not in _SPECS:
        raise KeyError(f"unknown model {name!r}; available: {list_models()}")
    return _SPECS[name]


def get_model(
    name: str,
    vocab: Vocabulary | None = None,
    oracle_params: OracleParams | None = None,
    oracle_block_size: int | None = None,
) -> SimulatedASRModel:
    """Instantiate a simulated ASR model from its preset.

    ``oracle_block_size`` overrides the emission oracle's vectorised block
    width (``<= 1`` selects the bit-identical scalar reference path).
    """
    spec = get_spec(name)
    vocab = vocab or build_default_vocabulary()
    kwargs = {}
    if oracle_block_size is not None:
        kwargs["oracle_block_size"] = oracle_block_size
    return SimulatedASRModel(
        name=spec.name,
        capacity=spec.capacity,
        latency=spec.latency,
        vocab=vocab,
        oracle_params=oracle_params,
        encoder_latency_ms_per_10s=spec.encoder_latency_ms_per_10s,
        **kwargs,
    )


def model_pair(
    pairing: str,
    vocab: Vocabulary | None = None,
    oracle_params: OracleParams | None = None,
    oracle_block_size: int | None = None,
) -> tuple[SimulatedASRModel, SimulatedASRModel]:
    """Instantiate the (draft, target) pair for a named pairing."""
    if pairing not in PAIRINGS:
        raise KeyError(f"unknown pairing {pairing!r}; available: {sorted(PAIRINGS)}")
    draft_name, target_name = PAIRINGS[pairing]
    vocab = vocab or build_default_vocabulary()
    draft = get_model(draft_name, vocab, oracle_params, oracle_block_size)
    target = get_model(target_name, vocab, oracle_params, oracle_block_size)
    return draft, target


@dataclass(frozen=True)
class PublishedASRConfig:
    """Encoder/decoder split of published LLM-ASR systems (paper Fig. 1)."""

    name: str
    encoder_params_b: float
    decoder_params_b: float
    encoder_latency_share: float  # fraction of end-to-end latency (paper ~<10 %)


def published_asr_configs() -> list[PublishedASRConfig]:
    """The three systems the paper profiles in Fig. 1.

    Parameter figures follow the papers cited: BESTOW pairs a ~0.6 B encoder
    with a 1.1 B LLM; Speech-Llama a ~0.3 B encoder with Llama-7B; Seed-ASR a
    ~0.7 B encoder with a >10 B LLM.
    """
    return [
        PublishedASRConfig("BESTOW", 0.60, 1.1, 0.22),
        PublishedASRConfig("Speech-Llama", 0.30, 7.0, 0.08),
        PublishedASRConfig("Seed-ASR", 0.70, 12.0, 0.05),
    ]
