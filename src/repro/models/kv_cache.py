"""KV-cache accounting for simulated decoder sessions.

Tracks the number of cached key/value positions per session, including
rollbacks when speculative tokens are rejected.  The cache length feeds the
attention term of the latency model, and the counters let benches report how
much cache churn each decoding strategy causes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KVCacheTracker:
    """Current cache length plus lifetime append/rollback counters."""

    length: int = 0
    peak: int = 0
    appended_total: int = 0
    rolled_back_total: int = 0
    rollback_events: int = 0
    _history: list[int] = field(default_factory=list, repr=False)

    def append(self, count: int) -> None:
        """Cache ``count`` new positions."""
        if count < 0:
            raise ValueError(f"cannot append negative count {count}")
        self.length += count
        self.appended_total += count
        self.peak = max(self.peak, self.length)
        self._history.append(self.length)

    def rollback_to(self, length: int) -> None:
        """Discard cached positions beyond ``length`` (rejected tokens)."""
        if length < 0:
            raise ValueError(f"cannot rollback to negative length {length}")
        if length > self.length:
            raise ValueError(
                f"rollback target {length} exceeds current length {self.length}"
            )
        dropped = self.length - length
        if dropped:
            self.rolled_back_total += dropped
            self.rollback_events += 1
        self.length = length
        self._history.append(self.length)

    @property
    def waste_ratio(self) -> float:
        """Fraction of appended positions that were later rolled back."""
        if self.appended_total == 0:
            return 0.0
        return self.rolled_back_total / self.appended_total
