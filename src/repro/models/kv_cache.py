"""Deprecated shim: KV-cache accounting moved to :mod:`repro.serving.memory`.

The per-session tracker grew into the serving layer's paged block
allocator (:class:`~repro.serving.memory.ClusterKVMemory`), so the whole
public surface now lives there — one place exports both the session-level
tracker and the cluster-level allocator.  This module re-exports
:class:`KVCacheTracker` for old imports and will be removed.
"""

from __future__ import annotations

import warnings

from repro.serving.memory import KVCacheTracker

__all__ = ["KVCacheTracker"]

warnings.warn(
    "repro.models.kv_cache is deprecated; import KVCacheTracker from "
    "repro.serving.memory (or repro.serving) instead",
    DeprecationWarning,
    stacklevel=2,
)
