"""Word-level vocabulary with phonetic confusion pools.

The simulated ASR models decode at word granularity (one token per word),
which matches how the paper's figures count tokens and keeps WER == token
error rate.  Each word also gets a *confusion pool* — vocabulary entries with
a similar coarse phonetic signature — from which the acoustic oracle draws
plausible misrecognitions (e.g. ``night``/``knight``-style neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.data.lexicon import default_lexicon
from repro.utils.hashing import stable_hash

PAD_TOKEN = "<pad>"
BOS_TOKEN = "<s>"
EOS_TOKEN = "</s>"
UNK_TOKEN = "<unk>"

_SPECIALS = (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN)

#: Coarse phonetic classes used for the confusion-pool signature.
_PHONE_CLASSES = {
    **{c: "V" for c in "aeiouy"},
    **{c: "S" for c in "szfvc"},  # fricatives
    **{c: "T" for c in "tdkgpbqx"},  # stops
    **{c: "N" for c in "mn"},  # nasals
    **{c: "L" for c in "lrwjh"},  # liquids/glides
}


def phonetic_signature(word: str) -> str:
    """Collapse a word to a coarse phonetic key.

    First sound class + run-length-collapsed class string + length bucket.
    Words sharing a signature are treated as acoustically confusable.
    """
    classes = []
    for char in word.lower():
        cls = _PHONE_CLASSES.get(char)
        if cls is None:
            continue
        if classes and classes[-1] == cls:
            continue
        classes.append(cls)
    if not classes:
        classes = ["V"]
    length_bucket = min(len(word) // 3, 3)
    return f"{classes[0]}{''.join(classes[:4])}:{length_bucket}"


@dataclass
class Vocabulary:
    """Bidirectional word ↔ id mapping with confusion pools.

    Ids 0-3 are reserved for PAD/BOS/EOS/UNK.
    """

    words: tuple[str, ...]
    _word_to_id: dict[str, int] = field(init=False, repr=False)
    _confusion_pools: dict[int, tuple[int, ...]] = field(init=False, repr=False)
    _regular_ids: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(set(self.words)) != len(self.words):
            raise ValueError("vocabulary words must be unique")
        for special in _SPECIALS:
            if special in self.words:
                raise ValueError(f"{special} is reserved and cannot be a word")
        all_tokens = list(_SPECIALS) + list(self.words)
        self._word_to_id = {tok: idx for idx, tok in enumerate(all_tokens)}
        self._confusion_pools = self._build_confusion_pools()
        self._regular_ids = [self._word_to_id[w] for w in self.words]

    # -- basic mapping ------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.words) + len(_SPECIALS)

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def bos_id(self) -> int:
        return 1

    @property
    def eos_id(self) -> int:
        return 2

    @property
    def unk_id(self) -> int:
        return 3

    def token_to_id(self, token: str) -> int:
        return self._word_to_id.get(token, self.unk_id)

    def id_to_token(self, token_id: int) -> str:
        if not 0 <= token_id < self.size:
            raise IndexError(f"token id {token_id} outside vocabulary of {self.size}")
        if token_id < len(_SPECIALS):
            return _SPECIALS[token_id]
        return self.words[token_id - len(_SPECIALS)]

    def encode_words(self, words: Iterable[str]) -> list[int]:
        return [self.token_to_id(word) for word in words]

    def decode_ids(self, ids: Sequence[int], skip_special: bool = True) -> list[str]:
        tokens = []
        for token_id in ids:
            token = self.id_to_token(token_id)
            if skip_special and token in _SPECIALS:
                continue
            tokens.append(token)
        return tokens

    def is_special(self, token_id: int) -> bool:
        return 0 <= token_id < len(_SPECIALS)

    # -- confusion pools ------------------------------------------------------
    def _build_confusion_pools(self) -> dict[int, tuple[int, ...]]:
        groups: dict[str, list[int]] = {}
        for word in self.words:
            groups.setdefault(phonetic_signature(word), []).append(
                self._word_to_id[word]
            )
        pools: dict[int, tuple[int, ...]] = {}
        word_ids = [self._word_to_id[w] for w in self.words]
        for word in self.words:
            word_id = self._word_to_id[word]
            same_group = [
                other for other in groups[phonetic_signature(word)] if other != word_id
            ]
            if len(same_group) < 3:
                # Pad the pool with deterministic pseudo-random neighbours so
                # every word has at least 3 confusable alternatives.
                need = 3 - len(same_group)
                start = stable_hash("confusion-pad", word) % len(word_ids)
                for offset in range(len(word_ids)):
                    candidate = word_ids[(start + offset) % len(word_ids)]
                    if candidate != word_id and candidate not in same_group:
                        same_group.append(candidate)
                        need -= 1
                        if need == 0:
                            break
            pools[word_id] = tuple(same_group)
        return pools

    def confusion_pool(self, token_id: int) -> tuple[int, ...]:
        """Confusable alternatives for ``token_id`` (empty for specials)."""
        return self._confusion_pools.get(token_id, ())

    def regular_ids(self) -> list[int]:
        """All non-special token ids (shared list — do not mutate)."""
        return self._regular_ids


def build_default_vocabulary() -> Vocabulary:
    """The vocabulary over the embedded lexicon used across the repo."""
    return Vocabulary(words=tuple(default_lexicon().all_words()))
