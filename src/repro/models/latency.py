"""Analytic latency model for simulated forward passes.

All tables and figures in the paper report wall-clock decoding latency on an
RTX A6000.  Without a GPU we account latency analytically, per forward pass,
with the standard decoder cost structure:

``ms = base + per_token * new_tokens + kv_us/1000 * cached_tokens * new_tokens``

* ``base`` — fixed cost of launching one decoding forward pass (weights
  traffic; dominant for batch-1 autoregressive decoding, which is
  memory-bound).
* ``per_token`` — marginal cost of each additional token evaluated in the
  same pass (speculative verification batches tokens, so verifying n tokens
  costs far less than n sequential passes — the whole premise of speculative
  decoding).
* ``kv_us`` — marginal attention cost per (cached token × new token) pair.

Per-model constants are calibrated in :mod:`repro.models.registry` so that
the baseline-speculative row of the paper's Table II lands near 231 ms draft
/ 254 ms target per 10 s of audio.  Every event is recorded on a
:class:`SimClock`; totals are *sums of recorded events*, never estimated
twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, NamedTuple


@dataclass(frozen=True)
class LatencyProfile:
    """Latency constants for one model."""

    name: str
    base_ms: float
    per_token_ms: float
    kv_us_per_token: float
    prefill_per_token_ms: float

    def __post_init__(self) -> None:
        if min(self.base_ms, self.per_token_ms) < 0:
            raise ValueError(f"{self.name}: negative latency constants")
        if min(self.kv_us_per_token, self.prefill_per_token_ms) < 0:
            raise ValueError(f"{self.name}: negative latency constants")


def forward_ms(profile: LatencyProfile, new_tokens: int, cached_tokens: int) -> float:
    """Cost of one decoding forward pass evaluating ``new_tokens`` positions."""
    if new_tokens < 1:
        raise ValueError(f"forward pass needs >= 1 new token, got {new_tokens}")
    if cached_tokens < 0:
        raise ValueError(f"negative KV cache length {cached_tokens}")
    return (
        profile.base_ms
        + profile.per_token_ms * new_tokens
        + profile.kv_us_per_token / 1000.0 * cached_tokens * new_tokens
    )


def prefill_ms(profile: LatencyProfile, prompt_tokens: int) -> float:
    """Cost of prefilling ``prompt_tokens`` (audio embeddings + text prompt)."""
    if prompt_tokens < 0:
        raise ValueError(f"negative prompt length {prompt_tokens}")
    return profile.base_ms + profile.prefill_per_token_ms * prompt_tokens


#: Event kinds recorded on the clock.
KIND_PREFILL = "prefill"
KIND_DECODE = "decode"  # plain autoregressive step
KIND_DRAFT = "draft"  # draft model speculation step (possibly batched)
KIND_VERIFY = "verify"  # target model verification pass
KIND_ENCODE = "encode"  # audio encoder pass


class LatencyEvent(NamedTuple):
    """One recorded forward pass.

    A NamedTuple: one event is appended per simulated forward pass, which
    makes construction cost part of the decode hot path.
    """

    model: str
    kind: str
    new_tokens: int
    cached_tokens: int
    ms: float


@dataclass
class SimClock:
    """Accumulates latency events for one decode run."""

    events: list[LatencyEvent] = field(default_factory=list)

    def record(
        self,
        model: str,
        kind: str,
        new_tokens: int,
        cached_tokens: int,
        ms: float,
    ) -> LatencyEvent:
        if ms < 0:
            raise ValueError("negative event duration")
        event = LatencyEvent(model, kind, new_tokens, cached_tokens, ms)
        self.events.append(event)
        return event

    # -- aggregation ---------------------------------------------------------
    def total_ms(self) -> float:
        return sum(event.ms for event in self.events)

    def total_for_model(self, model: str) -> float:
        return sum(event.ms for event in self.events if event.model == model)

    def total_for_kind(self, *kinds: str) -> float:
        wanted = set(kinds)
        return sum(event.ms for event in self.events if event.kind in wanted)

    def count_for_kind(self, *kinds: str) -> int:
        wanted = set(kinds)
        return sum(1 for event in self.events if event.kind in wanted)

    def tokens_for_kind(self, *kinds: str) -> int:
        wanted = set(kinds)
        return sum(event.new_tokens for event in self.events if event.kind in wanted)

    def merge(self, other: "SimClock") -> None:
        self.events.extend(other.events)


def summarize_events(events: Iterable[LatencyEvent]) -> dict[str, float]:
    """Total milliseconds keyed by ``model/kind``."""
    totals: dict[str, float] = {}
    for event in events:
        key = f"{event.model}/{event.kind}"
        totals[key] = totals.get(key, 0.0) + event.ms
    return totals
