"""Simulated model substrate: vocabulary, latency, emission oracle, models."""

from repro.models.acoustic import EmissionOracle, OracleParams, OracleStep
from repro.models.latency import LatencyEvent, LatencyProfile, SimClock, forward_ms
from repro.models.registry import (
    ModelSpec,
    get_model,
    list_models,
    model_pair,
    published_asr_configs,
)
from repro.models.simulated import (
    DecodeSession,
    SessionCursor,
    SimulatedASRModel,
    StepResult,
)
from repro.models.textlm import SimulatedTextLM, TextSession
from repro.models.vocab import Vocabulary, build_default_vocabulary


def __getattr__(name: str):
    # KVCacheTracker's home is now repro.serving.memory (one public surface
    # for session- and cluster-level KV accounting).  Resolved lazily: an
    # eager import here would cycle through repro.serving while this
    # package is still initialising.
    if name == "KVCacheTracker":
        from repro.serving.memory import KVCacheTracker

        return KVCacheTracker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DecodeSession",
    "EmissionOracle",
    "KVCacheTracker",
    "LatencyEvent",
    "LatencyProfile",
    "ModelSpec",
    "OracleParams",
    "OracleStep",
    "SessionCursor",
    "SimClock",
    "SimulatedASRModel",
    "SimulatedTextLM",
    "StepResult",
    "TextSession",
    "Vocabulary",
    "build_default_vocabulary",
    "forward_ms",
    "get_model",
    "list_models",
    "model_pair",
    "published_asr_configs",
]
