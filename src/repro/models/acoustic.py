"""Audio-conditioned emission oracle for simulated ASR models.

This module is the statistical heart of the reproduction.  A real ASR
decoder maps (audio, prefix) → next-token logits; the oracle reproduces the
*statistics* of that mapping that speculative decoding cares about, while
staying a deterministic pure function of seeds:

* **Candidate scoring** — at reference position ``i`` the candidates are the
  reference token, three acoustically *confusable* tokens (shared between
  all models looking at the same audio), and a few distractors.  Scores are
  ``gain ± shared acoustic noise ± model-specific noise``; softmax gives the
  top-k probabilities ("normalized logits" in the paper).
* **Capacity** — larger models weigh the reference evidence more and carry
  less model-specific noise, so they err less (Fig. 5a WER scaling).
* **Correlated errors** — the shared noise makes draft and target errors
  co-occur at genuinely hard audio, producing the high draft/target
  alignment of Observation 1 and the localized-error bursts of
  Observation 2.
* **Audio anchoring** — emission depends on the *position* (the audio
  frame), not on the text prefix.  When a model is pushed off its own greedy
  path (e.g. the draft receives the target's correction), a short
  *perturbation window* adds extra context noise that decays in a couple of
  steps, after which the model re-anchors to the audio exactly — the paper's
  core observation that ASR decoding is audio-conditioned.  (The text-task
  comparator in :mod:`repro.models.textlm` never re-anchors.)
* **Rank structure** — when the draft's top-1 fails verification, the token
  the target actually produced sits at draft rank 2 about two-thirds of the
  time (Fig. 13b).  This emerges from the candidate scores; an occasional
  extra "attention drop" on the reference score reproduces the rank ≥ 3
  tail.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.data.corpus import Utterance
from repro.models.vocab import Vocabulary
from repro.utils.cache import LRUCache
from repro.utils.hashing import hash_prefix, stable_hash_with
from repro.utils.mathutil import softmax_array
from repro.utils.rng import fast_generator as _fast_rng


@dataclass(frozen=True)
class OracleParams:
    """Tunable constants of the emission process.

    Defaults were calibrated (see ``tests/test_calibration.py`` and the
    Fig. 5a bench) so that simulated WERs and draft/target agreement land in
    the ranges the paper reports for Whisper tiny/medium on LibriSpeech.
    """

    ref_gain: float = 4.5
    capacity_power: float = 1.6
    confusion_gains: tuple[float, ...] = (2.5, 1.30, 1.05)
    distractor_count: int = 8
    distractor_score: float = -0.6
    distractor_slope: float = 2.0
    distractor_cap: float = 0.45
    distractor_noise_factor: float = 0.40
    shared_noise: float = 0.55
    model_noise_base: float = 0.28
    model_noise_capacity: float = 0.60
    noise_floor: float = 0.35
    noise_slope: float = 1.10
    temperature: float = 0.58
    perturb_window: int = 2
    perturb_noise: float = 0.55
    rank_drop_prob: float = 0.20
    rank_drop_penalty: float = 0.80
    topk: int = 8
    eos_gain: float = 4.0

    def model_noise(self, capacity: float) -> float:
        """Model-specific noise scale; smaller for higher-capacity models."""
        return self.model_noise_base + self.model_noise_capacity * (1.0 - capacity)

    def noise_scale(self, difficulty: float) -> float:
        """Noise multiplier as a function of local acoustic difficulty.

        Easy audio is recognised near-deterministically with high
        confidence; hard audio is both error-prone *and* visibly uncertain.
        This coupling is what makes the paper's normalised-logit truncation
        threshold informative (Fig. 13a) and concentrates errors in
        localized hard segments (Observation 2).
        """
        return self.noise_floor + self.noise_slope * difficulty


class OracleStep(NamedTuple):
    """Next-token distribution at one decode position.

    A NamedTuple rather than a dataclass: tens of thousands are built per
    corpus decode and tuple construction is measurably cheaper.
    """

    position: int
    token: int
    top_prob: float
    topk: tuple[tuple[int, float], ...]

    def rank_of(self, token: int) -> int | None:
        """1-based rank of ``token`` in the top-k, or None if absent."""
        for rank, (candidate, _prob) in enumerate(self.topk, start=1):
            if candidate == token:
                return rank
        return None


#: Memo for deterministic normal draws.  Seeds are content-derived, so the
#: same draw recurs across models (shared acoustic noise) and decode rounds;
#: entries are tiny (~a dozen floats).
_NORMALS_CACHE: LRUCache = LRUCache(maxsize=65536)


def _normals(seed: int, count: int) -> np.ndarray:
    """``count`` deterministic standard-normal draws from ``seed``."""
    key = (seed, count)
    draws = _NORMALS_CACHE.get(key)
    if draws is None:
        draws = _fast_rng(seed).standard_normal(count)
        draws.setflags(write=False)
        _NORMALS_CACHE.put(key, draws)
    return draws


#: Candidate token sets are a pure function of (vocabulary, utterance
#: content, position, candidate-count params) — *not* of the model — so the
#: draft and target of a pairing share one cache per vocabulary.  Keyed by
#: vocabulary identity (Vocabulary is an eq-dataclass, hence unhashable);
#: a finalizer drops the cache when its vocabulary is collected.
_CANDIDATE_CACHES: dict[int, LRUCache] = {}


def _candidate_cache(vocab: Vocabulary) -> LRUCache:
    key = id(vocab)
    cache = _CANDIDATE_CACHES.get(key)
    if cache is None:
        cache = LRUCache(maxsize=65536)
        _CANDIDATE_CACHES[key] = cache
        weakref.finalize(vocab, _CANDIDATE_CACHES.pop, key, None)
    return cache


def clear_acoustic_caches() -> None:
    """Drop the module-level memo caches (for cold-cache benchmarking)."""
    _NORMALS_CACHE.clear()
    for cache in _CANDIDATE_CACHES.values():
        cache.clear()


class EmissionOracle:
    """Deterministic emission process for one (model, utterance) pair.

    ``step(position, perturb_level, context_key)`` returns the model's
    next-token distribution at an audio position.  ``perturb_level`` is the
    number of remaining off-path perturbation steps (0 = anchored);
    ``context_key`` folds the divergent context into the perturbation draw so
    different corrections perturb differently.
    """

    def __init__(
        self,
        model_name: str,
        model_seed: int,
        capacity: float,
        utterance: Utterance,
        vocab: Vocabulary,
        params: OracleParams | None = None,
    ) -> None:
        if not 0.0 < capacity <= 1.0:
            raise ValueError(f"capacity must be in (0, 1], got {capacity}")
        self.model_name = model_name
        self.model_seed = model_seed
        self.capacity = capacity
        self.utterance = utterance
        self.vocab = vocab
        self.params = params or OracleParams()
        self._cache: dict[tuple[int, int, int], OracleStep] = {}
        # Per-position pre-perturbation state: (candidates, candidate array,
        # base scores).  Perturbed variants of a position share it, so
        # re-anchoring after a correction costs one noise draw + softmax,
        # not a full rebuild.
        self._base: dict[int, tuple[list[int], np.ndarray, np.ndarray]] = {}
        self._greedy: list[int] | None = None
        # Precomputed stable_hash payload prefixes for the per-position
        # seeds (bit-identical to hashing the full argument lists).
        useed = self.utterance.seed
        self._h_shared = hash_prefix(useed, "shared-noise")
        self._h_own = hash_prefix(self.model_seed, useed, "model-noise")
        self._h_drop = hash_prefix(self.model_seed, useed, "rank-drop")
        self._h_perturb = hash_prefix(self.model_seed, useed, "perturb")
        self._h_confusions = hash_prefix(useed, "confusions")
        self._h_distractors = hash_prefix(useed, "distractors")

    # -- public API ----------------------------------------------------------
    @property
    def max_positions(self) -> int:
        """Positions 0..len(tokens)-1 are words; len(tokens) is EOS."""
        return self.utterance.num_tokens + 1

    def step(
        self, position: int, perturb_level: int = 0, context_key: int = 0
    ) -> OracleStep:
        """Next-token distribution at ``position``."""
        if position < 0:
            raise ValueError(f"negative position {position}")
        if perturb_level == 0:
            context_key = 0
        key = (position, perturb_level, context_key)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute_step(position, perturb_level, context_key)
            self._cache[key] = cached
        return cached

    def greedy_token(self, position: int) -> int:
        return self.step(position).token

    def greedy_stream(self) -> list[int]:
        """The model's anchored greedy transcript (EOS-terminated)."""
        if self._greedy is None:
            self._greedy = [self.step(pos).token for pos in range(self.max_positions)]
        return list(self._greedy)

    # -- emission process ------------------------------------------------------
    def _candidate_tokens(self, position: int) -> list[int]:
        """Candidate token ids at ``position`` (shared across models)."""
        p = self.params
        cache = _candidate_cache(self.vocab)
        key = (
            self.utterance.content_key,
            position,
            len(p.confusion_gains),
            p.distractor_count,
        )
        cached = cache.get(key)
        if cached is None:
            cached = self._build_candidates(position)
            cache.put(key, cached)
        return cached

    def _build_candidates(self, position: int) -> list[int]:
        p = self.params
        utt_seed = self.utterance.seed
        if position >= self.utterance.num_tokens:
            # EOS region: EOS plus a couple of distractors.
            distractors = self._distractors(position, 2, exclude=(self.vocab.eos_id,))
            return [self.vocab.eos_id, *distractors]
        ref = self.utterance.tokens[position]
        pool = self.vocab.confusion_pool(ref)
        confusions: list[int] = []
        if pool:
            rng = _fast_rng(stable_hash_with(self._h_confusions, position))
            order = rng.permutation(len(pool))
            for idx in order:
                candidate = pool[int(idx)]
                if candidate != ref and candidate not in confusions:
                    confusions.append(candidate)
                if len(confusions) == len(p.confusion_gains):
                    break
        exclude = (ref, *confusions)
        distractors = self._distractors(position, p.distractor_count, exclude)
        return [ref, *confusions, *distractors]

    def _distractors(
        self, position: int, count: int, exclude: tuple[int, ...]
    ) -> list[int]:
        regular = self.vocab.regular_ids()
        rng = _fast_rng(stable_hash_with(self._h_distractors, position))
        picked: list[int] = []
        excluded = set(exclude)
        pool_size = len(regular)
        # Batched draws are stream-identical to repeated scalar draws from
        # the same generator, so over-drawing a block and consuming it in
        # order picks exactly the tokens the one-at-a-time loop would.
        while len(picked) < count:
            for index in rng.integers(0, pool_size, size=count + 4):
                candidate = regular[int(index)]
                if candidate not in excluded:
                    picked.append(candidate)
                    excluded.add(candidate)
                    if len(picked) == count:
                        break
        return picked

    def _compute_step(
        self, position: int, perturb_level: int, context_key: int
    ) -> OracleStep:
        p = self.params
        base = self._base.get(position)
        if base is None:
            base = self._compute_base(position)
            self._base[position] = base
        candidates, cand_arr, scores = base
        n = len(candidates)

        if perturb_level > 0:
            level_frac = perturb_level / max(p.perturb_window, 1)
            perturb = p.perturb_noise * level_frac * _normals(
                stable_hash_with(self._h_perturb, position, perturb_level, context_key),
                n,
            )
            scores = scores + perturb

        # Passing the array through is bit-identical to scores.tolist():
        # tolist() round-trips the exact same float64 values.
        prob_arr = softmax_array(scores, temperature=p.temperature)
        probs = prob_arr.tolist()
        # lexsort (last key primary): descending prob, candidate id as the
        # tie-break — the same total order as sorting (-prob, candidate).
        order = np.lexsort((cand_arr, -prob_arr))
        top = order[: p.topk]
        topk = tuple((candidates[i], probs[i]) for i in top)
        return OracleStep(
            position=position,
            token=topk[0][0],
            top_prob=topk[0][1],
            topk=topk,
        )

    def _compute_base(self, position: int) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Candidates (list + array) and pre-perturbation scores."""
        p = self.params
        utt = self.utterance
        candidates = self._candidate_tokens(position)
        n = len(candidates)

        if position >= utt.num_tokens:
            gains = np.array([p.eos_gain] + [p.distractor_score] * (n - 1))
            difficulty = 0.05
        else:
            difficulty = utt.difficulty[position]
            gains = np.empty(n)
            effective_capacity = self.capacity**p.capacity_power
            gains[0] = p.ref_gain * (1.0 - difficulty) * effective_capacity
            n_conf = min(len(p.confusion_gains), n - 1 - p.distractor_count)
            n_conf = max(n_conf, 0)
            for idx in range(n_conf):
                gains[1 + idx] = p.confusion_gains[idx] * difficulty
            # Distractors grow competitive with local difficulty: at hard
            # positions many tokens plausibly fit the audio, flattening the
            # distribution (low normalised top logit) like a real ASR
            # decoder's subword lattice does.  The cap keeps the crowd below
            # the real contenders so the reference stays near rank 2 even at
            # severe positions (Fig. 13b).
            distractor_gain = min(
                p.distractor_score + p.distractor_slope * difficulty,
                p.distractor_cap,
            )
            gains[1 + n_conf:] = distractor_gain

        scale = p.noise_scale(difficulty)
        shared = p.shared_noise * scale * _normals(
            stable_hash_with(self._h_shared, position), n
        )
        own = p.model_noise(self.capacity) * scale * _normals(
            stable_hash_with(self._h_own, position), n
        )
        noise = shared + own
        if position < utt.num_tokens:
            # Distractors crowd the distribution (they carry probability
            # mass at hard positions) but must rarely outrank the real
            # contenders: they move with a single damped *crowd level* per
            # position instead of independent draws, so they depress the
            # normalised top logit without burying the reference token —
            # preserving the failure-rank structure of Fig. 13b.
            n_conf = min(len(p.confusion_gains), n - 1 - p.distractor_count)
            first_distractor = 1 + max(n_conf, 0)
            # noise[fd:] holds exactly shared[fd:] + own[fd:] at this point.
            crowd_level = p.distractor_noise_factor * (
                noise[first_distractor:]
            ).mean() if first_distractor < n else 0.0
            noise[first_distractor:] = crowd_level
        scores = gains + noise

        # Occasional "attention drop" on the reference evidence: when the
        # model errs, the reference sometimes falls below rank 2 (Fig. 13b's
        # rank >= 3 tail).  Larger models are less prone to it.
        drop_draw = _fast_rng(stable_hash_with(self._h_drop, position)).uniform()
        drop_prob = p.rank_drop_prob * difficulty * max(1.1 - self.capacity, 0.0)
        if position < utt.num_tokens and drop_draw < drop_prob:
            scores[0] -= p.rank_drop_penalty

        return candidates, np.asarray(candidates), scores


@dataclass
class OracleFactory:
    """Builds per-utterance oracles for a model, with a bounded LRU cache.

    The cache key is :attr:`Utterance.content_key` — the same key the model
    layer uses — so an oracle is never double-built for the same audio by
    two caching layers, and same-id utterances from differently-configured
    corpora don't collide.  ``cache_size <= 0`` disables the bound.
    """

    model_name: str
    model_seed: int
    capacity: float
    vocab: Vocabulary
    params: OracleParams = field(default_factory=OracleParams)
    cache_size: int = 64
    _cache: LRUCache = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._cache is None:
            self._cache = LRUCache(self.cache_size)

    def for_utterance(self, utterance: Utterance) -> EmissionOracle:
        key = utterance.content_key
        oracle = self._cache.get(key)
        if oracle is None:
            oracle = EmissionOracle(
                self.model_name,
                self.model_seed,
                self.capacity,
                utterance,
                self.vocab,
                self.params,
            )
            self._cache.put(key, oracle)
        return oracle

    def cached_count(self) -> int:
        return len(self._cache)
