"""Audio-conditioned emission oracle for simulated ASR models.

This module is the statistical heart of the reproduction.  A real ASR
decoder maps (audio, prefix) → next-token logits; the oracle reproduces the
*statistics* of that mapping that speculative decoding cares about, while
staying a deterministic pure function of seeds:

* **Candidate scoring** — at reference position ``i`` the candidates are the
  reference token, three acoustically *confusable* tokens (shared between
  all models looking at the same audio), and a few distractors.  Scores are
  ``gain ± shared acoustic noise ± model-specific noise``; softmax gives the
  top-k probabilities ("normalized logits" in the paper).
* **Capacity** — larger models weigh the reference evidence more and carry
  less model-specific noise, so they err less (Fig. 5a WER scaling).
* **Correlated errors** — the shared noise makes draft and target errors
  co-occur at genuinely hard audio, producing the high draft/target
  alignment of Observation 1 and the localized-error bursts of
  Observation 2.
* **Audio anchoring** — emission depends on the *position* (the audio
  frame), not on the text prefix.  When a model is pushed off its own greedy
  path (e.g. the draft receives the target's correction), a short
  *perturbation window* adds extra context noise that decays in a couple of
  steps, after which the model re-anchors to the audio exactly — the paper's
  core observation that ASR decoding is audio-conditioned.  (The text-task
  comparator in :mod:`repro.models.textlm` never re-anchors.)
* **Rank structure** — when the draft's top-1 fails verification, the token
  the target actually produced sits at draft rank 2 about two-thirds of the
  time (Fig. 13b).  This emerges from the candidate scores; an occasional
  extra "attention drop" on the reference score reproduces the rank ≥ 3
  tail.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.data.corpus import Utterance
from repro.models.vocab import Vocabulary
from repro.utils.cache import LRUCache
from repro.utils.hashing import hash_prefix, stable_hash_ints, stable_hash_with
from repro.utils.mathutil import softmax_array, softmax_block
from repro.utils.rng import batched_generators as _batched_rngs
from repro.utils.rng import fast_generator as _fast_rng

#: Default width of one vectorised base block (positions scored per numpy
#: pass).  ``block_size <= 1`` on the oracle selects the scalar reference
#: path; both paths are bit-identical (see ``tests/test_acoustic_parity.py``).
BASE_BLOCK_SIZE = 32

#: Bound on the per-oracle ``_base`` cache: blocks held when vectorised,
#: positions held on the scalar path (same worst-case position budget).
BASE_CACHE_BLOCKS = 64
BASE_CACHE_POSITIONS = BASE_CACHE_BLOCKS * BASE_BLOCK_SIZE


@dataclass(frozen=True)
class OracleParams:
    """Tunable constants of the emission process.

    Defaults were calibrated (see ``tests/test_calibration.py`` and the
    Fig. 5a bench) so that simulated WERs and draft/target agreement land in
    the ranges the paper reports for Whisper tiny/medium on LibriSpeech.
    """

    ref_gain: float = 4.5
    capacity_power: float = 1.6
    confusion_gains: tuple[float, ...] = (2.5, 1.30, 1.05)
    distractor_count: int = 8
    distractor_score: float = -0.6
    distractor_slope: float = 2.0
    distractor_cap: float = 0.45
    distractor_noise_factor: float = 0.40
    shared_noise: float = 0.55
    model_noise_base: float = 0.28
    model_noise_capacity: float = 0.60
    noise_floor: float = 0.35
    noise_slope: float = 1.10
    temperature: float = 0.58
    perturb_window: int = 2
    perturb_noise: float = 0.55
    rank_drop_prob: float = 0.20
    rank_drop_penalty: float = 0.80
    topk: int = 8
    eos_gain: float = 4.0

    def model_noise(self, capacity: float) -> float:
        """Model-specific noise scale; smaller for higher-capacity models."""
        return self.model_noise_base + self.model_noise_capacity * (1.0 - capacity)

    def noise_scale(self, difficulty: float) -> float:
        """Noise multiplier as a function of local acoustic difficulty.

        Easy audio is recognised near-deterministically with high
        confidence; hard audio is both error-prone *and* visibly uncertain.
        This coupling is what makes the paper's normalised-logit truncation
        threshold informative (Fig. 13a) and concentrates errors in
        localized hard segments (Observation 2).
        """
        return self.noise_floor + self.noise_slope * difficulty


class OracleStep(NamedTuple):
    """Next-token distribution at one decode position.

    A NamedTuple rather than a dataclass: tens of thousands are built per
    corpus decode and tuple construction is measurably cheaper.
    """

    position: int
    token: int
    top_prob: float
    topk: tuple[tuple[int, float], ...]

    def rank_of(self, token: int) -> int | None:
        """1-based rank of ``token`` in the top-k, or None if absent."""
        for rank, (candidate, _prob) in enumerate(self.topk, start=1):
            if candidate == token:
                return rank
        return None


#: Memo for deterministic normal draws.  Seeds are content-derived, so the
#: same draw recurs across models (shared acoustic noise) and decode rounds;
#: entries are tiny (~a dozen floats).
_NORMALS_CACHE: LRUCache = LRUCache(maxsize=65536)


def _normals(seed: int, count: int) -> np.ndarray:
    """``count`` deterministic standard-normal draws from ``seed``."""
    key = (seed, count)
    draws = _NORMALS_CACHE.get(key)
    if draws is None:
        draws = _fast_rng(seed).standard_normal(count)
        draws.setflags(write=False)
        _NORMALS_CACHE.put(key, draws)
    return draws


#: Candidate token sets are a pure function of (vocabulary, utterance
#: content, position, candidate-count params) — *not* of the model — so the
#: draft and target of a pairing share one cache per vocabulary.  Keyed by
#: vocabulary identity (Vocabulary is an eq-dataclass, hence unhashable);
#: a finalizer drops the cache when its vocabulary is collected.
_CANDIDATE_CACHES: dict[int, LRUCache] = {}


def _candidate_cache(vocab: Vocabulary) -> LRUCache:
    key = id(vocab)
    cache = _CANDIDATE_CACHES.get(key)
    if cache is None:
        cache = LRUCache(maxsize=65536)
        _CANDIDATE_CACHES[key] = cache
        weakref.finalize(vocab, _CANDIDATE_CACHES.pop, key, None)
    return cache


def clear_acoustic_caches() -> None:
    """Drop the module-level memo caches (for cold-cache benchmarking)."""
    _NORMALS_CACHE.clear()
    for cache in _CANDIDATE_CACHES.values():
        cache.clear()


class EmissionOracle:
    """Deterministic emission process for one (model, utterance) pair.

    ``step(position, perturb_level, context_key)`` returns the model's
    next-token distribution at an audio position.  ``perturb_level`` is the
    number of remaining off-path perturbation steps (0 = anchored);
    ``context_key`` folds the divergent context into the perturbation draw so
    different corrections perturb differently.
    """

    def __init__(
        self,
        model_name: str,
        model_seed: int,
        capacity: float,
        utterance: Utterance,
        vocab: Vocabulary,
        params: OracleParams | None = None,
        block_size: int = BASE_BLOCK_SIZE,
    ) -> None:
        if not 0.0 < capacity <= 1.0:
            raise ValueError(f"capacity must be in (0, 1], got {capacity}")
        self.model_name = model_name
        self.model_seed = model_seed
        self.capacity = capacity
        self.utterance = utterance
        self.vocab = vocab
        self.params = params or OracleParams()
        self.block_size = int(block_size)
        self._cache: dict[tuple[int, int, int], OracleStep] = {}
        # Per-position pre-perturbation state: (candidates, candidate array,
        # base scores).  Perturbed variants of a position share it, so
        # re-anchoring after a correction costs one noise draw + softmax,
        # not a full rebuild.  LRU-bounded: on the vectorised path entries
        # are whole blocks keyed by block start; on the scalar path single
        # positions keyed by position (overflow positions past the EOS
        # region use ("ovf", position) keys on either path).
        if self.block_size > 1:
            self._base: LRUCache = LRUCache(maxsize=BASE_CACHE_BLOCKS)
        else:
            self._base = LRUCache(maxsize=BASE_CACHE_POSITIONS)
        self._greedy: list[int] | None = None
        # Per-oracle scalars of the grouped block pass (identical floats to
        # the expressions in _compute_base, precomputed once).
        self._effective_capacity = self.capacity**self.params.capacity_power
        self._own_noise = self.params.model_noise(self.capacity)
        self._drop_scale = max(1.1 - self.capacity, 0.0)
        # Precomputed stable_hash payload prefixes for the per-position
        # seeds (bit-identical to hashing the full argument lists).
        useed = self.utterance.seed
        self._h_shared = hash_prefix(useed, "shared-noise")
        self._h_own = hash_prefix(self.model_seed, useed, "model-noise")
        self._h_drop = hash_prefix(self.model_seed, useed, "rank-drop")
        self._h_perturb = hash_prefix(self.model_seed, useed, "perturb")
        self._h_confusions = hash_prefix(useed, "confusions")
        self._h_distractors = hash_prefix(useed, "distractors")

    # -- public API ----------------------------------------------------------
    @property
    def max_positions(self) -> int:
        """Positions 0..len(tokens)-1 are words; len(tokens) is EOS."""
        return self.utterance.num_tokens + 1

    def step(
        self, position: int, perturb_level: int = 0, context_key: int = 0
    ) -> OracleStep:
        """Next-token distribution at ``position``."""
        if position < 0:
            raise ValueError(f"negative position {position}")
        if perturb_level == 0:
            context_key = 0
        key = (position, perturb_level, context_key)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute_step(position, perturb_level, context_key)
            self._cache[key] = cached
        return cached

    def greedy_token(self, position: int) -> int:
        return self.step(position).token

    def greedy_stream(self) -> list[int]:
        """The model's anchored greedy transcript (EOS-terminated)."""
        if self._greedy is None:
            self._greedy = [self.step(pos).token for pos in range(self.max_positions)]
        return list(self._greedy)

    # -- emission process ------------------------------------------------------
    def _candidate_tokens(self, position: int) -> list[int]:
        """Candidate token ids at ``position`` (shared across models)."""
        p = self.params
        cache = _candidate_cache(self.vocab)
        key = (
            self.utterance.content_key,
            position,
            len(p.confusion_gains),
            p.distractor_count,
        )
        cached = cache.get(key)
        if cached is None:
            cached = self._build_candidates(position)
            cache.put(key, cached)
        return cached

    def _build_candidates(self, position: int, rng=None, drng=None) -> list[int]:
        """Candidate set at ``position``; ``rng``/``drng`` inject pre-built
        confusion/distractor generators (the batched prewarm path) and must
        be seeded exactly as the lazy constructions below."""
        p = self.params
        utt_seed = self.utterance.seed
        if position >= self.utterance.num_tokens:
            # EOS region: EOS plus a couple of distractors.
            distractors = self._distractors(
                position, 2, exclude=(self.vocab.eos_id,), rng=drng
            )
            return [self.vocab.eos_id, *distractors]
        ref = self.utterance.tokens[position]
        pool = self.vocab.confusion_pool(ref)
        confusions: list[int] = []
        if pool:
            if rng is None:
                rng = _fast_rng(stable_hash_ints(self._h_confusions, position))
            # tolist() up front: indexing python ints beats boxing one
            # np.int64 per pool element on this hot path.
            order = rng.permutation(len(pool)).tolist()
            for idx in order:
                candidate = pool[idx]
                if candidate != ref and candidate not in confusions:
                    confusions.append(candidate)
                if len(confusions) == len(p.confusion_gains):
                    break
        exclude = (ref, *confusions)
        distractors = self._distractors(
            position, p.distractor_count, exclude, rng=drng
        )
        return [ref, *confusions, *distractors]

    def _distractors(
        self, position: int, count: int, exclude: tuple[int, ...], rng=None
    ) -> list[int]:
        regular = self.vocab.regular_ids()
        if rng is None:
            rng = _fast_rng(stable_hash_ints(self._h_distractors, position))
        picked: list[int] = []
        excluded = set(exclude)
        pool_size = len(regular)
        # Batched draws are stream-identical to repeated scalar draws from
        # the same generator, so over-drawing a block and consuming it in
        # order picks exactly the tokens the one-at-a-time loop would.
        while len(picked) < count:
            for index in rng.integers(0, pool_size, size=count + 4).tolist():
                candidate = regular[index]
                if candidate not in excluded:
                    picked.append(candidate)
                    excluded.add(candidate)
                    if len(picked) == count:
                        break
        return picked

    def step_many(
        self, queries: "list[tuple[int, int, int]]"
    ) -> list[OracleStep]:
        """Batched :meth:`step` over ``(position, perturb_level, context_key)``
        triples.

        On the vectorised path this materialises every touched base block
        (one grouped numpy pass per block, anchored distributions included)
        and then scores all remaining cache misses — perturbed variants and
        positions past the EOS region — in one grouped softmax/lexsort pass
        (:meth:`_compute_steps_batch`).  Results are bit-identical to
        calling :meth:`step` per query, in order.  ``block_size <= 1``
        falls back to the scalar reference loop.
        """
        if self.block_size <= 1 or len(queries) == 1:
            # Scalar reference path, and the common single-miss call from a
            # mostly-cached frontier: per-query step() is cheaper than the
            # batch setup (blocks still materialise lazily via _base_for).
            return [
                self.step(position, level, ctx) for position, level, ctx in queries
            ]
        cache = self._cache
        block_size = self.block_size
        ceiling = self.max_positions
        keys: list[tuple[int, int, int]] = []
        for position, level, ctx in queries:
            if position < 0:
                raise ValueError(f"negative position {position}")
            keys.append((position, 0, 0) if level == 0 else (position, level, ctx))
        touched = {
            key[0] - key[0] % block_size for key in keys if key[0] < ceiling
        }
        for start in sorted(touched):
            self._block_for(start)
        misses = [key for key in dict.fromkeys(keys) if key not in cache]
        if len(misses) > 1:
            self._compute_steps_batch(misses)
        elif misses:
            key = misses[0]
            cache[key] = self._compute_step(*key)
        return [cache[key] for key in keys]

    def _compute_steps_batch(self, keys: "list[tuple[int, int, int]]") -> None:
        """Score several missing step queries in one grouped numpy pass.

        Each row's scores are produced by the exact scalar arithmetic of
        :meth:`_compute_step` — per-query RNG streams, same operand order —
        and only the softmax, the lexsort and the top-k extraction are
        batched across rows of equal candidate count (both are row-wise
        independent, so every row keeps the scalar reduction tree).
        Results land in the step cache.
        """
        p = self.params
        window = max(p.perturb_window, 1)
        perturb_noise = p.perturb_noise
        rows: list[tuple[tuple[int, int, int], list[int], np.ndarray, np.ndarray]]
        rows = []
        for key in keys:
            position, level, ctx = key
            candidates, cand_arr, scores = self._base_for(position)
            if level > 0:
                level_frac = level / window
                # Model-specific seed: these draws are never shared across
                # models, so skip the cross-model memo and draw directly.
                perturb = perturb_noise * level_frac * _fast_rng(
                    stable_hash_ints(self._h_perturb, position, level, ctx)
                ).standard_normal(len(candidates))
                scores = scores + perturb
            rows.append((key, candidates, cand_arr, scores))
        groups: dict[int, list] = {}
        for row in rows:
            groups.setdefault(len(row[1]), []).append(row)
        cache = self._cache
        topk_n = p.topk
        for group in groups.values():
            scores2 = np.stack([scores for _k, _c, _a, scores in group])
            cand2 = np.stack([cand_arr for _k, _c, cand_arr, _s in group])
            prob2 = softmax_block(scores2, temperature=p.temperature)
            order2 = np.lexsort((cand2, -prob2), axis=-1)
            for row_index, (key, candidates, _arr, _scores) in enumerate(group):
                probs = prob2[row_index].tolist()
                top = order2[row_index, :topk_n].tolist()
                topk = tuple((candidates[i], probs[i]) for i in top)
                cache[key] = OracleStep(
                    position=key[0],
                    token=topk[0][0],
                    top_prob=topk[0][1],
                    topk=topk,
                )

    def _base_for(self, position: int) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Base state for one position, via the block or scalar cache."""
        block_size = self.block_size
        if block_size > 1 and position < self.max_positions:
            start = position - position % block_size
            return self._block_for(start)[position - start]
        key = ("ovf", position) if block_size > 1 else position
        base = self._base.get(key)
        if base is None:
            base = self._compute_base(position)
            self._base.put(key, base)
        return base

    def _block_for(self, start: int) -> list[tuple[list[int], np.ndarray, np.ndarray]]:
        block = self._base.get(start)
        if block is None:
            block = self._compute_base_block(start)
            self._base.put(start, block)
        return block

    def _compute_step(
        self, position: int, perturb_level: int, context_key: int
    ) -> OracleStep:
        p = self.params
        candidates, cand_arr, scores = self._base_for(position)
        n = len(candidates)

        if perturb_level > 0:
            level_frac = perturb_level / max(p.perturb_window, 1)
            # Model-specific seed (see _compute_steps_batch): no memo.
            perturb = p.perturb_noise * level_frac * _fast_rng(
                stable_hash_ints(self._h_perturb, position, perturb_level, context_key)
            ).standard_normal(n)
            scores = scores + perturb

        # Passing the array through is bit-identical to scores.tolist():
        # tolist() round-trips the exact same float64 values.
        prob_arr = softmax_array(scores, temperature=p.temperature)
        probs = prob_arr.tolist()
        # lexsort (last key primary): descending prob, candidate id as the
        # tie-break — the same total order as sorting (-prob, candidate).
        order = np.lexsort((cand_arr, -prob_arr))
        top = order[: p.topk]
        topk = tuple((candidates[i], probs[i]) for i in top)
        return OracleStep(
            position=position,
            token=topk[0][0],
            top_prob=topk[0][1],
            topk=topk,
        )

    def _compute_base(self, position: int) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Candidates (list + array) and pre-perturbation scores."""
        p = self.params
        utt = self.utterance
        candidates = self._candidate_tokens(position)
        n = len(candidates)

        if position >= utt.num_tokens:
            gains = np.array([p.eos_gain] + [p.distractor_score] * (n - 1))
            difficulty = 0.05
        else:
            difficulty = utt.difficulty[position]
            gains = np.empty(n)
            effective_capacity = self.capacity**p.capacity_power
            gains[0] = p.ref_gain * (1.0 - difficulty) * effective_capacity
            n_conf = min(len(p.confusion_gains), n - 1 - p.distractor_count)
            n_conf = max(n_conf, 0)
            for idx in range(n_conf):
                gains[1 + idx] = p.confusion_gains[idx] * difficulty
            # Distractors grow competitive with local difficulty: at hard
            # positions many tokens plausibly fit the audio, flattening the
            # distribution (low normalised top logit) like a real ASR
            # decoder's subword lattice does.  The cap keeps the crowd below
            # the real contenders so the reference stays near rank 2 even at
            # severe positions (Fig. 13b).
            distractor_gain = min(
                p.distractor_score + p.distractor_slope * difficulty,
                p.distractor_cap,
            )
            gains[1 + n_conf:] = distractor_gain

        scale = p.noise_scale(difficulty)
        shared = p.shared_noise * scale * _normals(
            stable_hash_ints(self._h_shared, position), n
        )
        own = p.model_noise(self.capacity) * scale * _fast_rng(
            stable_hash_ints(self._h_own, position)
        ).standard_normal(n)
        noise = shared + own
        if position < utt.num_tokens:
            # Distractors crowd the distribution (they carry probability
            # mass at hard positions) but must rarely outrank the real
            # contenders: they move with a single damped *crowd level* per
            # position instead of independent draws, so they depress the
            # normalised top logit without burying the reference token —
            # preserving the failure-rank structure of Fig. 13b.
            n_conf = min(len(p.confusion_gains), n - 1 - p.distractor_count)
            first_distractor = 1 + max(n_conf, 0)
            # noise[fd:] holds exactly shared[fd:] + own[fd:] at this point.
            crowd_level = p.distractor_noise_factor * (
                noise[first_distractor:]
            ).mean() if first_distractor < n else 0.0
            noise[first_distractor:] = crowd_level
        scores = gains + noise

        # Occasional "attention drop" on the reference evidence: when the
        # model errs, the reference sometimes falls below rank 2 (Fig. 13b's
        # rank >= 3 tail).  Larger models are less prone to it.
        drop_draw = _fast_rng(stable_hash_ints(self._h_drop, position)).uniform()
        drop_prob = p.rank_drop_prob * difficulty * max(1.1 - self.capacity, 0.0)
        if position < utt.num_tokens and drop_draw < drop_prob:
            scores[0] -= p.rank_drop_penalty

        return candidates, np.asarray(candidates), scores

    def _compute_base_block(
        self, start: int
    ) -> list[tuple[list[int], np.ndarray, np.ndarray]]:
        """Base state for positions ``[start, stop)`` in grouped numpy passes."""
        return _compute_base_blocks([(self, start)])[0]


def _prewarm_candidates(requests: "list[tuple[EmissionOracle, int]]") -> None:
    """Materialise every uncached candidate set touched by ``requests``,
    constructing all confusion/distractor generators in batched vectorised
    passes.  Candidate sets are utterance-level (model-independent), so
    duplicate keys across a pairing's oracles build once."""
    jobs: dict[tuple, tuple] = {}
    for oracle, start in requests:
        stop = min(start + oracle.block_size, oracle.max_positions)
        cache = _candidate_cache(oracle.vocab)
        p = oracle.params
        utt = oracle.utterance
        num_tokens = utt.num_tokens
        for pos in range(start, stop):
            key = (utt.content_key, pos, len(p.confusion_gains), p.distractor_count)
            if key in jobs or key in cache:
                continue
            need_conf = pos < num_tokens and bool(
                oracle.vocab.confusion_pool(utt.tokens[pos])
            )
            jobs[key] = (oracle, pos, cache, need_conf)
    if not jobs:
        return
    job_list = list(jobs.items())
    conf_jobs = [job for job in job_list if job[1][3]]
    conf_rngs = iter(
        _batched_rngs(
            [
                stable_hash_ints(oracle._h_confusions, pos)
                for _key, (oracle, pos, _cache, _nc) in conf_jobs
            ]
        )
    )
    conf_by_key = {
        key: rng for (key, _job), rng in zip(conf_jobs, conf_rngs, strict=True)
    }
    dist_rngs = _batched_rngs(
        [
            stable_hash_ints(oracle._h_distractors, pos)
            for _key, (oracle, pos, _cache, _nc) in job_list
        ]
    )
    for (key, (oracle, pos, cache, _need_conf)), drng in zip(
        job_list, dist_rngs, strict=True
    ):
        cache.put(
            key, oracle._build_candidates(pos, rng=conf_by_key.get(key), drng=drng)
        )


def _compute_base_blocks(
    requests: "list[tuple[EmissionOracle, int]]",
) -> list[list[tuple[list[int], np.ndarray, np.ndarray]]]:
    """Base state for several ``(oracle, block_start)`` requests in grouped
    numpy passes — one stacked array pass per (params, candidate count,
    word/EOS region) group, across *all* requested oracles at once.

    Bit-identity contract with :meth:`EmissionOracle._compute_base`: rows
    are grouped so every row keeps the exact shape — and therefore the
    exact numpy reduction tree — of its scalar counterpart (every op along
    the stacked axis is row-wise independent); per-position RNG streams are
    drawn from the same seeds; all arithmetic keeps the scalar path's
    operand order (per-oracle scalars become per-row factors, which is the
    same elementwise float64 product).  Only result-irrelevant work is
    skipped (e.g. the attention-drop draw at EOS positions, which the
    scalar path draws but never applies).

    Returns one base-block list per request, in request order.  Anchored
    next-token distributions are eagerly written to each oracle's step
    cache as a side effect.
    """
    _prewarm_candidates(requests)
    row_oracle: list[EmissionOracle] = []
    row_pos: list[int] = []
    row_cands: list[list[int]] = []
    row_out: list[tuple[list, int]] = []
    results: list[list] = []
    groups: dict[tuple, list[int]] = {}
    for oracle, start in requests:
        stop = min(start + oracle.block_size, oracle.max_positions)
        bases: list = [None] * (stop - start)
        results.append(bases)
        num_tokens = oracle.utterance.num_tokens
        params = oracle.params
        for offset, pos in enumerate(range(start, stop)):
            cands = oracle._candidate_tokens(pos)
            index = len(row_oracle)
            row_oracle.append(oracle)
            row_pos.append(pos)
            row_cands.append(cands)
            row_out.append((bases, offset))
            key = (params, len(cands), pos >= num_tokens)
            groups.setdefault(key, []).append(index)

    for (p, n, is_eos), indices in groups.items():
        rows = len(indices)
        # Shared-noise draws recur across models (the memo hits for the
        # second model of a pairing); misses expand their PCG64 states in
        # one vectorised pass.
        shared_rows: list = [None] * rows
        miss_rows: list[int] = []
        miss_keys: list[tuple[int, int]] = []
        for row, i in enumerate(indices):
            key = (stable_hash_ints(row_oracle[i]._h_shared, row_pos[i]), n)
            draws = _NORMALS_CACHE.get(key)
            if draws is None:
                miss_rows.append(row)
                miss_keys.append(key)
            else:
                shared_rows[row] = draws
        for row, key, rng in zip(
            miss_rows,
            miss_keys,
            _batched_rngs([key[0] for key in miss_keys]),
            strict=True,
        ):
            draws = rng.standard_normal(n)
            draws.setflags(write=False)
            _NORMALS_CACHE.put(key, draws)
            shared_rows[row] = draws
        shared2 = np.stack(shared_rows)
        # Own-noise seeds are model-specific (never shared across models),
        # so the draws bypass the cross-model memo.
        own2 = np.stack(
            [
                rng.standard_normal(n)
                for rng in _batched_rngs(
                    [
                        stable_hash_ints(row_oracle[i]._h_own, row_pos[i])
                        for i in indices
                    ]
                )
            ]
        )
        if is_eos:
            scale = p.noise_scale(0.05)
            gains2 = np.empty((rows, n))
            gains2[:, 0] = p.eos_gain
            gains2[:, 1:] = p.distractor_score
            own_scale = np.array([row_oracle[i]._own_noise for i in indices]) * scale
            noise2 = p.shared_noise * scale * shared2 + own_scale[:, None] * own2
            scores2 = gains2 + noise2
        else:
            diff = np.array(
                [row_oracle[i].utterance.difficulty[row_pos[i]] for i in indices]
            )
            effcap = np.array([row_oracle[i]._effective_capacity for i in indices])
            own_arr = np.array([row_oracle[i]._own_noise for i in indices])
            drop_arr = np.array([row_oracle[i]._drop_scale for i in indices])
            gains2 = np.empty((rows, n))
            gains2[:, 0] = p.ref_gain * (1.0 - diff) * effcap
            n_conf = min(len(p.confusion_gains), n - 1 - p.distractor_count)
            n_conf = max(n_conf, 0)
            for idx in range(n_conf):
                gains2[:, 1 + idx] = p.confusion_gains[idx] * diff
            gains2[:, 1 + n_conf:] = np.minimum(
                p.distractor_score + p.distractor_slope * diff,
                p.distractor_cap,
            )[:, None]
            scale = p.noise_scale(diff)
            noise2 = (p.shared_noise * scale)[:, None] * shared2
            noise2 += (own_arr * scale)[:, None] * own2
            first_distractor = 1 + n_conf
            if first_distractor < n:
                crowd = p.distractor_noise_factor * noise2[
                    :, first_distractor:
                ].mean(axis=1)
                noise2[:, first_distractor:] = crowd[:, None]
            scores2 = gains2 + noise2
            # tolist(): the row loop compares python floats, and the
            # float64 round-trip is exact (same comparison the scalar
            # path makes).
            drop_probs = (p.rank_drop_prob * diff * drop_arr).tolist()
            drop_rows = [
                (row, i) for row, i in enumerate(indices) if drop_probs[row] > 0.0
            ]
            drop_rngs = _batched_rngs(
                [
                    stable_hash_ints(row_oracle[i]._h_drop, row_pos[i])
                    for _row, i in drop_rows
                ]
            )
            for (row, _i), rng in zip(drop_rows, drop_rngs, strict=True):
                if rng.uniform() < drop_probs[row]:
                    scores2[row, 0] -= p.rank_drop_penalty

        # Anchored next-token distributions for the whole group in one
        # softmax + lexsort pass (axis=-1 keeps rows independent and
        # bit-identical to the per-row scalar calls).  cand2 is built
        # once and its rows double as the per-position candidate arrays
        # (read-only downstream, so shared views are safe).
        prob2 = softmax_block(scores2, temperature=p.temperature)
        cand2 = np.array([row_cands[i] for i in indices])
        order2 = np.lexsort((cand2, -prob2), axis=-1)
        topk_n = p.topk
        for row, i in enumerate(indices):
            candidates = row_cands[i]
            bases, offset = row_out[i]
            bases[offset] = (candidates, cand2[row], scores2[row])
            pos = row_pos[i]
            cache = row_oracle[i]._cache
            key = (pos, 0, 0)
            if key not in cache:
                probs = prob2[row].tolist()
                top = order2[row, :topk_n].tolist()
                topk = tuple((candidates[c], probs[c]) for c in top)
                cache[key] = OracleStep(
                    position=pos,
                    token=topk[0][0],
                    top_prob=topk[0][1],
                    topk=topk,
                )
    return results


def prewarm_oracles(oracles: "list[EmissionOracle]") -> None:
    """Materialise every uncached base block of ``oracles`` in one grouped
    cross-oracle array pass (the corpus-grid form of the vectorised scoring
    path; see :func:`_compute_base_blocks` for the bit-identity contract).

    Scalar-path oracles (``block_size <= 1``) are left untouched — the
    scalar path is the per-position reference and computes lazily.
    """
    requests: list[tuple[EmissionOracle, int]] = []
    seen: set[tuple[int, int]] = set()
    for oracle in oracles:
        block_size = oracle.block_size
        if block_size <= 1:
            continue
        for start in range(0, oracle.max_positions, block_size):
            if (id(oracle), start) in seen:
                continue
            seen.add((id(oracle), start))
            if oracle._base.get(start) is None:
                requests.append((oracle, start))
    if not requests:
        return
    for (oracle, start), block in zip(
        requests, _compute_base_blocks(requests), strict=True
    ):
        oracle._base.put(start, block)


@dataclass
class OracleFactory:
    """Builds per-utterance oracles for a model, with a bounded LRU cache.

    The cache key is :attr:`Utterance.content_key` — the same key the model
    layer uses — so an oracle is never double-built for the same audio by
    two caching layers, and same-id utterances from differently-configured
    corpora don't collide.  ``cache_size <= 0`` disables the bound.
    """

    model_name: str
    model_seed: int
    capacity: float
    vocab: Vocabulary
    params: OracleParams = field(default_factory=OracleParams)
    cache_size: int = 64
    block_size: int = BASE_BLOCK_SIZE
    _cache: LRUCache = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._cache is None:
            self._cache = LRUCache(self.cache_size)

    def for_utterance(self, utterance: Utterance) -> EmissionOracle:
        key = utterance.content_key
        oracle = self._cache.get(key)
        if oracle is None:
            oracle = EmissionOracle(
                self.model_name,
                self.model_seed,
                self.capacity,
                utterance,
                self.vocab,
                self.params,
                block_size=self.block_size,
            )
            self._cache.put(key, oracle)
        return oracle

    def cached_count(self) -> int:
        return len(self._cache)
