"""Simulated *text* language models — the non-audio-conditioned comparator.

Fig. 5b of the paper contrasts speculative acceptance in ASR against plain
text generation.  The crucial structural difference: a text LM's next-token
distribution depends on the *text prefix alone*.  There is no audio anchor,
so the candidate set itself is a function of the recent context — change one
token and the continuation is redrawn.  Draft and target text models still
share "semantics" (candidate sets and shared noise derive from a pair seed),
which gives realistic top-1 agreement, but there is no re-anchoring
mechanism: acceptance decays geometrically and unaccepted draft suffixes are
useless, unlike ASR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.text_tasks import TextPrompt
from repro.models.latency import (
    KIND_DECODE,
    KIND_DRAFT,
    LatencyProfile,
    SimClock,
    forward_ms,
    prefill_ms,
)
from repro.models.simulated import StepResult
from repro.models.vocab import Vocabulary
from repro.utils.hashing import stable_hash
from repro.utils.mathutil import softmax
from repro.utils.rng import fast_generator as _fast_rng

Prefix = tuple[int, ...]

#: How many trailing tokens of context determine the next-token distribution.
CONTEXT_WINDOW = 4


@dataclass(frozen=True)
class TextLMParams:
    """Emission constants for the text-task simulation.

    ``difficulty`` plays the role the acoustic profile plays in ASR but is
    constant — text has no per-position acoustic anchor.  ``shared_noise`` is
    lower than in ASR: text draft/target correlation comes only from shared
    training data, not from conditioning on the same audio.
    """

    difficulty: float = 0.35
    ref_gain: float = 3.2
    confusion_gains: tuple[float, ...] = (2.0, 1.7, 1.5)
    distractor_count: int = 4
    distractor_score: float = -0.2
    shared_noise: float = 0.35
    model_noise_base: float = 0.40
    model_noise_capacity: float = 0.45
    temperature: float = 0.42
    topk: int = 8

    def model_noise(self, capacity: float) -> float:
        return self.model_noise_base + self.model_noise_capacity * (1.0 - capacity)


class SimulatedTextLM:
    """A text LM over the shared vocabulary, identified by a pair seed.

    Draft and target must be built with the *same* ``pair_seed`` so they
    model the same underlying text distribution.
    """

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: LatencyProfile,
        vocab: Vocabulary,
        pair_seed: int = 0,
        params: TextLMParams | None = None,
    ) -> None:
        if not 0.0 < capacity <= 1.0:
            raise ValueError(f"capacity must be in (0, 1], got {capacity}")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.vocab = vocab
        self.pair_seed = pair_seed
        self.model_seed = stable_hash("textlm", name)
        self.params = params or TextLMParams()

    def session(self, prompt: TextPrompt, clock: SimClock) -> "TextSession":
        return TextSession(self, prompt, clock)


class _TextNode:
    """One explored prefix of a text session: context window + cached step.

    The next-token distribution is a pure function of ``(window, depth)``,
    so each node carries exactly those plus child links — no full prefix
    tuples anywhere, which is what makes cursor advancement O(1) instead of
    the old per-call full-tuple hash.
    """

    __slots__ = ("token", "parent", "depth", "window", "children", "step")

    def __init__(
        self,
        token: int | None,
        parent: "_TextNode | None",
        depth: int,
        window: Prefix,
    ) -> None:
        self.token = token
        self.parent = parent
        self.depth = depth
        self.window = window  # trailing CONTEXT_WINDOW ids incl. the prompt
        self.children: dict[int, _TextNode] = {}
        self.step: StepResult | None = None

    def prefix(self) -> Prefix:
        tokens: list[int] = []
        node: _TextNode | None = self
        while node is not None and node.token is not None:
            tokens.append(node.token)
            node = node.parent
        tokens.reverse()
        return tuple(tokens)


class TextCursor:
    """O(1) handle onto one prefix of a :class:`TextSession` trie.

    Mirrors :class:`repro.models.simulated.SessionCursor` (``advance`` /
    ``extend`` / ``rollback`` / ``len`` / iteration), so decoders written
    against cursors get the native fast path on text sessions too.
    """

    __slots__ = ("session", "node")

    def __init__(self, session: "TextSession", node: _TextNode) -> None:
        self.session = session
        self.node = node

    def advance(self, token: int) -> "TextCursor":
        return TextCursor(self.session, self.session._child(self.node, token))

    def extend(self, tokens: Sequence[int]) -> "TextCursor":
        node = self.node
        child = self.session._child
        for token in tokens:
            node = child(node, token)
        return TextCursor(self.session, node)

    def rollback(self) -> None:
        self.session.rollback(self.node.depth)

    @property
    def tokens(self) -> Prefix:
        return self.node.prefix()

    def __len__(self) -> int:
        return self.node.depth

    def __iter__(self) -> Iterator[int]:
        return iter(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextCursor(depth={self.node.depth})"


class TextSession:
    """Decode session over one text prompt (latency-accounted)."""

    def __init__(
        self, model: SimulatedTextLM, prompt: TextPrompt, clock: SimClock
    ) -> None:
        self.model = model
        self.prompt = prompt
        self.clock = clock
        self._prompt_ids = tuple(model.vocab.encode_words(prompt.prompt_words))
        self._root = _TextNode(None, None, 0, self._prompt_ids[-CONTEXT_WINDOW:])
        self._prefilled = False

    # -- lifecycle ------------------------------------------------------------
    def prefill(self) -> None:
        if self._prefilled:
            raise RuntimeError("session already prefilled")
        self._prefilled = True
        ms = prefill_ms(self.model.latency, len(self._prompt_ids))
        self.clock.record(self.model.name, "prefill", len(self._prompt_ids), 0, ms)

    @property
    def prompt_tokens(self) -> int:
        return len(self._prompt_ids)

    # -- prefix trie -----------------------------------------------------------
    def cursor(self, prefix: Sequence[int] = ()) -> TextCursor:
        """A cursor at ``prefix`` (walks the trie once; root is free)."""
        return TextCursor(self, self._resolve(prefix))

    def _child(self, node: _TextNode, token: int) -> _TextNode:
        child = node.children.get(token)
        if child is None:
            child = _TextNode(
                token,
                node,
                node.depth + 1,
                (node.window + (token,))[-CONTEXT_WINDOW:],
            )
            node.children[token] = child
        return child

    def _resolve(self, prefix) -> _TextNode:
        if isinstance(prefix, TextCursor):
            if prefix.session is self:
                return prefix.node
            prefix = prefix.tokens  # foreign cursor: fall back to its tokens
        node = self._root
        child = self._child
        for token in prefix:
            node = child(node, token)
        return node

    # -- emission ------------------------------------------------------------
    def _node_step(self, node: _TextNode) -> StepResult:
        step = node.step
        if step is None:
            ctx = stable_hash("text-ctx", node.window, node.depth)
            step = self._compute(node.depth, ctx)
            node.step = step
        return step

    def peek(self, prefix) -> StepResult:
        return self._node_step(self._resolve(prefix))

    def _compute(self, position: int, ctx: int) -> StepResult:
        p = self.model.params
        vocab = self.model.vocab
        pair = self.model.pair_seed

        if position >= self.prompt.max_new_tokens:
            return StepResult(
                token=vocab.eos_id,
                top_prob=1.0,
                topk=((vocab.eos_id, 1.0),),
                position=position,
                perturb_level=0,
            )

        regular = vocab.regular_ids()
        pick = _fast_rng(stable_hash(pair, "text-ref", ctx))
        ref = regular[int(pick.integers(0, len(regular)))]
        pool = vocab.confusion_pool(ref)
        confusions = [tok for tok in pool[: len(p.confusion_gains)] if tok != ref]
        excluded = {ref, *confusions}
        distractors: list[int] = []
        draw = _fast_rng(stable_hash(pair, "text-distract", ctx))
        while len(distractors) < p.distractor_count:
            cand = regular[int(draw.integers(0, len(regular)))]
            if cand not in excluded:
                distractors.append(cand)
                excluded.add(cand)
        candidates = [ref, *confusions, *distractors]
        n = len(candidates)

        gains = np.empty(n)
        gains[0] = p.ref_gain * (1.0 - p.difficulty) * self.model.capacity
        for idx in range(len(confusions)):
            gains[1 + idx] = p.confusion_gains[idx] * p.difficulty
        for idx in range(1 + len(confusions), n):
            gains[idx] = p.distractor_score

        shared = p.shared_noise * _fast_rng(
            stable_hash(pair, "text-shared", ctx)
        ).standard_normal(n)
        own = p.model_noise(self.model.capacity) * _fast_rng(
            stable_hash(self.model.model_seed, "text-own", ctx)
        ).standard_normal(n)
        scores = gains + shared + own
        probs = softmax(scores.tolist(), temperature=p.temperature)
        order = sorted(range(n), key=lambda i: (-probs[i], candidates[i]))
        topk = tuple((candidates[i], probs[i]) for i in order[: p.topk])
        return StepResult(
            token=topk[0][0],
            top_prob=topk[0][1],
            topk=topk,
            position=position,
            perturb_level=0,
        )

    # -- forward passes (latency-accounted) --------------------------------------
    def step(self, prefix, kind: str = KIND_DECODE) -> StepResult:
        self._require_prefill()
        node = self._resolve(prefix)
        cached = len(self._prompt_ids) + node.depth
        ms = forward_ms(self.model.latency, 1, cached)
        self.clock.record(self.model.name, kind, 1, cached, ms)
        return self._node_step(node)

    def step_frontier(self, prefixes, kind: str = KIND_DRAFT) -> list[StepResult]:
        self._require_prefill()
        nodes = [self._resolve(p) for p in prefixes]
        if not nodes:
            raise ValueError("step_frontier needs at least one prefix")
        cached = len(self._prompt_ids) + max(node.depth for node in nodes)
        ms = forward_ms(self.model.latency, len(nodes), cached)
        self.clock.record(self.model.name, kind, len(nodes), cached, ms)
        return [self._node_step(node) for node in nodes]

    def verify_eval(
        self, prefixes, billed_tokens: int | None = None
    ) -> list[StepResult]:
        self._require_prefill()
        nodes = [self._resolve(p) for p in prefixes]
        if not nodes:
            raise ValueError("verify_eval needs at least one prefix")
        billed = billed_tokens if billed_tokens is not None else len(nodes)
        cached = len(self._prompt_ids) + min(node.depth for node in nodes)
        ms = forward_ms(self.model.latency, billed, cached)
        self.clock.record(self.model.name, "verify", billed, cached, ms)
        return [self._node_step(node) for node in nodes]

    def rollback(self, kept_prefix_len: int) -> None:
        """Text sessions do not track KV explicitly; rollback is a no-op."""

    def is_eos(self, token: int) -> bool:
        return token == self.model.vocab.eos_id

    def max_decode_positions(self) -> int:
        return self.prompt.max_new_tokens + 1

    def _require_prefill(self) -> None:
        if not self._prefilled:
            raise RuntimeError("call prefill() before decoding")
