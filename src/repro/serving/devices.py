"""Simulated accelerators: per-device busy timelines and batch cost model.

A :class:`Device` is one simulated accelerator.  It owns a busy timeline
(``free_at``) and occupancy counters, and prices a micro-batch of decode
phases with the grouped-overlap model:

* Phases that run the **same model** in the same batch share most of their
  weight traffic.  Within one ``(model, phase-kind)`` group of per-phase
  costs ``c_1..c_B`` the group busy time is

  ``busy_g = max(c) + (1 - overlap) * (sum(c) - max(c))``

  — ``overlap = 1`` is perfect batching (co-scheduled phases hide entirely
  under the critical path), ``overlap = 0`` serialises every phase.

* Phases that run **different models** cannot share a forward pass at all
  (a draft-model kernel and a target-model kernel are separate launches),
  so group busy times add serially:

  ``busy = sum over groups of busy_g``

This is what makes draft/target disaggregation a real lever in the
simulation: a colocated device whose batch mixes draft and verify phases
pays the cross-model serialisation *and* the residency-interference
inflation below, while a disaggregated pool device only ever sees one
model and batches at full ``overlap``.  The ``merged`` router additionally
coalesces the verify group of a batch into a single target pass
(``overlap = 1`` for that group — one weight read for all co-scheduled
verifications).

**Residency interference.** An accelerator that keeps two models resident
alternates between their weight streams and activation caches; for a
memory-bound decoder that churn inflates every mixed iteration (the
interference argument disaggregated serving systems à la
DistServe/Splitwise are built on).  Mixed-model batches are billed
``busy * (1 + MODEL_SWITCH_COST * (distinct models - 1))``; single-model
batches — everything a dedicated pool device ever runs — are unaffected.
"""

from __future__ import annotations

from typing import Sequence

from repro.decoding.base import PHASE_VERIFY, PhaseOutcome

#: Fractional busy-time inflation per *extra* resident model a micro-batch
#: touches.  Calibrated to the memory-bound regime: re-streaming the other
#: model's weights and re-warming its caches costs a sizeable slice of an
#: iteration, which is exactly the overhead draft/target disaggregation
#: removes.
MODEL_SWITCH_COST = 0.15


class Device:
    """One simulated accelerator with its own busy timeline."""

    __slots__ = (
        "device_id",
        "index",
        "overlap",
        "switch_cost",
        "free_at",
        "busy_ms",
        "batches",
        "phases",
    )

    def __init__(
        self, index: int, overlap: float, switch_cost: float = MODEL_SWITCH_COST
    ) -> None:
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {overlap}")
        if switch_cost < 0:
            raise ValueError(f"switch_cost must be >= 0, got {switch_cost}")
        self.index = index
        self.device_id = f"dev{index}"
        self.overlap = overlap
        self.switch_cost = switch_cost
        self.free_at = 0.0  # sim time the device next goes idle
        self.busy_ms = 0.0  # total occupancy
        self.batches = 0  # device iterations executed
        self.phases = 0  # phases executed (sum of batch sizes)

    def batch_busy_ms(
        self, phases: Sequence[PhaseOutcome], merge_verify: bool = False
    ) -> float:
        """Device time one micro-batch of phases occupies.

        Groups by ``(model, phase-kind)``; the overlap discount applies
        within a group, groups serialise (different models cannot share a
        forward pass), and batches touching several models pay the
        residency-interference inflation.  ``merge_verify`` coalesces each
        verify group into a single batched target pass (overlap 1: busy is
        the critical path).
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for outcome in phases:
            groups.setdefault((outcome.model, outcome.phase), []).append(outcome.ms)
        busy = 0.0
        for (_model, kind), costs in groups.items():
            coalesced = merge_verify and kind == PHASE_VERIFY
            overlap = 1.0 if coalesced else self.overlap
            critical = max(costs)
            busy += critical + (1.0 - overlap) * (sum(costs) - critical)
        models = len({model for model, _kind in groups})
        if models > 1:
            busy *= 1.0 + self.switch_cost * (models - 1)
        return busy

    def execute(
        self,
        start_ms: float,
        phases: Sequence[PhaseOutcome],
        merge_verify: bool = False,
    ) -> float:
        """Run a micro-batch starting no earlier than ``start_ms``.

        Returns the completion time and advances the busy timeline.
        """
        if not phases:
            raise ValueError("cannot execute an empty batch")
        start = max(start_ms, self.free_at)
        busy = self.batch_busy_ms(phases, merge_verify)
        end = start + busy
        self.free_at = end
        self.busy_ms += busy
        self.batches += 1
        self.phases += len(phases)
        return end

    def utilisation(self, sim_end_ms: float) -> float:
        """Busy fraction of this device over the simulated span."""
        if sim_end_ms <= 0:
            return 0.0
        return self.busy_ms / sim_end_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.device_id}, busy={self.busy_ms:.1f}ms)"


def make_devices(
    count: int, overlap: float, switch_cost: float = MODEL_SWITCH_COST
) -> list[Device]:
    """A fresh cluster of ``count`` devices sharing one ``overlap`` factor."""
    if count < 1:
        raise ValueError(f"need at least one device, got {count}")
    return [Device(index, overlap, switch_cost) for index in range(count)]
