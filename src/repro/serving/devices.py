"""Simulated accelerators: per-device busy timelines and batch cost model.

A :class:`Device` is one simulated accelerator.  It owns a busy timeline
(``free_at``) and occupancy counters, and prices a micro-batch of decode
phases with the grouped-overlap model:

* Phases that run the **same model** in the same batch share most of their
  weight traffic.  Within one ``(model, phase-kind)`` group of per-phase
  costs ``c_1..c_B`` the group busy time is

  ``busy_g = max(c) + (1 - overlap) * (sum(c) - max(c))``

  — ``overlap = 1`` is perfect batching (co-scheduled phases hide entirely
  under the critical path), ``overlap = 0`` serialises every phase.

* Phases that run **different models** cannot share a forward pass at all
  (a draft-model kernel and a target-model kernel are separate launches),
  so group busy times add serially:

  ``busy = sum over groups of busy_g``

This is what makes draft/target disaggregation a real lever in the
simulation: a colocated device whose batch mixes draft and verify phases
pays the cross-model serialisation *and* the residency-interference
inflation below, while a disaggregated pool device only ever sees one
model and batches at full ``overlap``.  The ``merged`` router additionally
coalesces the verify group of a batch into a single target pass
(``overlap = 1`` for that group — one weight read for all co-scheduled
verifications).

**Residency interference.** An accelerator that keeps two models resident
alternates between their weight streams and activation caches; for a
memory-bound decoder that churn inflates every mixed iteration (the
interference argument disaggregated serving systems à la
DistServe/Splitwise are built on).  Mixed-model batches are billed
``busy * (1 + MODEL_SWITCH_COST * (distinct models - 1))``; single-model
batches — everything a dedicated pool device ever runs — are unaffected.

**Heterogeneous clusters.** A :class:`DeviceSpec` describes one
accelerator: its relative ``speed`` (phase costs are divided by it — a
``speed=0.5`` part takes twice the simulated time per phase) and optional
per-device ``overlap``/``switch_cost`` overrides.  ``parse_device_specs``
turns the CLI shorthand ``"2x1.0,2x0.5"`` (two full-speed + two half-speed
accelerators) into a spec list, which is what makes pool placement a real
optimisation problem (see :mod:`repro.serving.router`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.decoding.base import PHASE_VERIFY, PhaseOutcome
from repro.serving.faults import HEALTHY_PROFILE, DeviceFaultProfile

#: Fractional busy-time inflation per *extra* resident model a micro-batch
#: touches.  Calibrated to the memory-bound regime: re-streaming the other
#: model's weights and re-warming its caches costs a sizeable slice of an
#: iteration, which is exactly the overhead draft/target disaggregation
#: removes.
MODEL_SWITCH_COST = 0.15


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated accelerator.

    ``speed`` is relative throughput: a phase whose nominal cost is ``c``
    occupies the device for ``c / speed`` ms.  ``overlap`` and
    ``switch_cost`` override the cluster-wide defaults when set (``None``
    inherits them), so a cluster can mix well-batching parts with ones
    whose batching efficiency or residency-interference penalty differs.
    ``memory_blocks`` is the device's KV-cache capacity in blocks (see
    :mod:`repro.serving.memory`); ``None`` inherits the cluster-wide
    default from :class:`~repro.serving.memory.MemorySpec`.
    """

    speed: float = 1.0
    overlap: float | None = None
    switch_cost: float | None = None
    memory_blocks: int | None = None

    def __post_init__(self) -> None:
        if self.memory_blocks is not None and self.memory_blocks < 1:
            raise ValueError(
                f"memory_blocks must be >= 1 when set, got {self.memory_blocks}"
            )
        # NaN compares False against every bound, so an explicit finiteness
        # check is required — a NaN speed would otherwise poison `free_at`
        # and hang the scheduler's event loop.
        if not math.isfinite(self.speed) or self.speed <= 0:
            raise ValueError(f"device speed must be finite and > 0, got {self.speed}")
        if self.overlap is not None and not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if self.switch_cost is not None and (
            not math.isfinite(self.switch_cost) or self.switch_cost < 0
        ):
            raise ValueError(
                f"switch_cost must be finite and >= 0, got {self.switch_cost}"
            )


def parse_device_specs(text: str) -> tuple[DeviceSpec, ...]:
    """Parse the CLI cluster shorthand into a spec list.

    The grammar is comma-separated groups of ``COUNTxSPEED`` (or a bare
    ``SPEED`` for a single device): ``"2x1.0,2x0.5"`` is two full-speed
    plus two half-speed accelerators, ``"1.0,0.25"`` a fast/slow pair.
    A group may append ``@BLOCKS`` to give its devices a KV-memory
    capacity (``"2x1.0@64,2x0.5@32"`` — see :mod:`repro.serving.memory`).
    Order matters — it fixes device indices, which the deterministic
    tie-breaks key on.
    """
    specs: list[DeviceSpec] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            raise ValueError(
                f"empty device group in spec {text!r}; every comma-separated "
                "segment must be COUNTxSPEED (e.g. 2x1.0) or a bare SPEED"
            )
        body, at, blocks_text = item.partition("@")
        blocks: int | None = None
        if at:
            try:
                blocks = int(blocks_text)
            except ValueError:
                raise ValueError(
                    f"bad memory capacity {blocks_text!r} in device group "
                    f"{item!r} of spec {text!r}; @BLOCKS needs an integer "
                    "block count (e.g. 2x1.0@64)"
                ) from None
            if blocks < 1:
                raise ValueError(
                    f"device group {item!r} in spec {text!r} asks for "
                    f"{blocks} memory block(s); @BLOCKS needs a count >= 1"
                )
        count_text, sep, speed_text = body.partition("x")
        if not sep:
            count_text, speed_text = "1", body
        try:
            count = int(count_text)
            speed = float(speed_text)
        except ValueError:
            raise ValueError(
                f"bad device group {item!r} in spec {text!r}; expected "
                "COUNTxSPEED (e.g. 2x1.0) or a bare SPEED"
            ) from None
        if count < 1:
            raise ValueError(
                f"device group {item!r} in spec {text!r} asks for {count} "
                "device(s); each COUNTxSPEED group needs a count >= 1"
            )
        specs.extend(
            DeviceSpec(speed=speed, memory_blocks=blocks) for _ in range(count)
        )
    return tuple(specs)


def format_device_specs(specs: Sequence[DeviceSpec]) -> str:
    """Canonical ``COUNTxSPEED`` rendering of the spec list's *speeds*.

    The parser's inverse for speed/memory specs; per-spec ``overlap``/
    ``switch_cost`` overrides are display-irrelevant here and not encoded.
    Adjacent equal specs group (``"2x1,2x0.5@32"``); non-adjacent runs stay
    separate so device order — which tie-breaks key on — remains visible.
    """
    groups: list[tuple[float, int | None, int]] = []
    for spec in specs:
        key = (spec.speed, spec.memory_blocks)
        if groups and groups[-1][:2] == key:
            groups[-1] = (*key, groups[-1][2] + 1)
        else:
            groups.append((*key, 1))
    return ",".join(
        f"{count}x{speed:g}" + (f"@{blocks}" if blocks is not None else "")
        for speed, blocks, count in groups
    )


class Device:
    """One simulated accelerator with its own busy timeline.

    A :class:`~repro.serving.faults.DeviceFaultProfile` (attached via
    :meth:`set_fault_profile`; the default is healthy) folds injected
    faults into the timeline math: :meth:`available` gates new dispatches
    during crashes and stall windows, :meth:`effective_speed` applies
    straggler slowdown windows (batches are priced at their *start* time's
    effective speed), and :meth:`execute` can abort a batch mid-flight at a
    crash — the device stays busy up to the crash (wasted work, tracked in
    ``wasted_ms``) and the phases never commit.
    """

    __slots__ = (
        "device_id",
        "index",
        "speed",
        "overlap",
        "switch_cost",
        "memory_blocks",
        "free_at",
        "busy_ms",
        "batches",
        "phases",
        "faults",
        "wasted_ms",
        "aborted_batches",
    )

    def __init__(
        self,
        index: int,
        overlap: float,
        switch_cost: float = MODEL_SWITCH_COST,
        speed: float = 1.0,
        memory_blocks: int | None = None,
    ) -> None:
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {overlap}")
        if not math.isfinite(switch_cost) or switch_cost < 0:
            raise ValueError(f"switch_cost must be finite and >= 0, got {switch_cost}")
        if not math.isfinite(speed) or speed <= 0:
            raise ValueError(f"speed must be finite and > 0, got {speed}")
        if memory_blocks is not None and memory_blocks < 1:
            raise ValueError(
                f"memory_blocks must be >= 1 when set, got {memory_blocks}"
            )
        self.index = index
        self.device_id = f"dev{index}"
        self.speed = speed
        self.overlap = overlap
        self.switch_cost = switch_cost
        self.memory_blocks = memory_blocks  # KV capacity; None = no override
        self.free_at = 0.0  # sim time the device next goes idle
        self.busy_ms = 0.0  # total occupancy
        self.batches = 0  # device iterations executed
        self.phases = 0  # phases executed (sum of batch sizes)
        self.faults: DeviceFaultProfile = HEALTHY_PROFILE
        self.wasted_ms = 0.0  # occupancy billed to crash-aborted batches
        self.aborted_batches = 0

    # -- fault-plan timeline -----------------------------------------------
    def set_fault_profile(self, profile: DeviceFaultProfile) -> None:
        """Attach this device's slice of the run's fault plan."""
        self.faults = profile

    def is_dead(self, at_ms: float) -> bool:
        """Crashed and not yet warm-restarted at ``at_ms``."""
        return self.faults.is_dead(at_ms)

    def available(self, at_ms: float) -> bool:
        """Can the device start new work at ``at_ms``? (not dead/stalled)"""
        return self.faults.available(at_ms)

    def effective_speed(self, at_ms: float) -> float:
        """Speed after slowdown windows active at ``at_ms``."""
        return self.speed * self.faults.speed_factor(at_ms)

    def batch_busy_ms(
        self,
        phases: Sequence[PhaseOutcome],
        merge_verify: bool = False,
        at_ms: float | None = None,
    ) -> float:
        """Device time one micro-batch of phases occupies.

        Groups by ``(model, phase-kind)``; the overlap discount applies
        within a group, groups serialise (different models cannot share a
        forward pass), and batches touching several models pay the
        residency-interference inflation.  ``merge_verify`` coalesces each
        verify group into a single batched target pass (overlap 1: busy is
        the critical path).  The whole bill scales by ``1 / speed`` — the
        cost model is linear in the per-phase costs, so a half-speed part
        takes exactly twice the device time for any batch.  With ``at_ms``
        the bill uses the *effective* speed at that instant, so slowdown
        (straggler) windows inflate batches started inside them.
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for outcome in phases:
            groups.setdefault((outcome.model, outcome.phase), []).append(outcome.ms)
        busy = 0.0
        for (_model, kind), costs in groups.items():
            coalesced = merge_verify and kind == PHASE_VERIFY
            overlap = 1.0 if coalesced else self.overlap
            critical = max(costs)
            busy += critical + (1.0 - overlap) * (sum(costs) - critical)
        models = len({model for model, _kind in groups})
        if models > 1:
            busy *= 1.0 + self.switch_cost * (models - 1)
        speed = self.speed if at_ms is None else self.effective_speed(at_ms)
        return busy / speed

    def execute(
        self,
        start_ms: float,
        phases: Sequence[PhaseOutcome],
        merge_verify: bool = False,
        abort_ms: float | None = None,
    ) -> float:
        """Run a micro-batch starting no earlier than ``start_ms``.

        Returns the completion time and advances the busy timeline.  With
        ``abort_ms`` (a crash inside the batch's span) the batch ends there
        instead: the partial occupancy is billed — and also counted in
        ``wasted_ms``, since the phases never commit — and the caller is
        responsible for requeueing the aborted phases.
        """
        if not phases:
            raise ValueError("cannot execute an empty batch")
        start = max(start_ms, self.free_at)
        busy = self.batch_busy_ms(phases, merge_verify, at_ms=start)
        end = start + busy
        if abort_ms is not None:
            if abort_ms < start:
                raise ValueError(
                    f"abort at {abort_ms} precedes batch start {start} on "
                    f"{self.device_id}"
                )
            if abort_ms < end:
                end = abort_ms
                self.wasted_ms += end - start
                self.aborted_batches += 1
        self.free_at = end
        self.busy_ms += end - start
        self.batches += 1
        self.phases += len(phases)
        return end

    def utilisation(self, sim_end_ms: float) -> float:
        """Busy fraction of this device over the simulated span."""
        if sim_end_ms <= 0:
            return 0.0
        return self.busy_ms / sim_end_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Device({self.device_id}, speed={self.speed:g}, "
            f"busy={self.busy_ms:.1f}ms)"
        )


def make_devices(
    count: int,
    overlap: float,
    switch_cost: float = MODEL_SWITCH_COST,
    specs: Sequence[DeviceSpec] | None = None,
) -> list[Device]:
    """A fresh cluster of ``count`` devices.

    Homogeneous by default (every device shares ``overlap``/``switch_cost``
    at speed 1.0); passing ``specs`` builds a heterogeneous cluster —
    ``len(specs)`` must equal ``count``, and per-spec ``overlap``/
    ``switch_cost`` overrides beat the shared defaults.
    """
    if count < 1:
        raise ValueError(f"need at least one device, got {count}")
    if specs is None:
        return [Device(index, overlap, switch_cost) for index in range(count)]
    if len(specs) != count:
        raise ValueError(
            f"device spec list has {len(specs)} entries for a "
            f"{count}-device cluster"
        )
    return [
        Device(
            index,
            overlap if spec.overlap is None else spec.overlap,
            switch_cost if spec.switch_cost is None else spec.switch_cost,
            speed=spec.speed,
            memory_blocks=spec.memory_blocks,
        )
        for index, spec in enumerate(specs)
    ]
