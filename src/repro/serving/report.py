"""SLO reporting for serve simulations.

Collapses the per-request timelines of one scheduler run into the quantities
a capacity planner asks for: client-latency percentiles (completion and
time-to-first-token), goodput under a deadline, rejection/shed rates,
per-priority-class goodput, device utilisation, and — when a fault plan was
injected — the chaos accounting (retries, requeues, preemptions, wasted
work, time in degraded state).  ``max_sustainable_qps`` is attached by the
simulator's load search (:func:`repro.serving.simulator.max_sustainable_qps`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.metrics.latency_report import PercentileSummary
from repro.serving.devices import DeviceSpec, format_device_specs
from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_CLASSES,
    STATUS_COMPLETED,
    STATUS_REJECTED,
    STATUS_SHED,
    RequestRecord,
)
from repro.serving.scheduler import ScheduleStats


@dataclass(frozen=True)
class StreamingSummary:
    """Word-level streaming metrics of one serve simulation.

    Populated only when the trace contained streamed arrivals
    (``rtf > 0``).  ``partial_stability`` is the fraction of emitted tokens
    later revised — identically ``0.0`` for the lossless decoder, asserted
    at construction so a regression cannot silently report stable partials.
    """

    requests: int  # streaming requests in the trace
    completed: int
    chunks: int  # audio chunk events delivered
    word_ttft: PercentileSummary | None  # first emission - arrival (ms)
    emission_latency: PercentileSummary | None  # per cap-raising chunk (ms)
    final_latency: PercentileSummary | None  # end-of-audio - final (ms)
    partial_stability: float  # revised fraction of emitted tokens

    @classmethod
    def from_records(
        cls, records: Sequence[RequestRecord]
    ) -> "StreamingSummary | None":
        streaming = [r for r in records if r.streaming]
        if not streaming:
            return None
        completed = [r for r in streaming if r.status == STATUS_COMPLETED]
        emitted = sum(len(r.emission_ms) for r in completed)
        revised = sum(r.revised_tokens for r in completed)
        stability = revised / emitted if emitted else 0.0
        assert stability == 0.0, (
            f"lossless decoder revised {revised}/{emitted} emitted tokens"
        )
        return cls(
            requests=len(streaming),
            completed=len(completed),
            chunks=sum(r.stream_chunks for r in streaming),
            word_ttft=PercentileSummary.from_values(
                r.word_ttft_ms for r in completed if r.word_ttft_ms is not None
            ),
            emission_latency=PercentileSummary.from_values(
                latency for r in completed for latency in r.chunk_latencies_ms
            ),
            final_latency=PercentileSummary.from_values(
                r.final_latency_ms
                for r in completed
                if r.final_latency_ms is not None
            ),
            partial_stability=stability,
        )

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "chunks": self.chunks,
            "word_ttft_ms": self.word_ttft.to_dict() if self.word_ttft else None,
            "emission_latency_ms": (
                self.emission_latency.to_dict() if self.emission_latency else None
            ),
            "final_latency_ms": (
                self.final_latency.to_dict() if self.final_latency else None
            ),
            "partial_stability": self.partial_stability,
        }


@dataclass(frozen=True)
class ServeReport:
    """SLO summary of one (method, arrival-trace) serve simulation."""

    method: str
    offered_qps: float
    deadline_ms: float
    num_requests: int
    completed: int
    rejected: int
    met_deadline: int
    goodput_rps: float  # deadline-meeting completions per second
    goodput_ratio: float  # met_deadline / num_requests (rejections count)
    completion: PercentileSummary | None
    ttft: PercentileSummary | None
    queue_wait: PercentileSummary | None
    decode: PercentileSummary | None  # scheduler-independent model time
    stats: ScheduleStats
    max_sustainable_qps: float | None = None
    shed: int = 0  # dropped by the server (deadline / retries / capacity)
    batch_deadline_ms: float | None = None  # batch-class SLO (None = shared)
    per_class: dict | None = None  # per-priority-class goodput breakdown
    streaming: StreamingSummary | None = None  # word-level streaming block

    @classmethod
    def from_records(
        cls,
        method: str,
        records: Sequence[RequestRecord],
        stats: ScheduleStats,
        deadline_ms: float,
        offered_qps: float,
        batch_deadline_ms: float | None = None,
    ) -> "ServeReport":
        completed = [r for r in records if r.status == STATUS_COMPLETED]
        rejected = sum(1 for r in records if r.status == STATUS_REJECTED)
        shed = sum(1 for r in records if r.status == STATUS_SHED)

        def met_slo(record: RequestRecord) -> bool:
            # Batch-class requests are judged against their own (usually
            # looser) deadline when one is configured.
            if (
                record.request.priority == PRIORITY_BATCH
                and batch_deadline_ms is not None
            ):
                return record.meets_deadline(batch_deadline_ms)
            return record.meets_deadline(deadline_ms)

        met = [r for r in completed if met_slo(r)]
        per_class: dict[str, dict] = {}
        for class_name in PRIORITY_CLASSES:
            class_records = [
                r for r in records if r.request.priority == class_name
            ]
            if not class_records:
                continue
            class_completed = [
                r for r in class_records if r.status == STATUS_COMPLETED
            ]
            class_met = [r for r in class_completed if met_slo(r)]
            per_class[class_name] = {
                "arrived": len(class_records),
                "completed": len(class_completed),
                "rejected": sum(
                    1 for r in class_records if r.status == STATUS_REJECTED
                ),
                "shed": sum(1 for r in class_records if r.status == STATUS_SHED),
                "met_deadline": len(class_met),
                "goodput_ratio": (
                    round(len(class_met) / len(class_records), 4)
                ),
            }
        span_s = stats.sim_end_ms / 1000.0
        return cls(
            method=method,
            offered_qps=offered_qps,
            deadline_ms=deadline_ms,
            num_requests=len(records),
            completed=len(completed),
            rejected=rejected,
            met_deadline=len(met),
            goodput_rps=len(met) / span_s if span_s > 0 else 0.0,
            goodput_ratio=len(met) / len(records) if records else 0.0,
            completion=PercentileSummary.from_values(
                r.completion_ms for r in completed
            ),
            ttft=PercentileSummary.from_values(r.ttft_ms for r in completed),
            queue_wait=PercentileSummary.from_values(r.queue_ms for r in completed),
            decode=PercentileSummary.from_values(r.decode_ms for r in completed),
            stats=stats,
            shed=shed,
            batch_deadline_ms=batch_deadline_ms,
            per_class=per_class,
            streaming=StreamingSummary.from_records(records),
        )

    @property
    def chaos_active(self) -> bool:
        """True when the run saw faults or degradation events worth showing."""
        stats = self.stats
        return bool(
            stats.fault_events
            or stats.retries
            or stats.requeues
            or stats.preemptions
            or stats.duplicates
            or stats.displaced
            or self.shed
        )

    def chaos_dict(self) -> dict:
        """The failure/degradation accounting block of :meth:`to_dict`."""
        stats = self.stats
        return {
            "fault_events": stats.fault_events,
            "retries": stats.retries,
            "requeues": stats.requeues,
            "preemptions": stats.preemptions,
            "shed": self.shed,
            "duplicates": stats.duplicates,
            "cancelled": stats.cancelled,
            "displaced": stats.displaced,
            "degraded_ms": round(stats.degraded_ms, 3),
            "wasted_busy_ms": round(stats.wasted_busy_ms, 3),
        }

    @property
    def memory_active(self) -> bool:
        """True when the run billed KV blocks (memory accounting was on)."""
        return self.stats.block_size > 0

    def memory_dict(self) -> dict:
        """The KV-block accounting block of :meth:`to_dict`."""
        stats = self.stats
        return {
            "device_blocks": list(stats.memory_blocks),
            "peak_blocks": list(stats.peak_memory_blocks),
            "block_size": stats.block_size,
            "evictions": stats.evictions,
            "evicted_blocks": stats.evicted_blocks,
            "prefix_reuse_hits": stats.prefix_reuse_hits,
            "reprefill_ms": round(stats.reprefill_ms, 3),
            "memory_stalls": stats.memory_stalls,
        }

    def with_max_qps(self, max_qps: float) -> "ServeReport":
        """A copy carrying the load search's max sustainable QPS."""
        return replace(self, max_sustainable_qps=max_qps)

    def per_device_rows(self) -> list[dict]:
        """One row per cluster device: spec, pool role, busy, utilisation.

        Empty when the scheduler recorded no per-device detail (legacy
        stats objects); speeds/roles default to ``1.0``/``"any"`` when a
        run predates the heterogeneous-cluster stats fields.
        """
        stats = self.stats
        speeds = stats.device_speeds
        roles = stats.device_roles
        capacities = stats.memory_blocks
        peaks = stats.peak_memory_blocks
        rows = []
        for index, busy in enumerate(stats.per_device_busy_ms):
            speed = speeds[index] if index < len(speeds) else 1.0
            role = roles[index] if index < len(roles) else "any"
            utilisation = busy / stats.sim_end_ms if stats.sim_end_ms > 0 else 0.0
            row = {
                "device": f"dev{index}",
                "speed": speed,
                "role": role,
                "busy_ms": round(busy, 3),
                "utilisation": round(utilisation, 4),
            }
            if self.memory_active:
                row["memory_blocks"] = (
                    capacities[index] if index < len(capacities) else None
                )
                row["peak_blocks"] = peaks[index] if index < len(peaks) else 0
            rows.append(row)
        return rows

    # -- output ------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "method": self.method,
            "offered_qps": round(self.offered_qps, 3),
            "deadline_ms": self.deadline_ms,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "met_deadline": self.met_deadline,
            "goodput_rps": round(self.goodput_rps, 3),
            "goodput_ratio": round(self.goodput_ratio, 4),
            "devices": self.stats.devices,
            "device_utilisation": round(self.stats.device_utilisation, 4),
            "per_device_busy_ms": [
                round(busy, 3) for busy in self.stats.per_device_busy_ms
            ],
            "per_device": self.per_device_rows(),
            "draft_share": (
                round(self.stats.draft_share, 4)
                if self.stats.draft_share is not None
                else None
            ),
            "mean_batch_occupancy": round(self.stats.mean_batch_occupancy, 3),
            "peak_queue_depth": self.stats.peak_queue_depth,
            "sim_end_ms": round(self.stats.sim_end_ms, 3),
            "latency_ms": {
                "completion": self.completion.to_dict() if self.completion else None,
                "ttft": self.ttft.to_dict() if self.ttft else None,
                "queue_wait": self.queue_wait.to_dict() if self.queue_wait else None,
                "decode": self.decode.to_dict() if self.decode else None,
            },
        }
        if self.batch_deadline_ms is not None:
            payload["batch_deadline_ms"] = self.batch_deadline_ms
        if self.per_class and len(self.per_class) > 1:
            payload["per_class"] = self.per_class
        if self.streaming is not None:
            payload["streaming"] = self.streaming.to_dict()
        if self.chaos_active:
            payload["chaos"] = self.chaos_dict()
        if self.memory_active:
            payload["memory"] = self.memory_dict()
        if self.max_sustainable_qps is not None:
            payload["max_sustainable_qps"] = round(self.max_sustainable_qps, 3)
        return payload

    def cluster_label(self) -> str:
        """``"N device(s)"``, with the speed mix when heterogeneous."""
        label = f"{self.stats.devices} device(s)"
        speeds = self.stats.device_speeds
        if speeds and any(speed != 1.0 for speed in speeds):
            specs = [DeviceSpec(speed=speed) for speed in speeds]
            label += f" [{format_device_specs(specs)}]"
        return label

    def render(self) -> str:
        """Human-readable SLO report."""
        lines = [
            f"serve-sim [{self.method}] "
            f"offered {self.offered_qps:.2f} qps, "
            f"SLO deadline {self.deadline_ms:.0f} ms",
            f"  requests  : {self.num_requests} "
            f"(completed {self.completed}, rejected {self.rejected}, "
            f"shed {self.shed})",
            f"  goodput   : {self.goodput_rps:.2f} req/s within deadline "
            f"({self.goodput_ratio:.1%} of offered)",
            f"  cluster   : {self.cluster_label()}, "
            f"{self.stats.device_utilisation:.1%} busy, "
            f"mean batch {self.stats.mean_batch_occupancy:.2f}, "
            f"peak queue {self.stats.peak_queue_depth}",
        ]
        if self.stats.draft_share is not None:
            lines.append(
                f"  planner   : measured draft share "
                f"{self.stats.draft_share:.1%} of decode cost"
            )
        if self.chaos_active:
            stats = self.stats
            lines.append(
                f"  chaos     : {stats.fault_events} fault event(s), "
                f"{stats.retries} retries, {stats.requeues} requeues, "
                f"{self.shed} shed, {stats.preemptions} preemptions"
            )
            lines.append(
                f"  degraded  : {stats.degraded_ms:.0f} ms with impaired "
                f"capacity, {stats.wasted_busy_ms:.1f} ms wasted on aborted "
                f"batches, {stats.duplicates} straggler re-issue(s)"
            )
        if self.memory_active:
            stats = self.stats
            peak = max(stats.peak_memory_blocks, default=0)
            lines.append(
                f"  memory    : peak {peak} blocks "
                f"({stats.block_size} tok/block), "
                f"{stats.evictions} eviction(s), "
                f"{stats.prefix_reuse_hits} prefix reuse hit(s), "
                f"{stats.reprefill_ms:.1f} ms re-prefill, "
                f"{stats.memory_stalls} stall(s)"
            )
        if self.streaming is not None:
            block = self.streaming
            lines.append(
                f"  streaming : {block.requests} streamed request(s), "
                f"{block.chunks} audio chunk(s), "
                f"partial stability {1.0 - block.partial_stability:.1%}"
            )
            for label, summary in (
                ("word ttft", block.word_ttft),
                ("emission", block.emission_latency),
                ("final lat", block.final_latency),
            ):
                if summary is None:
                    lines.append(f"    {label:9s}: (no completed streams)")
                else:
                    lines.append(
                        f"    {label:9s}: p50 {summary.p50:8.1f}  "
                        f"p95 {summary.p95:8.1f}  p99 {summary.p99:8.1f}  "
                        f"mean {summary.mean:8.1f} ms"
                    )
        if self.per_class and len(self.per_class) > 1:
            for class_name, row in self.per_class.items():
                lines.append(
                    f"  class     : {class_name:11s} arrived {row['arrived']:4d} "
                    f"met {row['met_deadline']:4d} "
                    f"({row['goodput_ratio']:.1%} goodput)"
                )
        for row in self.per_device_rows():
            lines.append(
                f"    {row['device']:6s} speed {row['speed']:<4g} "
                f"{row['role']:6s} busy {row['busy_ms']:10.1f} ms "
                f"({row['utilisation']:.1%})"
            )
        for label, summary in (
            ("completion", self.completion),
            ("ttft", self.ttft),
            ("queue wait", self.queue_wait),
            ("decode", self.decode),
        ):
            if summary is None:
                lines.append(f"  {label:10s}: (no completed requests)")
            else:
                lines.append(
                    f"  {label:10s}: p50 {summary.p50:8.1f}  "
                    f"p95 {summary.p95:8.1f}  p99 {summary.p99:8.1f}  "
                    f"mean {summary.mean:8.1f} ms"
                )
        if self.max_sustainable_qps is not None:
            lines.append(f"  max sustainable qps @ SLO: {self.max_sustainable_qps:.2f}")
        return "\n".join(lines)
