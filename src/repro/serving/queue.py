"""Bounded FIFO admission queue with backpressure.

The queue sits between the arrival stream and the scheduler.  When it is
full, new arrivals are *rejected* immediately (load shedding) rather than
waiting unboundedly — the serving-system analogue of HTTP 429/503
backpressure.  Rejections count against goodput, so an overloaded
configuration shows up in the SLO report instead of in an ever-growing
latency tail.
"""

from __future__ import annotations

from collections import deque

from repro.serving.request import STATUS_REJECTED, RequestRecord


class AdmissionQueue:
    """FIFO queue bounded at ``capacity`` waiting requests."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._waiting: deque[RequestRecord] = deque()
        self.rejected = 0
        self.admitted = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def __bool__(self) -> bool:
        return bool(self._waiting)

    def offer(self, record: RequestRecord) -> bool:
        """Admit ``record`` or reject it if the queue is full."""
        if len(self._waiting) >= self.capacity:
            self.rejected += 1
            record.status = STATUS_REJECTED
            return False
        self._waiting.append(record)
        self.admitted += 1
        if len(self._waiting) > self.peak_depth:
            self.peak_depth = len(self._waiting)
        return True

    def pop(self) -> RequestRecord:
        """Dequeue the oldest waiting request."""
        return self._waiting.popleft()
