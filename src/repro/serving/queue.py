"""Bounded admission queue with backpressure and priority classes.

The queue sits between the arrival stream and the scheduler.  When it is
full, new arrivals are *rejected* immediately (load shedding) rather than
waiting unboundedly — the serving-system analogue of HTTP 429/503
backpressure.  Rejections count against goodput, so an overloaded
configuration shows up in the SLO report instead of in an ever-growing
latency tail.

Requests carry a priority class (see :mod:`repro.serving.request`):
``interactive`` entries always dequeue before ``batch`` entries, with FIFO
order within each class.  When the queue is full, an arriving interactive
request *displaces* the newest waiting batch entry (which is rejected in its
place) — batch traffic absorbs overload so interactive SLOs survive.  A
batch arrival at a full queue is simply rejected, as before.
"""

from __future__ import annotations

from collections import deque

from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    STATUS_REJECTED,
    RequestRecord,
)


class AdmissionQueue:
    """Two-class priority queue bounded at ``capacity`` waiting requests."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._interactive: deque[RequestRecord] = deque()
        self._batch: deque[RequestRecord] = deque()
        self.rejected = 0
        self.admitted = 0
        self.displaced = 0  # batch entries bumped out by interactive arrivals
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._interactive) + len(self._batch)

    def __bool__(self) -> bool:
        return bool(self._interactive) or bool(self._batch)

    def offer(self, record: RequestRecord) -> bool:
        """Admit ``record``, displacing batch work if needed, or reject it."""
        if len(self) >= self.capacity:
            if record.request.priority == PRIORITY_INTERACTIVE and self._batch:
                bumped = self._batch.pop()  # newest batch entry yields its slot
                bumped.status = STATUS_REJECTED
                self.rejected += 1
                self.displaced += 1
            else:
                self.rejected += 1
                record.status = STATUS_REJECTED
                return False
        lane = (
            self._interactive
            if record.request.priority == PRIORITY_INTERACTIVE
            else self._batch
        )
        lane.append(record)
        self.admitted += 1
        if len(self) > self.peak_depth:
            self.peak_depth = len(self)
        return True

    def pop(self) -> RequestRecord:
        """Dequeue the oldest waiting request of the highest waiting class."""
        if self._interactive:
            return self._interactive.popleft()
        return self._batch.popleft()

    def next_priority(self) -> str | None:
        """Class of the entry :meth:`pop` would return (None when empty)."""
        if self._interactive:
            return PRIORITY_INTERACTIVE
        if self._batch:
            return PRIORITY_BATCH
        return None
