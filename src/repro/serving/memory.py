"""Paged KV-cache accounting: memory as a first-class scheduling constraint.

Devices model *time* in :mod:`repro.serving.devices`; this module makes them
model *memory* too, with the vLLM-style paged discipline:

* KV state is billed in fixed-size **blocks** (``block_size`` token
  positions each).  Every in-flight session holds blocks **per model** —
  a speculative decode keeps a draft-model cache *and* a target-model
  cache resident, which is exactly where SpecASR doubles memory pressure.
* A phase may only dispatch on a device if its blocks fit
  (:meth:`ClusterKVMemory.admit` — the scheduler's admission gate), so the
  effective batch size *emerges* from free blocks instead of ``--max-batch``.
* On commit the session's residency shrinks back to its committed prefix
  (block-granular append of accepted tokens; **rollback frees the blocks
  speculated-then-rejected tokens occupied**); scratch blocks used by the
  in-flight speculation are returned.
* Under pressure the allocator **evicts idle sessions LRU** (never one with
  a copy executing); an evicted session's decode state survives — only its
  KV blocks are dropped — and its next dispatch pays a **re-prefill
  penalty** proportional to the blocks it must re-materialise.
* Full blocks of the committed region are **shared copy-on-write across
  requests** decoding the same prompt, keyed ``(model, utterance, block)``
  — the cross-request extension of the per-(model, utterance) prefix trie
  that already dedupes divergence state.  Writers never touch a shared
  block: the partially-filled tail block is always a private copy, and a
  private block only *promotes* to shared once it fills.

**Parity contract.**  Admission is a pure gate: it never reorders routing,
and a session's blocks migrate freely with its phases (consistent with the
least-loaded routers, which already move sessions between pool peers).
When every phase fits — capacity ample — no eviction, no stall and no
penalty ever fires, so the schedule is bit-identical to a run with memory
accounting disabled.  The invariant suite pins this down.

Everything here is integer/float bookkeeping over the scheduler's
deterministic event order: no wall clock, no RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Default token positions per KV block (the vLLM default page size).
DEFAULT_BLOCK_SIZE = 16

#: Default simulated cost of re-materialising one evicted block on resume.
DEFAULT_REPREFILL_MS_PER_BLOCK = 2.0


@dataclass(frozen=True)
class MemorySpec:
    """Memory-model knobs for one serve simulation (picklable).

    ``device_blocks`` is the per-device KV capacity in blocks; ``None``
    disables memory accounting entirely (the legacy time-only cluster).
    Per-device ``DeviceSpec.memory_blocks`` overrides beat this default,
    so heterogeneous clusters can mix large- and small-memory parts.
    """

    device_blocks: int | None = None
    block_size: int = DEFAULT_BLOCK_SIZE
    prefix_sharing: bool = True
    reprefill_ms_per_block: float = DEFAULT_REPREFILL_MS_PER_BLOCK

    def __post_init__(self) -> None:
        if self.device_blocks is not None and self.device_blocks < 1:
            raise ValueError(
                f"device_blocks must be >= 1 when set, got {self.device_blocks}"
            )
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.reprefill_ms_per_block < 0:
            raise ValueError(
                "reprefill_ms_per_block must be >= 0, got "
                f"{self.reprefill_ms_per_block}"
            )

    @property
    def enabled(self) -> bool:
        """Does this spec, by itself, turn memory accounting on?"""
        return self.device_blocks is not None

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` cached positions."""
        if tokens <= 0:
            return 0
        return -(-tokens // self.block_size)


@dataclass
class KVCacheTracker:
    """Per-session cache length plus lifetime append/rollback counters.

    The attention term of the latency model reads the cache through
    :meth:`context_length`; benches read the churn counters.  (This type
    used to live in ``repro.models.kv_cache``, which now re-exports it.)
    """

    length: int = 0
    peak: int = 0
    prompt_length: int = 0
    appended_total: int = 0
    rolled_back_total: int = 0
    rollback_events: int = 0

    def prefill(self, prompt_tokens: int) -> None:
        """Cache the prompt (audio embeddings + text prompt positions)."""
        if prompt_tokens < 0:
            raise ValueError(f"cannot prefill negative count {prompt_tokens}")
        self.prompt_length += prompt_tokens
        self.append(prompt_tokens)

    def append(self, count: int) -> None:
        """Cache ``count`` new positions."""
        if count < 0:
            raise ValueError(f"cannot append negative count {count}")
        self.length += count
        self.appended_total += count
        if self.length > self.peak:
            self.peak = self.length

    def context_length(self, suffix_tokens: int) -> int:
        """Cache length attended over at ``suffix_tokens`` past the prompt.

        This is the ``cached_tokens`` argument of the latency model's
        attention term: prompt positions plus the decoded prefix depth.
        """
        if suffix_tokens < 0:
            raise ValueError(f"negative suffix length {suffix_tokens}")
        return self.prompt_length + suffix_tokens

    def rollback_to(self, length: int) -> None:
        """Discard cached positions beyond ``length`` (rejected tokens)."""
        if length < 0:
            raise ValueError(f"cannot rollback to negative length {length}")
        if length > self.length:
            raise ValueError(
                f"rollback target {length} exceeds current length {self.length}"
            )
        dropped = self.length - length
        if dropped:
            self.rolled_back_total += dropped
            self.rollback_events += 1
        self.length = length

    @property
    def waste_ratio(self) -> float:
        """Fraction of appended positions that were later rolled back."""
        if self.appended_total == 0:
            return 0.0
        return self.rolled_back_total / self.appended_total


class _BlockPool:
    """Physical block accounting for one device."""

    __slots__ = ("capacity", "used", "peak", "shared")

    def __init__(self, capacity: int | None) -> None:
        self.capacity = capacity  # None = unbounded (accounting only)
        self.used = 0
        self.peak = 0
        # Refcounts of copy-on-write blocks: (model, prompt key, block
        # index) -> number of holdings referencing the one physical block.
        self.shared: dict[tuple[str, str, int], int] = {}

    def free(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - self.used

    def charge(self, blocks: int) -> None:
        self.used += blocks
        if self.used > self.peak:
            self.peak = self.used
        if self.capacity is not None and self.used > self.capacity:
            raise RuntimeError(
                f"block pool over capacity: {self.used} > {self.capacity}"
            )

    def release(self, blocks: int) -> None:
        self.used -= blocks
        if self.used < 0:
            raise RuntimeError(f"block pool underflow: {self.used}")


class _Holding:
    """One (request, model) residency on one device.

    ``shared`` counts the leading committed-prefix blocks referenced
    through the pool's copy-on-write table; ``private`` counts blocks owned
    outright (the partial tail block plus in-flight speculation scratch).
    ``inflight`` counts dispatched copies of the current phase charged
    against this holding (0 = idle, hence evictable).
    """

    __slots__ = ("shared", "private", "inflight")

    def __init__(self) -> None:
        self.shared = 0
        self.private = 0
        self.inflight = 0

    @property
    def blocks(self) -> int:
        return self.shared + self.private


class ClusterKVMemory:
    """Cluster-wide paged KV allocator driven by the scheduler's event loop.

    One instance per scheduler run.  ``capacities`` holds the per-device
    block budgets (``None`` = unbounded); holdings are keyed per
    ``(request index, model)`` — a speculative session holds draft-model
    and target-model residencies independently, and a straggler re-issue
    may briefly hold the same phase's blocks on two devices.
    """

    def __init__(self, spec: MemorySpec, capacities: Sequence[int | None]) -> None:
        self.spec = spec
        self.pools = [_BlockPool(capacity) for capacity in capacities]
        # (request, model) -> device index -> holding
        self._holdings: dict[tuple[int, str], dict[int, _Holding]] = {}
        # (request, model) -> copy-on-write prompt key its shared blocks use
        self._prompt_keys: dict[tuple[int, str], str] = {}
        # Residencies dropped without a surviving copy (evicted / crashed /
        # preempted): their next admission pays the re-prefill penalty.
        self._evicted: set[tuple[int, str]] = set()
        self._lru: dict[int, int] = {}  # request -> last-admit tick
        self._tick = 0
        self.evictions = 0
        self.evicted_blocks = 0
        self.reuse_hits = 0
        self.reprefill_ms = 0.0
        self.stalls = 0

    # -- demand model ------------------------------------------------------
    def phase_demand(self, peak_tokens: int, resident_tokens: int) -> int:
        """Blocks a phase needs while executing.

        Covers the phase's peak cache extent plus one growth block so the
        verify commit's correction/bonus token — which can land one past
        the last billed position — never needs an emergency allocation.
        """
        return self.spec.blocks_for(max(peak_tokens, resident_tokens)) + 1

    def fits_anywhere(self, demand: int, device_indices: Iterable[int]) -> bool:
        """Could ``demand`` blocks ever fit on one of these devices?"""
        for index in device_indices:
            capacity = self.pools[index].capacity
            if capacity is None or demand <= capacity:
                return True
        return False

    # -- admission gate ----------------------------------------------------
    def admit(
        self,
        device: int,
        request: int,
        model: str,
        prompt_key: str,
        peak_tokens: int,
        resident_tokens: int,
    ) -> float | None:
        """Reserve the blocks one phase needs on ``device``.

        Returns the re-prefill penalty in milliseconds (0.0 almost always;
        positive when the session's residency was evicted and must be
        re-materialised) — or ``None`` when the phase does not fit right
        now even after evicting every idle session.  The caller re-offers
        the phase at the next event.
        """
        pool = self.pools[device]
        hkey = (request, model)
        hmap = self._holdings.setdefault(hkey, {})
        self._prompt_keys.setdefault(hkey, prompt_key)
        # Free migration: the routers already move sessions between pool
        # peers, so an idle residency left on another device follows the
        # phase (simulated KV transfer is free — part of the parity
        # contract with the memory-disabled scheduler).
        for other, other_holding in list(hmap.items()):
            if other != device and other_holding.inflight == 0:
                self._release_full(hkey, hmap, other, other_holding)
        holding = hmap.get(device)
        current_shared = holding.shared if holding is not None else 0
        current_private = holding.private if holding is not None else 0
        demand = self.phase_demand(peak_tokens, resident_tokens)
        shared_target = (
            resident_tokens // self.spec.block_size if self.spec.prefix_sharing else 0
        )
        if shared_target < current_shared:
            shared_target = current_shared  # never demote already-shared blocks
        private_target = max(demand - shared_target, 0)
        freed = max(current_private - private_target, 0)

        def plan() -> tuple[int, int]:
            # (new physical blocks, shared blocks reused) against the pool's
            # *current* table — eviction can free a block this admission
            # meant to reuse, so the plan recomputes after every round.
            new_physical = max(private_target - current_private, 0)
            reused = 0
            for index in range(current_shared, shared_target):
                if pool.shared.get((model, prompt_key, index), 0) == 0:
                    new_physical += 1
                else:
                    reused += 1
            return new_physical, reused

        while True:
            new_physical, reused_now = plan()
            needed = new_physical - freed
            if pool.capacity is None or pool.used + needed <= pool.capacity:
                break
            used_before = pool.used
            self._evict_until(device, pool.used + needed - pool.capacity, request)
            if pool.used == used_before:  # nothing left to evict
                self.stalls += 1
                return None
        # Commit the reservation.
        for index in range(current_shared, shared_target):
            key = (model, prompt_key, index)
            refs = pool.shared.get(key, 0)
            if refs == 0:
                pool.charge(1)
            pool.shared[key] = refs + 1
        self.reuse_hits += reused_now
        if private_target > current_private:
            pool.charge(private_target - current_private)
        elif private_target < current_private:
            pool.release(current_private - private_target)
        if holding is None:
            holding = hmap[device] = _Holding()
        holding.shared = shared_target
        holding.private = private_target
        holding.inflight += 1
        self._tick += 1
        self._lru[request] = self._tick
        penalty = 0.0
        if (request, model) in self._evicted:
            self._evicted.discard((request, model))
            penalty = self.spec.reprefill_ms_per_block * self.spec.blocks_for(
                resident_tokens
            )
            self.reprefill_ms += penalty
        return penalty

    # -- settlement --------------------------------------------------------
    def settle(
        self,
        device: int,
        request: int,
        model: str,
        prompt_key: str,
        resident_tokens: int,
        committed: bool,
    ) -> None:
        """Resolve one dispatched copy after its batch completes.

        On commit the holding shrinks to the new committed residency
        (``resident_tokens``): speculation scratch is returned and the
        blocks of rejected tokens are freed, while newly-filled prefix
        blocks promote into the copy-on-write table.  A failed or stale
        copy releases its blocks outright; if no sibling copy survives the
        residency is gone (crash semantics) and the next admission pays
        the re-prefill penalty.
        """
        hmap = self._holdings.get((request, model))
        holding = hmap.get(device) if hmap is not None else None
        if hmap is None or holding is None:
            return  # released wholesale (request completed/shed) before settle
        if holding.inflight > 0:
            holding.inflight -= 1
        if not committed:
            if holding.inflight == 0:
                self._release_full((request, model), hmap, device, holding)
                if not hmap:
                    self._forget((request, model), evicted=True)
            return
        pool = self.pools[device]
        shared_target = (
            resident_tokens // self.spec.block_size if self.spec.prefix_sharing else 0
        )
        for index in range(holding.shared, shared_target):
            # A private block filled up: promote it.  If a peer session
            # already published this block the copies merge (true
            # copy-on-write dedup — one physical block survives).
            key = (model, prompt_key, index)
            refs = pool.shared.get(key, 0)
            if refs > 0:
                self.reuse_hits += 1
                pool.release(1)
            pool.shared[key] = refs + 1
            holding.shared += 1
            holding.private -= 1
        private_target = self.spec.blocks_for(resident_tokens) - holding.shared
        if private_target < 0:
            private_target = 0
        if holding.private > private_target:
            pool.release(holding.private - private_target)
            holding.private = private_target
        elif holding.private < private_target:
            # The commit's bonus token spilled into the reserved growth
            # block (see phase_demand): account it as resident now.
            pool.charge(private_target - holding.private)
            holding.private = private_target

    # -- eviction / release ------------------------------------------------
    def _forget(self, key: tuple[int, str], evicted: bool) -> None:
        """Drop an emptied (request, model) entry and record its fate."""
        self._holdings.pop(key, None)
        self._prompt_keys.pop(key, None)
        if evicted:
            self._evicted.add(key)
        else:
            self._evicted.discard(key)

    def release_request(self, request: int, evicted: bool = False) -> int:
        """Free every idle residency of ``request`` (completion/shed/preempt).

        Copies still executing keep their blocks until they settle (their
        settle path releases them).  With ``evicted=True`` (queue
        preemption) the residency marks as evicted so the resumed session
        pays re-prefill on its next dispatch.
        """
        freed = 0
        for key in [k for k in self._holdings if k[0] == request]:
            hmap = self._holdings[key]
            for device, holding in list(hmap.items()):
                if holding.inflight == 0:
                    freed += self._release_full(key, hmap, device, holding)
            if not hmap:
                self._forget(key, evicted)
        if not evicted:
            self._lru.pop(request, None)
        return freed

    def _release_full(
        self,
        key: tuple[int, str],
        hmap: dict[int, _Holding],
        device: int,
        holding: _Holding,
    ) -> int:
        """Free one holding including its shared references."""
        model = key[1]
        pool = self.pools[device]
        freed = holding.private
        pool.release(holding.private)
        prompt_key = self._prompt_keys.get(key, "")
        for index in range(holding.shared):
            skey = (model, prompt_key, index)
            refs = pool.shared.get(skey, 0)
            if refs <= 1:
                pool.shared.pop(skey, None)
                pool.release(1)
                freed += 1
            else:
                pool.shared[skey] = refs - 1
        holding.shared = 0
        holding.private = 0
        del hmap[device]
        return freed

    def _evict_until(self, device: int, shortfall: int, protect: int) -> None:
        """LRU-evict idle sessions on ``device`` until ``shortfall`` frees.

        A session is evictable only when *none* of its copies is executing
        anywhere (eviction never touches a running session) and it is not
        the session being admitted.  Eviction drops whole per-device
        residencies; the decode state itself survives in the stepper, so
        this is memory-pressure preemption with state-intact resume.
        """
        if shortfall <= 0:
            return
        busy: set[int] = set()
        present: set[int] = set()
        for (request, _model), hmap in self._holdings.items():
            for dev, holding in hmap.items():
                if holding.inflight > 0:
                    busy.add(request)
                if dev == device and holding.blocks > 0:
                    present.add(request)
        candidates = sorted(
            (r for r in present if r != protect and r not in busy),
            key=lambda r: (self._lru.get(r, -1), r),
        )
        freed = 0
        for victim in candidates:
            if freed >= shortfall:
                break
            victim_freed = 0
            for key in [k for k in self._holdings if k[0] == victim]:
                hmap = self._holdings[key]
                holding = hmap.get(device)
                if holding is not None:
                    victim_freed += self._release_full(key, hmap, device, holding)
                if not hmap:
                    self._forget(key, evicted=True)
            if victim_freed:
                freed += victim_freed
                self.evictions += 1
                self.evicted_blocks += victim_freed

    # -- reporting / invariants --------------------------------------------
    @property
    def capacities(self) -> tuple[int | None, ...]:
        return tuple(pool.capacity for pool in self.pools)

    @property
    def peaks(self) -> tuple[int, ...]:
        return tuple(pool.peak for pool in self.pools)

    def used_blocks(self) -> tuple[int, ...]:
        return tuple(pool.used for pool in self.pools)

    def audit(self) -> None:
        """Assert block conservation: the pool ledgers match the holdings.

        ``used == private blocks + distinct shared blocks`` per device, and
        nothing exceeds capacity.  The property suite calls this after
        every scheduler run.
        """
        for device, pool in enumerate(self.pools):
            private = sum(
                holding.private
                for hmap in self._holdings.values()
                for dev, holding in hmap.items()
                if dev == device
            )
            expected = private + len(pool.shared)
            if pool.used != expected:
                raise AssertionError(
                    f"device {device}: ledger says {pool.used} blocks used, "
                    f"holdings account for {expected}"
                )
            if pool.capacity is not None and pool.used > pool.capacity:
                raise AssertionError(
                    f"device {device}: {pool.used} blocks used exceeds "
                    f"capacity {pool.capacity}"
                )
