"""End-to-end serve simulation: corpus + arrivals + scheduler + SLO report.

:func:`simulate` runs one (method, arrival-trace) simulation and returns a
:class:`~repro.serving.report.ServeReport`.  :func:`sweep_qps` evaluates a
load grid — optionally fanning the points out across a
:class:`~repro.harness.executor.CorpusExecutor` worker pool — and
:func:`max_sustainable_qps` searches for the highest offered load whose
goodput still meets the SLO target, the headline serving metric: *how much
live traffic does speculative decoding buy at a fixed deadline?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.harness.methods import build_method
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import model_pair
from repro.serving.arrivals import Arrival, make_trace, offered_qps
from repro.serving.devices import parse_device_specs
from repro.serving.faults import FaultPlan, parse_fault_spec
from repro.serving.memory import MemorySpec
from repro.serving.report import ServeReport
from repro.serving.router import SPLIT_FIXED, ClusterConfig
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    SchedulerConfig,
    StreamSpec,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and placement policy of the simulated accelerator cluster."""

    devices: int | None = None  # accelerator count; None = 1 or len(device_spec)
    router: str = "colocated"  # placement policy (see serving.router)
    pool_split: str = SPLIT_FIXED  # draft/target pool sizing: fixed | balanced
    device_spec: str = ""  # heterogeneous shorthand, e.g. "2x1.0,2x0.5@64"


@dataclass(frozen=True)
class ChaosSpec:
    """Fault injection and degradation handling (all off by default)."""

    faults: str = ""  # fault-spec grammar (see serving.faults)
    fault_seed: int = 0  # seeds the transient phase-error hash
    max_retries: int = 3
    retry_backoff_ms: float = 25.0
    straggler_k: float = 0.0  # re-issue at k x pool median; 0 = off
    admission_deadline_ms: float | None = None  # shed overdue interactive
    batch_deadline_ms: float | None = None  # batch-class SLO + shed bound


# Legacy flat kwargs -> (sub-config field, sub-config attribute).  Kept so
# seed-era call sites (and pickles) keep working against the composed shape.
_CLUSTER_KWARGS = {
    name: name for name in ("devices", "router", "pool_split", "device_spec")
}
_CHAOS_KWARGS = {
    name: name
    for name in (
        "faults",
        "fault_seed",
        "max_retries",
        "retry_backoff_ms",
        "straggler_k",
        "admission_deadline_ms",
        "batch_deadline_ms",
    )
}
_MEMORY_KWARGS = {
    "memory_blocks": "device_blocks",
    "block_size": "block_size",
    "prefix_sharing": "prefix_sharing",
    "reprefill_ms_per_block": "reprefill_ms_per_block",
}
_STREAM_KWARGS = {
    "streaming": "enabled",
    "rtf": "rtf",
    "chunk_s": "chunk_s",
    "lookahead_s": "lookahead_s",
}


@dataclass(frozen=True, init=False)
class ServeSimConfig:
    """Everything one serve simulation depends on (picklable, replayable).

    Composed from four sub-configs — ``cluster`` (:class:`ClusterSpec`),
    ``chaos`` (:class:`ChaosSpec`), ``memory``
    (:class:`~repro.serving.memory.MemorySpec`) and ``stream``
    (:class:`~repro.serving.scheduler.StreamSpec`) — plus the flat workload
    knobs.  The seed-era flat surface still works both ways: legacy kwargs
    (``ServeSimConfig(devices=4, faults="...", memory_blocks=64)``) merge
    into the sub-configs, and every legacy field name reads back through a
    property (``config.devices``), so ``dataclasses.replace`` and old
    pickles keep working.

    The default deadline is a *completion* SLO of 3 s, calibrated against
    the default corpus: autoregressive decoding meets it with modest
    headroom at light load (p95 decode ≈ 2.1 s), so the sustainable-QPS gap
    between methods measures speculation, not an impossible target.
    """

    method: str = "specasr-asp"
    pairing: str = "whisper"
    qps: float = 2.0
    num_requests: int = 48
    seed: int = 2025
    utterances: int = 32  # corpus size backing the request mix
    split: str = "test-clean"
    arrival: str = "poisson"  # or "uniform"
    deadline_ms: float = 3000.0
    max_batch: int = 4
    max_inflight: int = 8
    queue_capacity: int = 32
    overlap: float = 0.8
    batch_fraction: float = 0.0  # share of arrivals tagged batch-class
    cluster: ClusterSpec = ClusterSpec()
    chaos: ChaosSpec = ChaosSpec()
    memory: MemorySpec = MemorySpec()
    stream: StreamSpec = StreamSpec()

    def __init__(
        self,
        method: str = "specasr-asp",
        pairing: str = "whisper",
        qps: float = 2.0,
        num_requests: int = 48,
        seed: int = 2025,
        utterances: int = 32,
        split: str = "test-clean",
        arrival: str = "poisson",
        deadline_ms: float = 3000.0,
        max_batch: int = 4,
        max_inflight: int = 8,
        queue_capacity: int = 32,
        overlap: float = 0.8,
        batch_fraction: float = 0.0,
        cluster: ClusterSpec | None = None,
        chaos: ChaosSpec | None = None,
        memory: MemorySpec | None = None,
        stream: StreamSpec | None = None,
        **legacy,
    ) -> None:
        cluster = cluster if cluster is not None else ClusterSpec()
        chaos = chaos if chaos is not None else ChaosSpec()
        memory = memory if memory is not None else MemorySpec()
        stream = stream if stream is not None else StreamSpec()
        cluster_kw = {
            _CLUSTER_KWARGS[k]: legacy.pop(k)
            for k in list(legacy)
            if k in _CLUSTER_KWARGS
        }
        chaos_kw = {
            _CHAOS_KWARGS[k]: legacy.pop(k) for k in list(legacy) if k in _CHAOS_KWARGS
        }
        memory_kw = {
            _MEMORY_KWARGS[k]: legacy.pop(k)
            for k in list(legacy)
            if k in _MEMORY_KWARGS
        }
        stream_kw = {
            _STREAM_KWARGS[k]: legacy.pop(k)
            for k in list(legacy)
            if k in _STREAM_KWARGS
        }
        if legacy:
            raise TypeError(
                "ServeSimConfig got unexpected keyword arguments: "
                f"{sorted(legacy)}"
            )
        if cluster_kw:
            cluster = replace(cluster, **cluster_kw)
        if chaos_kw:
            chaos = replace(chaos, **chaos_kw)
        if memory_kw:
            memory = replace(memory, **memory_kw)
        if stream_kw:
            stream = replace(stream, **stream_kw)
        for name, value in (
            ("method", method),
            ("pairing", pairing),
            ("qps", qps),
            ("num_requests", num_requests),
            ("seed", seed),
            ("utterances", utterances),
            ("split", split),
            ("arrival", arrival),
            ("deadline_ms", deadline_ms),
            ("max_batch", max_batch),
            ("max_inflight", max_inflight),
            ("queue_capacity", queue_capacity),
            ("overlap", overlap),
            ("batch_fraction", batch_fraction),
            ("cluster", cluster),
            ("chaos", chaos),
            ("memory", memory),
            ("stream", stream),
        ):
            object.__setattr__(self, name, value)

    def __setstate__(self, state: dict) -> None:
        if (
            "cluster" not in state
            or "chaos" not in state
            or "memory" not in state
            or "stream" not in state
        ):
            # A pickle predating any sub-config (flat seed-era layout, or a
            # composed one from before a later sub-config existed): rebuild
            # through __init__, which folds flat names in and defaults the
            # rest.  Every sub-config field is guarded independently — the
            # CFG001 lint rule cross-checks this list against the fields.
            rebuilt = ServeSimConfig(**state)
            state = dict(rebuilt.__dict__)
        self.__dict__.update(state)

    # -- flat read surface (legacy field names) ----------------------------
    @property
    def devices(self) -> int | None:
        return self.cluster.devices

    @property
    def router(self) -> str:
        return self.cluster.router

    @property
    def pool_split(self) -> str:
        return self.cluster.pool_split

    @property
    def device_spec(self) -> str:
        return self.cluster.device_spec

    @property
    def faults(self) -> str:
        return self.chaos.faults

    @property
    def fault_seed(self) -> int:
        return self.chaos.fault_seed

    @property
    def max_retries(self) -> int:
        return self.chaos.max_retries

    @property
    def retry_backoff_ms(self) -> float:
        return self.chaos.retry_backoff_ms

    @property
    def straggler_k(self) -> float:
        return self.chaos.straggler_k

    @property
    def admission_deadline_ms(self) -> float | None:
        return self.chaos.admission_deadline_ms

    @property
    def batch_deadline_ms(self) -> float | None:
        return self.chaos.batch_deadline_ms

    @property
    def memory_blocks(self) -> int | None:
        return self.memory.device_blocks

    @property
    def block_size(self) -> int:
        return self.memory.block_size

    @property
    def prefix_sharing(self) -> bool:
        return self.memory.prefix_sharing

    @property
    def reprefill_ms_per_block(self) -> float:
        return self.memory.reprefill_ms_per_block

    @property
    def streaming(self) -> bool:
        return self.stream.enabled

    @property
    def rtf(self) -> float:
        return self.stream.rtf

    @property
    def chunk_s(self) -> float:
        return self.stream.chunk_s

    @property
    def lookahead_s(self) -> float:
        return self.stream.lookahead_s

    # -- derived configs ---------------------------------------------------
    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(
            max_batch=self.max_batch,
            max_inflight=self.max_inflight,
            queue_capacity=self.queue_capacity,
            overlap=self.overlap,
            max_retries=self.max_retries,
            retry_backoff_ms=self.retry_backoff_ms,
            straggler_factor=self.straggler_k,
            admission_deadline_ms=self.admission_deadline_ms,
            batch_deadline_ms=self.batch_deadline_ms,
        )

    def fault_plan(self) -> FaultPlan | None:
        """The injected fault plan, or None when the spec is empty."""
        if not self.faults.strip():
            return None
        return parse_fault_spec(self.faults, seed=self.fault_seed)

    def cluster_config(self) -> ClusterConfig:
        specs = parse_device_specs(self.device_spec) if self.device_spec else None
        return ClusterConfig(
            devices=self.devices,
            router=self.router,
            split=self.pool_split,
            device_specs=specs,
        )

    def memory_spec(self) -> MemorySpec:
        return self.memory

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(seed=self.seed, utterances=self.utterances)

    def with_qps(self, qps: float) -> "ServeSimConfig":
        return replace(self, qps=qps)


def build_decoder(config: ServeSimConfig, oracle_block_size: int | None = None):
    """The decoder a simulation serves with (fresh models, warm-able caches).

    ``oracle_block_size`` overrides the models' scoring granularity: ``1``
    pins the scalar per-position reference path, ``None`` keeps the default
    block-vectorised path.  Either way transcripts and billed latencies are
    bit-identical — the knob only moves host wall time (the bench_serve
    merged-router A/B measures exactly that).
    """
    draft, target = model_pair(
        config.pairing, shared_vocabulary(), oracle_block_size=oracle_block_size
    )
    return build_method(config.method, draft, target)


def simulate(
    config: ServeSimConfig,
    trace: Sequence[Arrival] | None = None,
    decoder=None,
) -> ServeReport:
    """Run one serve simulation.

    ``trace`` overrides the synthetic arrival process (trace-driven replay);
    ``decoder`` lets callers reuse one decoder — and its oracle caches —
    across many simulations (load searches, sweeps).
    """
    dataset = load_split(config.split, config.experiment_config())
    if trace is None:
        trace = make_trace(
            config.arrival,
            config.num_requests,
            config.qps,
            len(dataset),
            config.seed,
            config.batch_fraction,
            rtf=config.rtf if config.streaming else 0.0,
        )
        offered = config.qps
    else:
        offered = offered_qps(trace)
    if decoder is None:
        decoder = build_decoder(config)
    scheduler = ContinuousBatchScheduler(
        decoder,
        config.scheduler_config(),
        config.cluster_config(),
        faults=config.fault_plan(),
        memory=config.memory_spec(),
        stream=config.stream,
    )
    records = scheduler.run(trace, dataset)
    assert scheduler.last_stats is not None
    return ServeReport.from_records(
        config.method,
        records,
        scheduler.last_stats,
        config.deadline_ms,
        offered,
        batch_deadline_ms=config.batch_deadline_ms,
    )


def _sweep_job(config: ServeSimConfig) -> ServeReport:
    """Module-level job for worker pools (must be picklable)."""
    return simulate(config)


def sweep_qps(
    config: ServeSimConfig,
    qps_values: Sequence[float],
    executor=None,
) -> dict[float, ServeReport]:
    """Evaluate a grid of offered loads; keys follow ``qps_values`` order.

    ``executor`` (a :class:`~repro.harness.executor.CorpusExecutor`) fans the
    points out across its worker pool via :meth:`map_jobs`; results are
    identical to the serial loop.
    """
    configs = [config.with_qps(q) for q in qps_values]
    if executor is not None:
        reports = executor.map_jobs(_sweep_job, configs)
    else:
        decoder = build_decoder(config)
        reports = [simulate(c, decoder=decoder) for c in configs]
    return dict(zip(qps_values, reports, strict=True))


def max_sustainable_qps(
    config: ServeSimConfig,
    target_ratio: float = 0.95,
    start_qps: float = 0.5,
    qps_ceiling: float = 64.0,
    refine_steps: int = 6,
    decoder=None,
) -> tuple[float, dict[float, ServeReport]]:
    """Highest offered QPS with ``goodput_ratio >= target_ratio``.

    Brackets by doubling from ``start_qps``, then bisects ``refine_steps``
    times.  Returns ``(max_qps, evaluated_reports)``; ``max_qps`` is 0.0 when
    even the lightest probed load misses the SLO.  Deterministic: the probe
    sequence is a pure function of the arguments.  Pass ``decoder`` to reuse
    an already-built decoder (and its warm oracle caches) across the probes.
    """
    if start_qps <= 0:
        raise ValueError("start_qps must be positive")
    evaluated: dict[float, ServeReport] = {}
    if decoder is None:
        decoder = build_decoder(config)

    def sustainable(qps: float) -> bool:
        report = evaluated.get(qps)
        if report is None:
            report = simulate(config.with_qps(qps), decoder=decoder)
            evaluated[qps] = report
        return report.goodput_ratio >= target_ratio

    best_ok = 0.0
    qps = start_qps
    first_fail = None
    while qps <= qps_ceiling:
        if sustainable(qps):
            best_ok = qps
            qps *= 2.0
        else:
            first_fail = qps
            break
    if first_fail is None:
        # Sustained every probe up to the ceiling; report the last success.
        return best_ok, evaluated
    low, high = best_ok, first_fail
    for _ in range(refine_steps):
        mid = (low + high) / 2.0
        if mid <= 0:
            break
        if sustainable(mid):
            best_ok = mid
            low = mid
        else:
            high = mid
    return best_ok, evaluated
