"""Serving layer: request streams, continuous batching, SLO reports.

Turns the offline corpus grids of :mod:`repro.harness` into the workload the
paper actually targets — live ASR traffic.  An event-driven simulator feeds
Poisson/trace arrivals through a bounded admission queue into a continuous
micro-batch scheduler that multiplexes step-resumable decode sessions on one
simulated device, and the report answers the deployment question: how much
traffic does each decoding method sustain at a fixed latency SLO?
"""

from repro.serving.arrivals import (
    Arrival,
    load_trace,
    make_trace,
    offered_qps,
    poisson_trace,
    save_trace,
    uniform_trace,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.report import ServeReport
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_PENDING,
    STATUS_REJECTED,
    RequestRecord,
    ServeRequest,
)
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    SchedulerConfig,
    ScheduleStats,
)
from repro.serving.simulator import (
    ServeSimConfig,
    build_decoder,
    max_sustainable_qps,
    simulate,
    sweep_qps,
)

__all__ = [
    "AdmissionQueue",
    "Arrival",
    "ContinuousBatchScheduler",
    "RequestRecord",
    "STATUS_COMPLETED",
    "STATUS_PENDING",
    "STATUS_REJECTED",
    "ScheduleStats",
    "SchedulerConfig",
    "ServeReport",
    "ServeRequest",
    "ServeSimConfig",
    "build_decoder",
    "load_trace",
    "make_trace",
    "max_sustainable_qps",
    "offered_qps",
    "poisson_trace",
    "save_trace",
    "simulate",
    "sweep_qps",
]
