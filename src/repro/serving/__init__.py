"""Serving layer: request streams, cluster scheduling, SLO reports.

Turns the offline corpus grids of :mod:`repro.harness` into the workload the
paper actually targets — live ASR traffic.  An event-driven simulator feeds
Poisson/trace arrivals through a bounded admission queue into a continuous
micro-batch scheduler that places draft/verify decode *phases* across a
simulated accelerator cluster (colocated sharding, draft/target
disaggregation, or merged cross-request verification), and the report
answers the deployment question: how much traffic does each decoding method
sustain at a fixed latency SLO, on how many devices?
"""

from repro.serving.arrivals import (
    Arrival,
    load_trace,
    make_trace,
    offered_qps,
    poisson_trace,
    save_trace,
    uniform_trace,
)
from repro.serving.devices import (
    MODEL_SWITCH_COST,
    Device,
    DeviceSpec,
    format_device_specs,
    make_devices,
    parse_device_specs,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.report import ServeReport
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_PENDING,
    STATUS_REJECTED,
    RequestRecord,
    ServeRequest,
)
from repro.serving.router import (
    ROUTER_COLOCATED,
    ROUTER_DISAGGREGATED,
    ROUTER_MERGED,
    ROUTER_POLICIES,
    ROUTER_REGISTRY,
    SPLIT_BALANCED,
    SPLIT_FIXED,
    SPLIT_POLICIES,
    ClusterConfig,
    build_router,
    measure_draft_share,
    normalize_router,
    plan_pool_split,
)
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    SchedulerConfig,
    ScheduleStats,
)
from repro.serving.simulator import (
    ServeSimConfig,
    build_decoder,
    max_sustainable_qps,
    simulate,
    sweep_qps,
)

__all__ = [
    "AdmissionQueue",
    "Arrival",
    "ClusterConfig",
    "ContinuousBatchScheduler",
    "Device",
    "DeviceSpec",
    "MODEL_SWITCH_COST",
    "ROUTER_COLOCATED",
    "ROUTER_DISAGGREGATED",
    "ROUTER_MERGED",
    "ROUTER_POLICIES",
    "ROUTER_REGISTRY",
    "RequestRecord",
    "SPLIT_BALANCED",
    "SPLIT_FIXED",
    "SPLIT_POLICIES",
    "STATUS_COMPLETED",
    "STATUS_PENDING",
    "STATUS_REJECTED",
    "ScheduleStats",
    "SchedulerConfig",
    "ServeReport",
    "ServeRequest",
    "ServeSimConfig",
    "build_decoder",
    "build_router",
    "format_device_specs",
    "load_trace",
    "make_devices",
    "make_trace",
    "max_sustainable_qps",
    "measure_draft_share",
    "normalize_router",
    "offered_qps",
    "parse_device_specs",
    "plan_pool_split",
    "poisson_trace",
    "save_trace",
    "simulate",
    "sweep_qps",
]
