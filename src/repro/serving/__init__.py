"""Serving layer: request streams, cluster scheduling, SLO reports.

Turns the offline corpus grids of :mod:`repro.harness` into the workload the
paper actually targets — live ASR traffic.  An event-driven simulator feeds
Poisson/trace arrivals through a bounded admission queue into a continuous
micro-batch scheduler that places draft/verify decode *phases* across a
simulated accelerator cluster (colocated sharding, draft/target
disaggregation, or merged cross-request verification), and the report
answers the deployment question: how much traffic does each decoding method
sustain at a fixed latency SLO, on how many devices?

A seeded :class:`~repro.serving.faults.FaultPlan` injects chaos — device
crashes with warm restarts, stall windows, straggler slowdowns, transient
phase errors — and the scheduler recovers deterministically: failed phases
requeue with bounded exponential backoff, pools re-plan on membership
change, stragglers are duplicated first-finisher-wins, and overload sheds
work by priority class instead of blowing every SLO at once.

Memory is a first-class scheduling constraint: a paged KV-block allocator
(:mod:`repro.serving.memory`) bills draft- and target-model cache residency
per session, gates dispatch on free blocks, LRU-evicts idle sessions under
pressure (resume pays a simulated re-prefill), and shares committed prefix
blocks copy-on-write across requests decoding the same utterance.
"""

# memory is a stdlib-only leaf; importing it first keeps these names
# resolvable even while the heavier simulator imports below initialise.
from repro.serving.memory import (
    DEFAULT_BLOCK_SIZE,
    ClusterKVMemory,
    KVCacheTracker,
    MemorySpec,
)
from repro.serving.arrivals import (
    Arrival,
    chunk_schedule,
    load_trace,
    make_trace,
    offered_qps,
    poisson_trace,
    save_trace,
    uniform_trace,
)
from repro.serving.devices import (
    MODEL_SWITCH_COST,
    Device,
    DeviceSpec,
    format_device_specs,
    make_devices,
    parse_device_specs,
)
from repro.serving.faults import (
    DeviceCrash,
    DeviceFaultProfile,
    DeviceSlowdown,
    DeviceStall,
    FaultPlan,
    PhaseErrorRate,
    RetryPolicy,
    format_fault_plan,
    parse_fault_spec,
)
from repro.serving.queue import AdmissionQueue
from repro.serving.report import ServeReport, StreamingSummary
from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_CLASSES,
    PRIORITY_INTERACTIVE,
    SHED_CAPACITY,
    SHED_DEADLINE,
    SHED_MEMORY,
    SHED_RETRIES,
    STATUS_COMPLETED,
    STATUS_PENDING,
    STATUS_REJECTED,
    STATUS_SHED,
    RequestRecord,
    ServeRequest,
    priority_rank,
)
from repro.serving.router import (
    ROUTER_COLOCATED,
    ROUTER_DISAGGREGATED,
    ROUTER_MERGED,
    ROUTER_POLICIES,
    ROUTER_REGISTRY,
    SPLIT_BALANCED,
    SPLIT_FIXED,
    SPLIT_POLICIES,
    ClusterConfig,
    build_router,
    measure_draft_share,
    normalize_router,
    plan_pool_split,
)
from repro.serving.scheduler import (
    ContinuousBatchScheduler,
    SchedulerConfig,
    ScheduleStats,
    StreamSpec,
)
from repro.serving.simulator import (
    ChaosSpec,
    ClusterSpec,
    ServeSimConfig,
    build_decoder,
    max_sustainable_qps,
    simulate,
    sweep_qps,
)

__all__ = [
    "AdmissionQueue",
    "Arrival",
    "ChaosSpec",
    "ClusterConfig",
    "ClusterKVMemory",
    "ClusterSpec",
    "ContinuousBatchScheduler",
    "DEFAULT_BLOCK_SIZE",
    "Device",
    "DeviceCrash",
    "DeviceFaultProfile",
    "DeviceSlowdown",
    "DeviceSpec",
    "DeviceStall",
    "FaultPlan",
    "KVCacheTracker",
    "MODEL_SWITCH_COST",
    "MemorySpec",
    "PRIORITY_BATCH",
    "PRIORITY_CLASSES",
    "PRIORITY_INTERACTIVE",
    "PhaseErrorRate",
    "ROUTER_COLOCATED",
    "ROUTER_DISAGGREGATED",
    "ROUTER_MERGED",
    "ROUTER_POLICIES",
    "ROUTER_REGISTRY",
    "RequestRecord",
    "RetryPolicy",
    "SHED_CAPACITY",
    "SHED_DEADLINE",
    "SHED_MEMORY",
    "SHED_RETRIES",
    "SPLIT_BALANCED",
    "SPLIT_FIXED",
    "SPLIT_POLICIES",
    "STATUS_COMPLETED",
    "STATUS_PENDING",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "ScheduleStats",
    "SchedulerConfig",
    "ServeReport",
    "ServeRequest",
    "ServeSimConfig",
    "StreamSpec",
    "StreamingSummary",
    "build_decoder",
    "build_router",
    "chunk_schedule",
    "format_device_specs",
    "format_fault_plan",
    "load_trace",
    "make_devices",
    "make_trace",
    "max_sustainable_qps",
    "measure_draft_share",
    "normalize_router",
    "offered_qps",
    "parse_device_specs",
    "parse_fault_spec",
    "plan_pool_split",
    "poisson_trace",
    "priority_rank",
    "save_trace",
    "simulate",
    "sweep_qps",
    "uniform_trace",
]
