"""Placement policies: which device runs which decode phase.

Three policies, all deterministic (pure functions of the arrival trace and
the cluster spec, so a fixed trace schedules identically on every run):

* ``colocated`` — K-way sharding.  Each request has one home device
  (``index % K``); its draft *and* verify phases both run there.  This is
  the classic replicated deployment: more devices means more shards, but a
  device batch can mix draft and verify phases, which serialise across
  models (see :mod:`repro.serving.devices`).

* ``disaggregated`` — draft-pool / target-pool split.  A request's draft
  phases run in the draft pool and its verify phases in the target pool,
  so drafting for one round can proceed while the target pool verifies
  another request's previous round (the pipeline the SpecASR setting
  exposes: the small draft model and the large target model live on
  different hardware).  Pool devices only ever run one model, so their
  batches never pay cross-model serialisation.

* ``merged`` — disaggregated placement, plus **merged cross-request
  verification**: every verify phase co-scheduled on a target device
  coalesces into one batched target pass (a single weight read — overlap 1
  for the verify group), the batched-verification win the throughput
  framing of dLLM-ASR points at.

Policies live in ``ROUTER_REGISTRY`` (name → class); ``build_router`` and
:class:`ClusterConfig` validation both read it, so registering a policy is
one dict entry — there is no dispatch chain a new policy can silently miss.

**Pool planning.**  The draft/target split is itself a placement decision:

* ``split="fixed"`` keeps the legacy ``K // 2`` prefix split (odd device to
  the target pool — verify is the heavy side).
* ``split="balanced"`` sizes the pools from the *workload*: the scheduler
  measures the draft:verify cost ratio of the decoder on sample utterances
  (``measure_draft_share``) and :func:`plan_pool_split` picks the split
  whose draft-pool share of total cluster speed best matches the draft
  share of total decode cost.  Devices are considered slowest-first for the
  draft pool, so on a heterogeneous cluster the fast parts verify — the
  DistServe/Splitwise-style answer to asymmetric phase compute.

**Within-pool routing** is least-loaded instead of ``request_index %
len(pool)``: at each dispatch round the router projects every pool
device's next free time and sends each waiting phase to the device with
the earliest projection (ties broken by higher speed, then device index —
fully deterministic).  On heterogeneous pools this keeps slow devices from
becoming static hash-bucket hotspots.

:class:`ClusterConfig` is the serialisable knob set threaded through
:class:`~repro.serving.simulator.ServeSimConfig` and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.decoding.base import PHASE_DRAFT, PhaseOutcome, begin_decode
from repro.serving.devices import Device, DeviceSpec, make_devices

ROUTER_COLOCATED = "colocated"
ROUTER_DISAGGREGATED = "disaggregated"
ROUTER_MERGED = "merged"

#: CLI-friendly aliases.
ROUTER_ALIASES = {"disagg": ROUTER_DISAGGREGATED}

SPLIT_FIXED = "fixed"
SPLIT_BALANCED = "balanced"

#: Pool-split policies accepted by :class:`ClusterConfig`.
SPLIT_POLICIES = (SPLIT_FIXED, SPLIT_BALANCED)

#: Draft share :func:`plan_pool_split` assumes when no measurement is
#: available (an empty trace, or a caller that never sampled the decoder).
DEFAULT_DRAFT_SHARE = 0.5

#: Utterances sampled by the scheduler to measure the draft:verify ratio.
PLANNER_SAMPLE_UTTERANCES = 3


def normalize_router(name: str) -> str:
    """Canonical policy name (accepts the ``disagg`` shorthand)."""
    return ROUTER_ALIASES.get(name, name)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated accelerator cluster.

    ``devices`` may be omitted (``None``): it defaults to 1, or to
    ``len(device_specs)`` when a heterogeneous spec list is provided.  An
    *explicit* count that disagrees with the spec list — including 1 — is
    an error, never silently reinterpreted.  ``split`` picks the
    draft/target pool-sizing policy for disaggregating routers
    (``colocated`` has no pools and ignores it).
    """

    devices: int | None = None  # resolved to a concrete count in __post_init__
    router: str = ROUTER_COLOCATED
    split: str = SPLIT_FIXED
    device_specs: tuple[DeviceSpec, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "router", normalize_router(self.router))
        if self.device_specs is not None:
            specs = tuple(self.device_specs)
            object.__setattr__(self, "device_specs", specs)
            if not specs:
                raise ValueError("device_specs must not be empty")
            if self.devices is None:
                object.__setattr__(self, "devices", len(specs))
            elif self.devices != len(specs):
                raise ValueError(
                    f"devices={self.devices} does not match the "
                    f"{len(specs)}-entry device spec list"
                )
        elif self.devices is None:
            object.__setattr__(self, "devices", 1)
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.router not in ROUTER_REGISTRY:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"use one of {', '.join(ROUTER_REGISTRY)}"
            )
        if self.split not in SPLIT_POLICIES:
            raise ValueError(
                f"unknown split policy {self.split!r}; "
                f"use one of {', '.join(SPLIT_POLICIES)}"
            )
        if self.router != ROUTER_COLOCATED and self.devices < 2:
            raise ValueError(
                f"router {self.router!r} needs a draft pool and a target "
                f"pool — at least 2 devices, got {self.devices}"
            )


def plan_pool_split(
    speeds: Sequence[float],
    draft_share: float,
    memory_blocks: Sequence[int | None] | None = None,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Partition device indices into ``(draft_pool, target_pool)``.

    ``draft_share`` is the fraction of total decode cost spent in draft
    phases (0 = all verify, 1 = all draft).  Candidate draft pools are
    prefixes of the devices ordered lightest-first (ties by index), so
    heavyweight parts default to the heavy verify side; the chosen prefix
    is the one whose share of total cluster capability is closest to
    ``draft_share``.  Ties prefer the smaller draft pool (verify is the
    heavy side), which also makes the choice deterministic on all-equal
    clusters.  Both pools always keep at least one device; degenerate
    shares clamp to the 1-device / (K-1)-device extremes.  Returned index
    tuples are sorted, so pool iteration order never depends on the
    planner's internal ordering.

    **Memory-aware placement.**  With ``memory_blocks`` (per-device KV
    capacities) on a non-uniform cluster, a device's capability is the
    mean of its speed share and its block share — a draft pool must hold
    the draft-model KV of every in-flight session, so its block budget
    sizes it as much as its speed.  Uniform or absent capacities reduce to
    the pure speed planner, which keeps memory-disabled (and ample-uniform)
    runs bit-identical to the legacy split.
    """
    if len(speeds) < 2:
        raise ValueError("pool planning needs at least 2 devices")
    if not 0.0 <= draft_share <= 1.0:
        raise ValueError(f"draft_share must be in [0, 1], got {draft_share}")
    weights = list(speeds)
    if memory_blocks is not None:
        if len(memory_blocks) != len(speeds):
            raise ValueError(
                f"memory_blocks has {len(memory_blocks)} entries for "
                f"{len(speeds)} devices"
            )
        blocks = [b for b in memory_blocks if b is not None]
        if len(blocks) == len(speeds) and len(set(blocks)) > 1:
            total_speed = sum(speeds)
            total_blocks = sum(blocks)
            weights = [
                0.5 * (speed / total_speed) + 0.5 * (cap / total_blocks)
                for speed, cap in zip(speeds, blocks, strict=True)
            ]
    order = sorted(range(len(weights)), key=lambda i: (weights[i], i))
    total = sum(weights)
    best_k = 1
    best_error = None
    prefix_weight = 0.0
    for k in range(1, len(weights)):
        prefix_weight += weights[order[k - 1]]
        error = abs(prefix_weight / total - draft_share)
        if best_error is None or error < best_error:
            best_error = error
            best_k = k
    draft = tuple(sorted(order[:best_k]))
    target = tuple(sorted(order[best_k:]))
    return draft, target


def measure_draft_share(decoder, utterances) -> float:
    """Fraction of decode cost spent in draft phases, measured by decoding.

    Pure simulation: phase costs depend only on (decoder, utterance), so
    the measurement is deterministic and placement-independent — running
    it never perturbs the transcripts or ``decode_ms`` the determinism
    contract guards (and the decoder's oracle caches make the later
    serving run of the same utterances cheap).
    """
    draft = 0.0
    total = 0.0
    for utterance in utterances:
        stepper = begin_decode(decoder, utterance)
        while not stepper.done:
            outcome = stepper.step_phase()
            total += outcome.ms
            if outcome.phase == PHASE_DRAFT:
                draft += outcome.ms
    if total <= 0:
        return 0.0
    return draft / total


class ColocatedRouter:
    """K-way sharding: a request's whole decode lives on one device."""

    name = ROUTER_COLOCATED
    merge_verify = False

    def __init__(
        self,
        devices: list[Device],
        split: str = SPLIT_FIXED,
        draft_share: float | None = None,
        memory_blocks: Sequence[int | None] | None = None,
    ) -> None:
        if not devices:
            raise ValueError("router needs at least one device")
        self.devices = devices
        self._members = list(devices)
        self._available: set[int] | None = None

    def plan_round(
        self,
        now_ms: float,
        available: Sequence[int] | None = None,
        speeds: dict[int, float] | None = None,
    ) -> None:
        """Record which devices may take work this round (None = all)."""
        self._available = None if available is None else set(available)

    def route(self, request_index: int, phase: PhaseOutcome) -> Device | None:
        """Home device of the request, or None while it is unavailable."""
        if not self._members:
            return None
        device = self._members[request_index % len(self._members)]
        if self._available is not None and device.index not in self._available:
            return None
        return device

    def on_membership_change(self, alive_indices: Sequence[int]) -> None:
        """Re-shard over the surviving devices after a crash or restart."""
        alive = set(alive_indices)
        self._members = [d for d in self.devices if d.index in alive]

    def pool_devices(self, phase: PhaseOutcome) -> list[Device]:
        """Devices eligible for ``phase`` this round (straggler peers)."""
        if self._available is None:
            return list(self._members)
        return [d for d in self._members if d.index in self._available]

    def device_roles(self) -> tuple[str, ...]:
        """Per-device pool membership, index order (for reports)."""
        member_ids = {d.index for d in self._members}
        return tuple(
            "any" if d.index in member_ids else "down" for d in self.devices
        )


class DisaggregatedRouter:
    """Draft pool / target pool with least-loaded routing in each pool."""

    name = ROUTER_DISAGGREGATED
    merge_verify = False

    def __init__(
        self,
        devices: list[Device],
        split: str = SPLIT_FIXED,
        draft_share: float | None = None,
        memory_blocks: Sequence[int | None] | None = None,
    ) -> None:
        if len(devices) < 2:
            raise ValueError("disaggregation needs at least 2 devices")
        if split not in SPLIT_POLICIES:
            raise ValueError(
                f"unknown split policy {split!r}; use one of "
                f"{', '.join(SPLIT_POLICIES)}"
            )
        self.devices = devices
        self._split = split
        self._draft_share = draft_share
        self._memory_blocks = (
            None
            if memory_blocks is None
            else {d.index: b for d, b in zip(devices, memory_blocks, strict=True)}
        )
        self._available: set[int] | None = None
        self._projected: dict[int, float] = {}
        self._verify_peak: dict[int, float] = {}
        self._speeds: dict[int, float] | None = None
        self._plan_pools(list(devices))

    def _plan_pools(self, members: list[Device]) -> None:
        """(Re)compute the draft/target pools over ``members``.

        With one survivor, both pools collapse onto it (degraded colocated
        operation); with none, both pools empty and every route waits.
        """
        if len(members) >= 2:
            if self._split == SPLIT_FIXED:
                # Verify is the heavier side (the target model is the big
                # one), so an odd device goes to the target pool.
                cut = len(members) // 2
                draft_pos = tuple(range(cut))
                target_pos = tuple(range(cut, len(members)))
            else:
                share = (
                    DEFAULT_DRAFT_SHARE
                    if self._draft_share is None
                    else self._draft_share
                )
                draft_pos, target_pos = plan_pool_split(
                    [device.speed for device in members],
                    share,
                    memory_blocks=(
                        None
                        if self._memory_blocks is None
                        else [self._memory_blocks[d.index] for d in members]
                    ),
                )
            self.draft_pool = [members[i] for i in draft_pos]
            self.target_pool = [members[i] for i in target_pos]
        else:
            self.draft_pool = list(members)
            self.target_pool = list(members)
        draft_ids = {d.index for d in self.draft_pool}
        target_ids = {d.index for d in self.target_pool}
        roles = []
        for device in self.devices:
            in_draft = device.index in draft_ids
            in_target = device.index in target_ids
            if in_draft and in_target:
                roles.append("any")
            elif in_draft:
                roles.append("draft")
            elif in_target:
                roles.append("target")
            else:
                roles.append("down")
        self._roles = tuple(roles)

    def on_membership_change(self, alive_indices: Sequence[int]) -> None:
        """Re-plan both pools over the devices now alive."""
        alive = set(alive_indices)
        self._plan_pools([d for d in self.devices if d.index in alive])

    def plan_round(
        self,
        now_ms: float,
        available: Sequence[int] | None = None,
        speeds: dict[int, float] | None = None,
    ) -> None:
        """Reset per-round load projections to the devices' free times.

        ``available`` restricts routing to those device indices for this
        round (transient stalls); ``speeds`` overrides per-device speeds in
        the projections (slowdown faults), leaving nominal speeds in place
        when omitted so fault-free routing is bit-identical to before.
        """
        self._available = None if available is None else set(available)
        self._speeds = speeds
        self._projected = {
            device.index: max(now_ms, device.free_at)
            for device in {
                d.index: d for d in (*self.draft_pool, *self.target_pool)
            }.values()
        }
        self._verify_peak = {}

    def _speed(self, device: Device) -> float:
        if self._speeds is not None:
            return self._speeds.get(device.index, device.speed)
        return device.speed

    def _eligible(self, pool: list[Device]) -> list[Device]:
        pool = [d for d in pool if self._speed(d) > 0]
        if self._available is None:
            return pool
        return [d for d in pool if d.index in self._available]

    def _completion(self, device: Device, cost_ms: float, coalesce: bool) -> float:
        """Projected finish time of a ``cost_ms`` phase routed to ``device``.

        Ordinarily each routed phase extends the device's projection by its
        full cost.  Under merged verification, co-scheduled verify phases on
        one device coalesce to their critical path, so an extra verify phase
        only extends the projection past the round's current peak — which is
        what makes stacking verify work on one target device (the merged
        policy's whole point) look as cheap to the router as it is to
        :meth:`~repro.serving.devices.Device.batch_busy_ms`.
        """
        projected = self._projected.get(device.index, device.free_at)
        if not coalesce:
            return projected + cost_ms
        peak = self._verify_peak.get(device.index, 0.0)
        return projected - peak + max(peak, cost_ms)

    def route(self, request_index: int, phase: PhaseOutcome) -> Device | None:
        """Least-loaded *available* device of the phase's pool (or None).

        Each waiting phase goes to the pool device where it would finish
        earliest (ties: higher speed, then device index — deterministic on
        any cluster shape), and the projection then charges that device, so
        one dispatch round spreads phases across equally-free pool devices
        instead of stacking them on a single argmin — except coalescible
        merged-verify phases, which deliberately stack (see
        :meth:`_completion`).  Returns None when the whole pool is dead or
        stalled this round; the phase stays queued.
        """
        pool = self._eligible(
            self.draft_pool if phase.phase == PHASE_DRAFT else self.target_pool
        )
        if not pool:
            return None
        coalesce = self.merge_verify and phase.phase != PHASE_DRAFT
        device = min(
            pool,
            key=lambda d: (
                self._completion(d, phase.ms / self._speed(d), coalesce),
                -self._speed(d),
                d.index,
            ),
        )
        cost = phase.ms / self._speed(device)
        self._projected[device.index] = self._completion(device, cost, coalesce)
        if coalesce:
            peak = self._verify_peak.get(device.index, 0.0)
            self._verify_peak[device.index] = max(peak, cost)
        return device

    def pool_devices(self, phase: PhaseOutcome) -> list[Device]:
        """Devices eligible for ``phase`` this round (straggler peers)."""
        return self._eligible(
            self.draft_pool if phase.phase == PHASE_DRAFT else self.target_pool
        )

    def device_roles(self) -> tuple[str, ...]:
        """Per-device pool membership, index order (for reports)."""
        return self._roles


class MergedVerifyRouter(DisaggregatedRouter):
    """Disaggregated placement + coalesced cross-request verify passes."""

    name = ROUTER_MERGED
    merge_verify = True


#: Policy name → router class.  ``build_router`` and ``ClusterConfig``
#: validation both read this mapping, so a new policy is exactly one
#: entry here — no dispatch chain to forget a branch in.
ROUTER_REGISTRY: dict[str, type] = {
    ROUTER_COLOCATED: ColocatedRouter,
    ROUTER_DISAGGREGATED: DisaggregatedRouter,
    ROUTER_MERGED: MergedVerifyRouter,
}

#: Placement policies accepted by :class:`ClusterConfig`.
ROUTER_POLICIES = tuple(ROUTER_REGISTRY)


def build_router(
    config: ClusterConfig,
    overlap: float,
    draft_share: float | None = None,
    memory_blocks: Sequence[int | None] | None = None,
):
    """Devices + router for one scheduler run.

    Returns ``(devices, router)``; the devices are freshly timed (state is
    per-run, never shared between simulations).  ``draft_share`` feeds the
    balanced pool planner (measured by the scheduler from the decoder; see
    :func:`measure_draft_share`), and ``memory_blocks`` — the resolved
    per-device KV capacities when memory accounting is on — makes the
    balanced planner weigh block budgets alongside speed.
    """
    devices = make_devices(config.devices, overlap, specs=config.device_specs)
    router_cls = ROUTER_REGISTRY.get(config.router)
    if router_cls is None:
        raise ValueError(f"unknown router policy {config.router!r}")
    router = router_cls(
        devices,
        split=config.split,
        draft_share=draft_share,
        memory_blocks=memory_blocks,
    )
    return devices, router
