"""Placement policies: which device runs which decode phase.

Three policies, all deterministic (pure functions of request index and
phase kind, so a fixed trace schedules identically on every run):

* ``colocated`` — K-way sharding.  Each request has one home device
  (``index % K``); its draft *and* verify phases both run there.  This is
  the classic replicated deployment: more devices means more shards, but a
  device batch can mix draft and verify phases, which serialise across
  models (see :mod:`repro.serving.devices`).

* ``disaggregated`` — draft-pool / target-pool split with round handoff.
  The first ``K // 2`` devices form the draft pool, the rest the target
  pool; a request's draft phases run on its home draft device and its
  verify phases on its home target device, so drafting for one round can
  proceed while the target pool verifies another request's previous round
  (the pipeline the SpecASR setting exposes: the small draft model and the
  large target model live on different hardware).  Pool devices only ever
  run one model, so their batches never pay cross-model serialisation.

* ``merged`` — disaggregated placement, plus **merged cross-request
  verification**: every verify phase co-scheduled on a target device
  coalesces into one batched target pass (a single weight read — overlap 1
  for the verify group), the batched-verification win the throughput
  framing of dLLM-ASR points at.

:class:`ClusterConfig` is the serialisable knob set threaded through
:class:`~repro.serving.simulator.ServeSimConfig` and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decoding.base import PHASE_DRAFT
from repro.serving.devices import Device, make_devices

ROUTER_COLOCATED = "colocated"
ROUTER_DISAGGREGATED = "disaggregated"
ROUTER_MERGED = "merged"

#: Placement policies accepted by :class:`ClusterConfig`.
ROUTER_POLICIES = (ROUTER_COLOCATED, ROUTER_DISAGGREGATED, ROUTER_MERGED)

#: CLI-friendly aliases.
ROUTER_ALIASES = {"disagg": ROUTER_DISAGGREGATED}


def normalize_router(name: str) -> str:
    """Canonical policy name (accepts the ``disagg`` shorthand)."""
    return ROUTER_ALIASES.get(name, name)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated accelerator cluster."""

    devices: int = 1
    router: str = ROUTER_COLOCATED

    def __post_init__(self) -> None:
        object.__setattr__(self, "router", normalize_router(self.router))
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"use one of {', '.join(ROUTER_POLICIES)}"
            )
        if self.router != ROUTER_COLOCATED and self.devices < 2:
            raise ValueError(
                f"router {self.router!r} needs a draft pool and a target "
                f"pool — at least 2 devices, got {self.devices}"
            )


class ColocatedRouter:
    """K-way sharding: a request's whole decode lives on one device."""

    name = ROUTER_COLOCATED
    merge_verify = False

    def __init__(self, devices: list[Device]) -> None:
        if not devices:
            raise ValueError("router needs at least one device")
        self.devices = devices

    def route(self, request_index: int, phase: str) -> Device:
        return self.devices[request_index % len(self.devices)]


class DisaggregatedRouter:
    """Draft pool / target pool with per-request affinity in each pool."""

    name = ROUTER_DISAGGREGATED
    merge_verify = False

    def __init__(self, devices: list[Device]) -> None:
        if len(devices) < 2:
            raise ValueError("disaggregation needs at least 2 devices")
        # Verify is the heavier side (the target model is the big one), so
        # an odd device goes to the target pool.
        split = len(devices) // 2
        self.draft_pool = devices[:split]
        self.target_pool = devices[split:]

    def route(self, request_index: int, phase: str) -> Device:
        pool = self.draft_pool if phase == PHASE_DRAFT else self.target_pool
        return pool[request_index % len(pool)]


class MergedVerifyRouter(DisaggregatedRouter):
    """Disaggregated placement + coalesced cross-request verify passes."""

    name = ROUTER_MERGED
    merge_verify = True


def build_router(config: ClusterConfig, overlap: float):
    """Devices + router for one scheduler run.

    Returns ``(devices, router)``; the devices are freshly timed (state is
    per-run, never shared between simulations).
    """
    devices = make_devices(config.devices, overlap)
    if config.router == ROUTER_COLOCATED:
        return devices, ColocatedRouter(devices)
    if config.router == ROUTER_DISAGGREGATED:
        return devices, DisaggregatedRouter(devices)
    if config.router == ROUTER_MERGED:
        return devices, MergedVerifyRouter(devices)
    raise ValueError(f"unknown router policy {config.router!r}")
