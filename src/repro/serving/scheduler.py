"""Cluster event loop: continuous batching over a simulated accelerator pool.

The scheduler multiplexes many in-flight decodes across K simulated devices
at **phase granularity**: every draft→verify round is two schedulable units
(a draft-model phase and a target-model phase, see
:class:`~repro.decoding.base.PhaseOutcome`), and a placement policy
(:mod:`repro.serving.router`) decides which device runs which phase —
``colocated`` K-way sharding, ``disaggregated`` draft-pool/target-pool with
round handoff, or ``merged`` cross-request verification.  Scheduling stays
iteration-level (the Orca/vLLM "continuous batching" discipline): a device
runs one micro-batch of up to ``max_batch`` ready phases, and arrivals are
admitted at every simulation event instead of waiting for a batch to drain.

The loop is a discrete-event simulation.  Its three event sources — request
arrivals, batch completions, and the admissions/dispatches they enable — are
processed in deterministic order (devices by index, waiting phases FIFO by
``(ready time, request index)``), so one arrival trace schedules identically
on every run, for every device count, device-spec mix, split policy and
router policy.  Under ``split="balanced"`` the scheduler first measures the
decoder's draft:verify cost ratio on the trace's leading utterances
(:func:`~repro.serving.router.measure_draft_share` — a pure, deterministic
simulation) and hands it to the workload-aware pool planner.

Device time for one micro-batch is priced by
:meth:`~repro.serving.devices.Device.batch_busy_ms`: the ``overlap``
discount applies within each ``(model, phase)`` group of the batch, groups
serialise (a draft-model pass and a target-model pass cannot share a
kernel).  The ``merged`` policy coalesces each verify group into a single
batched target pass.

Determinism: given one arrival trace, every quantity here is a pure function
of the trace, the decoders and the cluster shape — no wall clock, no RNG.
Transcripts and per-request ``decode_ms`` are additionally *scheduler-
independent* (they depend only on the method and the utterance), which the
determinism suite asserts across batch sizes, device counts and router
policies.

Run-to-completion FIFO serving — the baseline continuous batching is usually
compared against — is the ``max_batch=1, max_inflight=1`` corner of the same
scheduler on a 1-device colocated cluster.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.data.corpus import Dataset
from repro.decoding.base import DecodeStepper, PhaseOutcome, begin_decode
from repro.serving.arrivals import Arrival
from repro.serving.devices import Device
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    STATUS_COMPLETED,
    RequestRecord,
    ServeRequest,
)
from repro.serving.router import (
    PLANNER_SAMPLE_UTTERANCES,
    ROUTER_COLOCATED,
    SPLIT_BALANCED,
    ClusterConfig,
    build_router,
    measure_draft_share,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the serving loop."""

    max_batch: int = 4  # phases co-scheduled per device iteration
    max_inflight: int = 8  # concurrent decode sessions held open
    queue_capacity: int = 32  # admission queue bound (backpressure)
    overlap: float = 0.8  # batching efficiency in [0, 1]

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_inflight < self.max_batch:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_batch "
                f"({self.max_batch})"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate facts about one scheduler run."""

    sim_end_ms: float  # when the last request finished
    device_busy_ms: float  # total occupancy summed over devices
    batches: int  # device iterations executed (all devices)
    rounds: int  # phases executed (sum of batch sizes)
    peak_queue_depth: int
    rejected: int
    devices: int = 1  # cluster size
    per_device_busy_ms: tuple[float, ...] = ()
    device_speeds: tuple[float, ...] = ()  # relative speed per device
    device_roles: tuple[str, ...] = ()  # pool membership per device
    draft_share: float | None = None  # measured ratio fed to the planner

    @property
    def device_utilisation(self) -> float:
        """Mean busy fraction across the cluster (0.0 on empty runs)."""
        if self.sim_end_ms <= 0 or self.devices < 1:
            return 0.0
        return self.device_busy_ms / (self.sim_end_ms * self.devices)

    @property
    def mean_batch_occupancy(self) -> float:
        """Phases per device iteration (0.0 on empty runs)."""
        if self.batches == 0:
            return 0.0
        return self.rounds / self.batches


class _Active:
    """One in-flight request: its record, resumable decode, and next phase."""

    __slots__ = ("record", "stepper", "phase", "ready_ms", "running")

    def __init__(
        self, record: RequestRecord, stepper: DecodeStepper, ready_ms: float
    ) -> None:
        self.record = record
        self.stepper = stepper
        self.phase: PhaseOutcome = stepper.step_phase()  # next phase to place
        self.ready_ms = ready_ms  # when that phase became runnable
        self.running = False  # currently inside a device batch


class ContinuousBatchScheduler:
    """Serve an arrival trace with one decoder on a simulated cluster."""

    def __init__(
        self,
        decoder,
        config: SchedulerConfig | None = None,
        cluster: ClusterConfig | None = None,
    ) -> None:
        self.decoder = decoder
        self.config = config or SchedulerConfig()
        self.cluster = cluster or ClusterConfig()
        self.last_stats: ScheduleStats | None = None

    def run(
        self,
        trace: Sequence[Arrival],
        dataset: Dataset,
        id_prefix: str = "req",
    ) -> list[RequestRecord]:
        """Simulate serving ``trace`` over ``dataset``.

        Returns one :class:`RequestRecord` per arrival, in arrival order;
        rejected requests keep ``STATUS_REJECTED`` with an empty timeline.
        """
        config = self.config
        if self.cluster.router != ROUTER_COLOCATED and not hasattr(
            self.decoder, "begin"
        ):
            # A whole-decode fallback stepper yields one opaque verify blob:
            # nothing to hand to a draft pool, and merged coalescing would
            # mis-price distinct decodes as one pass.  Require a phase-split
            # decoder for disaggregating policies instead of silently idling
            # half the cluster.
            name = getattr(self.decoder, "name", type(self.decoder).__name__)
            raise ValueError(
                f"router {self.cluster.router!r} needs a phase-split decoder "
                f"(one exposing begin()), but {name!r} only supports "
                "whole-decode stepping — use the colocated router"
            )
        arrivals = sorted(trace, key=lambda a: (a.arrival_ms, a.index))
        draft_share = None
        if (
            self.cluster.split == SPLIT_BALANCED
            and self.cluster.router != ROUTER_COLOCATED
        ):
            # Workload-aware pool planning: measure the draft:verify cost
            # ratio on the first few distinct utterances of the trace.
            # Phase costs are pure functions of (decoder, utterance), so
            # this is deterministic and leaves transcripts untouched.
            sample_indices: list[int] = []
            for arrival in arrivals:
                index = arrival.utterance_index
                if index < len(dataset) and index not in sample_indices:
                    sample_indices.append(index)
                if len(sample_indices) >= PLANNER_SAMPLE_UTTERANCES:
                    break
            draft_share = measure_draft_share(
                self.decoder, [dataset[i] for i in sample_indices]
            )
        devices, router = build_router(self.cluster, config.overlap, draft_share)
        records = []
        for arrival in arrivals:
            if arrival.utterance_index >= len(dataset):
                raise ValueError(
                    f"arrival {arrival.index} references utterance "
                    f"{arrival.utterance_index}, but the corpus holds only "
                    f"{len(dataset)} — was this trace recorded against a "
                    "larger corpus?"
                )
            utterance = dataset[arrival.utterance_index]
            request = ServeRequest(
                request_id=f"{id_prefix}-{arrival.index:04d}",
                index=arrival.index,
                utterance=utterance,
                arrival_ms=arrival.arrival_ms,
            )
            records.append(RequestRecord(request=request))

        pending = deque(records)
        queue = AdmissionQueue(config.queue_capacity)
        inflight: list[_Active] = []
        # Batches in flight: (end_ms, tiebreak, device index, batch).  The
        # counter keeps heap ordering total without comparing batches.
        executing: list[tuple[float, int, int, list[_Active]]] = []
        order = itertools.count()
        now = 0.0

        def admit(now_ms: float) -> None:
            # Arrivals up to `now_ms` enter the queue (or bounce off it),
            # then the queue drains into free in-flight slots, FIFO.
            while pending and pending[0].request.arrival_ms <= now_ms:
                queue.offer(pending.popleft())
            while queue and len(inflight) < config.max_inflight:
                record = queue.pop()
                record.service_start_ms = now_ms
                stepper = begin_decode(self.decoder, record.request.utterance)
                inflight.append(_Active(record, stepper, now_ms))

        def dispatch(now_ms: float) -> None:
            # Waiting phases route in global FIFO order (ready time, then
            # request index) so least-loaded routers see them in a
            # deterministic sequence; each free device then takes up to
            # max_batch of the phases routed to it, still FIFO.
            waiting = [active for active in inflight if not active.running]
            waiting.sort(key=lambda a: (a.ready_ms, a.record.request.index))
            router.plan_round(now_ms)
            waiting_at: dict[int, list[_Active]] = {}
            for active in waiting:
                device = router.route(active.record.request.index, active.phase)
                waiting_at.setdefault(device.index, []).append(active)
            for device in devices:
                if device.free_at > now_ms:
                    continue
                routed = waiting_at.get(device.index)
                if not routed:
                    continue
                batch = routed[: config.max_batch]
                for active in batch:
                    active.running = True
                end = device.execute(
                    now_ms,
                    [active.phase for active in batch],
                    merge_verify=router.merge_verify,
                )
                heapq.heappush(executing, (end, next(order), device.index, batch))

        def complete(batch: list[_Active], end_ms: float) -> None:
            for active in batch:
                outcome = active.phase
                record = active.record
                active.running = False
                active.ready_ms = end_ms
                if outcome.round_done:
                    record.rounds += 1
                if outcome.new_tokens and record.first_token_ms is None:
                    record.first_token_ms = end_ms
                if outcome.done:
                    result = active.stepper.result
                    record.status = STATUS_COMPLETED
                    record.finish_ms = end_ms
                    record.tokens = list(result.tokens)
                    record.decode_ms = result.total_ms
                    if record.first_token_ms is None:
                        record.first_token_ms = end_ms  # empty transcript
                    inflight.remove(active)
                else:
                    active.phase = active.stepper.step_phase()

        while pending or queue or inflight or executing:
            admit(now)
            dispatch(now)
            next_times = []
            if executing:
                next_times.append(executing[0][0])
            if pending:
                next_times.append(pending[0].request.arrival_ms)
            if not next_times:
                break  # queue can't be non-empty with free slots
            now = max(now, min(next_times))
            while executing and executing[0][0] <= now:
                end, _, _, batch = heapq.heappop(executing)
                complete(batch, end)

        self.last_stats = ScheduleStats(
            sim_end_ms=now,
            device_busy_ms=sum(device.busy_ms for device in devices),
            batches=sum(device.batches for device in devices),
            rounds=sum(device.phases for device in devices),
            peak_queue_depth=queue.peak_depth,
            rejected=queue.rejected,
            devices=len(devices),
            per_device_busy_ms=tuple(device.busy_ms for device in devices),
            device_speeds=tuple(device.speed for device in devices),
            device_roles=router.device_roles(),
            draft_share=draft_share,
        )
        return records
