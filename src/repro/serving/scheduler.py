"""Continuous micro-batch scheduler over step-resumable decode sessions.

One simulated accelerator serves many in-flight requests.  Scheduling is
iteration-level (the Orca/vLLM "continuous batching" discipline): at every
scheduling point the device runs **one speculative round** for up to
``max_batch`` in-flight requests, then re-checks the arrival stream — so new
requests are admitted *between rounds* instead of waiting for the current
batch to drain, and finished requests free their slot immediately.

Device-time model for one micro-batch of round costs ``c_1..c_B`` (each the
request's own SimClock delta for that round):

``busy = max(c) + (1 - overlap) * (sum(c) - max(c))``

``overlap = 1`` is perfect batching (co-scheduled rounds hide entirely under
the critical path, the limit where weight traffic dominates); ``overlap = 0``
serialises every round (batch-1 device).  The default 0.8 models a
memory-bound decoder where batched rounds share most of the weight read but
pay their own attention/FFN arithmetic.

Determinism: given one arrival trace, every quantity here is a pure function
of the trace and the decoders — no wall clock, no RNG.  Transcripts and
per-request ``decode_ms`` are additionally *scheduler-independent* (they
depend only on the method and the utterance), which the determinism suite
asserts across batch sizes.

Run-to-completion FIFO serving — the baseline continuous batching is usually
compared against — is the ``max_batch=1, max_inflight=1`` corner of the same
scheduler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.data.corpus import Dataset
from repro.decoding.base import DecodeStepper, begin_decode
from repro.serving.arrivals import Arrival
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    STATUS_COMPLETED,
    RequestRecord,
    ServeRequest,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the serving loop."""

    max_batch: int = 4  # rounds co-scheduled per device iteration
    max_inflight: int = 8  # concurrent decode sessions held open
    queue_capacity: int = 32  # admission queue bound (backpressure)
    overlap: float = 0.8  # batching efficiency in [0, 1]

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_inflight < self.max_batch:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_batch "
                f"({self.max_batch})"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate facts about one scheduler run."""

    sim_end_ms: float  # when the last request finished
    device_busy_ms: float  # total device occupancy
    batches: int  # device iterations executed
    rounds: int  # speculative rounds executed (sum of batch sizes)
    peak_queue_depth: int
    rejected: int

    @property
    def device_utilisation(self) -> float:
        if self.sim_end_ms <= 0:
            return 0.0
        return self.device_busy_ms / self.sim_end_ms

    @property
    def mean_batch_occupancy(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.rounds / self.batches


class _Active:
    """One in-flight request: its record plus its resumable decode."""

    __slots__ = ("record", "stepper")

    def __init__(self, record: RequestRecord, stepper: DecodeStepper) -> None:
        self.record = record
        self.stepper = stepper


class ContinuousBatchScheduler:
    """Serve an arrival trace with one decoder on one simulated device."""

    def __init__(self, decoder, config: SchedulerConfig | None = None) -> None:
        self.decoder = decoder
        self.config = config or SchedulerConfig()
        self.last_stats: ScheduleStats | None = None

    def run(
        self,
        trace: Sequence[Arrival],
        dataset: Dataset,
        id_prefix: str = "req",
    ) -> list[RequestRecord]:
        """Simulate serving ``trace`` over ``dataset``.

        Returns one :class:`RequestRecord` per arrival, in arrival order;
        rejected requests keep ``STATUS_REJECTED`` with an empty timeline.
        """
        config = self.config
        records = []
        for arrival in sorted(trace, key=lambda a: (a.arrival_ms, a.index)):
            if arrival.utterance_index >= len(dataset):
                raise ValueError(
                    f"arrival {arrival.index} references utterance "
                    f"{arrival.utterance_index}, but the corpus holds only "
                    f"{len(dataset)} — was this trace recorded against a "
                    "larger corpus?"
                )
            utterance = dataset[arrival.utterance_index]
            request = ServeRequest(
                request_id=f"{id_prefix}-{arrival.index:04d}",
                index=arrival.index,
                utterance=utterance,
                arrival_ms=arrival.arrival_ms,
            )
            records.append(RequestRecord(request=request))

        pending = deque(records)
        queue = AdmissionQueue(config.queue_capacity)
        inflight: deque[_Active] = deque()
        now = 0.0
        device_busy = 0.0
        batches = 0
        rounds = 0

        def admit(now_ms: float) -> None:
            # Arrivals up to `now_ms` enter the queue (or bounce off it),
            # then the queue drains into free in-flight slots, FIFO.
            while pending and pending[0].request.arrival_ms <= now_ms:
                queue.offer(pending.popleft())
            while queue and len(inflight) < config.max_inflight:
                record = queue.pop()
                record.service_start_ms = now_ms
                stepper = begin_decode(self.decoder, record.request.utterance)
                inflight.append(_Active(record, stepper))

        while pending or queue or inflight:
            admit(now)
            if not inflight:
                if not pending:
                    break  # queue can't be non-empty with free slots
                # Device idle: fast-forward to the next arrival.
                now = max(now, pending[0].request.arrival_ms)
                continue
            batch = [
                inflight.popleft() for _ in range(min(config.max_batch, len(inflight)))
            ]
            outcomes = [active.stepper.step() for active in batch]
            costs = [outcome.ms for outcome in outcomes]
            critical = max(costs)
            busy = critical + (1.0 - config.overlap) * (sum(costs) - critical)
            now += busy
            device_busy += busy
            batches += 1
            rounds += len(batch)
            for active, outcome in zip(batch, outcomes):
                record = active.record
                record.rounds += 1
                if outcome.new_tokens and record.first_token_ms is None:
                    record.first_token_ms = now
                if outcome.done:
                    result = active.stepper.result
                    record.status = STATUS_COMPLETED
                    record.finish_ms = now
                    record.tokens = list(result.tokens)
                    record.decode_ms = result.total_ms
                    if record.first_token_ms is None:
                        record.first_token_ms = now  # empty transcript
                else:
                    inflight.append(active)

        self.last_stats = ScheduleStats(
            sim_end_ms=now,
            device_busy_ms=device_busy,
            batches=batches,
            rounds=rounds,
            peak_queue_depth=queue.peak_depth,
            rejected=queue.rejected,
        )
        return records
