"""Cluster event loop: continuous batching over a simulated accelerator pool.

The scheduler multiplexes many in-flight decodes across K simulated devices
at **phase granularity**: every draft→verify round is two schedulable units
(a draft-model phase and a target-model phase, see
:class:`~repro.decoding.base.PhaseOutcome`), and a placement policy
(:mod:`repro.serving.router`) decides which device runs which phase —
``colocated`` K-way sharding, ``disaggregated`` draft-pool/target-pool with
round handoff, or ``merged`` cross-request verification.  Scheduling stays
iteration-level (the Orca/vLLM "continuous batching" discipline): a device
runs one micro-batch of up to ``max_batch`` ready phases, and arrivals are
admitted at every simulation event instead of waiting for a batch to drain.

The loop is a discrete-event simulation.  Its event sources — request
arrivals, batch completions, fault-plan wake-ups (crashes, restarts, stall
boundaries) and the admissions/dispatches they enable — are processed in
deterministic order (devices by index, waiting phases FIFO by
``(class rank, ready time, request index)``), so one arrival trace
schedules identically on every run, for every device count, device-spec
mix, split policy, router policy and fault plan.  Under
``split="balanced"`` the scheduler first measures the decoder's
draft:verify cost ratio on the trace's leading utterances
(:func:`~repro.serving.router.measure_draft_share` — a pure, deterministic
simulation) and hands it to the workload-aware pool planner.

Device time for one micro-batch is priced by
:meth:`~repro.serving.devices.Device.batch_busy_ms`: the ``overlap``
discount applies within each ``(model, phase)`` group of the batch, groups
serialise (a draft-model pass and a target-model pass cannot share a
kernel).  The ``merged`` policy coalesces each verify group into a single
batched target pass.

**Failure awareness.**  A seeded :class:`~repro.serving.faults.FaultPlan`
threads injected chaos through the loop:

* A batch on a device that **crashes** mid-flight is aborted at the crash —
  the partial occupancy is billed as wasted work and every phase in it
  rolls back to the waiting state.  The phase object is pure data and the
  stepper only advances on *commit*, so a re-dispatched phase resumes the
  decode from its last committed trie cursor: transcripts stay
  bit-identical to the fault-free run whenever the request completes.
* Failed phases (crash aborts and transient phase errors) **retry with
  exponential backoff**, bounded by ``max_retries``; exhaustion sheds the
  request (reason ``"retries"``).
* The router's projections **exclude dead and stalled devices**, and the
  pool planner re-plans on every membership change (crash, warm restart).
* A **straggler detector** re-issues a running phase whose projected
  completion exceeds ``straggler_factor`` × its pool's median on the
  fastest idle pool peer; the first copy to finish commits and the other
  settles as cancelled (first-finisher-wins).

**Memory awareness.**  With a :class:`~repro.serving.memory.MemorySpec`
(or per-device ``@BLOCKS`` capacities) the scheduler bills KV residency
per in-flight session — draft and target model separately — through a
paged block allocator (:class:`~repro.serving.memory.ClusterKVMemory`):

* A phase only dispatches on a device if its blocks fit (**admission
  gate**), so the effective batch size *emerges* from free blocks;
  ``max_batch`` remains an upper bound, which keeps ample-capacity runs
  bit-identical to memory-disabled ones (the parity contract).
* Under pressure the allocator LRU-evicts idle sessions' blocks — never a
  session with a copy executing.  The decode state survives in its
  stepper (PR 5's state-intact resume path), and the next dispatch pays a
  simulated **re-prefill penalty** billed to device time only (transcripts
  and ``decode_ms`` stay scheduler-independent).
* Full committed-prefix blocks are shared copy-on-write across requests
  decoding the same utterance; queue preemption releases the victim's
  blocks (resume re-prefills them).
* A phase whose demand exceeds every pool device's total capacity is
  unservable and sheds with reason ``"memory"``.

**Graceful degradation.**  ``interactive`` requests dispatch ahead of
``batch`` ones and may preempt idle batch sessions for in-flight slots
(preempted sessions re-queue with their decode state intact); per-class
admission deadlines shed requests whose SLO is already unreachable before
they waste device time; and when capacity is permanently gone (all pool
devices dead with no restart pending) the remaining work is shed (reason
``"capacity"``) instead of hanging the loop.  The conservation invariant
``completed + rejected + shed == arrived`` always holds.

Determinism: given one arrival trace, every quantity here is a pure
function of the trace, the decoders, the cluster shape and the fault plan —
no wall clock, no RNG.  Transcripts and per-request ``decode_ms`` are
additionally *scheduler-independent* (they depend only on the method and
the utterance), which the determinism suite asserts across batch sizes,
device counts, router policies and fault plans.

Run-to-completion FIFO serving — the baseline continuous batching is usually
compared against — is the ``max_batch=1, max_inflight=1`` corner of the same
scheduler on a 1-device colocated cluster.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.streaming import positions_available
from repro.data.corpus import Dataset
from repro.decoding.base import DecodeStepper, PhaseOutcome, begin_decode
from repro.serving.arrivals import Arrival, chunk_schedule
from repro.serving.devices import Device
from repro.serving.faults import FaultPlan, RetryPolicy
from repro.serving.memory import ClusterKVMemory, MemorySpec
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_CAPACITY,
    SHED_DEADLINE,
    SHED_MEMORY,
    SHED_RETRIES,
    STATUS_COMPLETED,
    STATUS_SHED,
    RequestRecord,
    ServeRequest,
    priority_rank,
)
from repro.serving.router import (
    PLANNER_SAMPLE_UTTERANCES,
    ROUTER_COLOCATED,
    SPLIT_BALANCED,
    ClusterConfig,
    build_router,
    measure_draft_share,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the serving loop."""

    max_batch: int = 4  # phases co-scheduled per device iteration
    max_inflight: int = 8  # concurrent decode sessions held open
    queue_capacity: int = 32  # admission queue bound (backpressure)
    overlap: float = 0.8  # batching efficiency in [0, 1]
    # -- failure handling / degradation (defaults keep all of it off) ------
    max_retries: int = 3  # per-phase failure budget before shedding
    retry_backoff_ms: float = 25.0  # base of the exponential backoff
    straggler_factor: float = 0.0  # re-issue at k x pool median; 0 = off
    admission_deadline_ms: float | None = None  # shed interactive overdue
    batch_deadline_ms: float | None = None  # shed batch-class overdue

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_inflight < self.max_batch:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_batch "
                f"({self.max_batch})"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.straggler_factor != 0.0 and self.straggler_factor < 1.0:
            raise ValueError(
                "straggler_factor must be 0 (off) or >= 1, got "
                f"{self.straggler_factor}"
            )
        for name in ("admission_deadline_ms", "batch_deadline_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0 when set, got {value}")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries, backoff_ms=self.retry_backoff_ms
        )


@dataclass(frozen=True)
class StreamSpec:
    """Chunked audio delivery parameters for streaming requests.

    ``enabled``/``rtf`` shape the *trace* (every synthetic arrival is
    tagged with the real-time factor); ``chunk_s``/``lookahead_s`` shape
    how the scheduler expands a streamed arrival into chunk events and how
    many transcript positions the heard audio supports
    (:func:`repro.core.streaming.positions_available` — the same cap the
    offline streaming pipeline uses).  A request streams iff its own
    ``rtf > 0``, so replayed traces recorded with per-request factors
    stream without any flag.
    """

    enabled: bool = False
    rtf: float = 1.0  # audio delivery speed for synthesised traces
    chunk_s: float = 1.0  # seconds of audio per chunk event
    lookahead_s: float = 0.3  # audio margin held back from the decoder

    def __post_init__(self) -> None:
        if self.rtf <= 0:
            raise ValueError(f"rtf must be positive, got {self.rtf}")
        if self.chunk_s <= 0:
            raise ValueError(f"chunk_s must be positive, got {self.chunk_s}")
        if self.lookahead_s < 0:
            raise ValueError(f"lookahead_s must be >= 0, got {self.lookahead_s}")


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate facts about one scheduler run."""

    sim_end_ms: float  # when the last request finished
    device_busy_ms: float  # total occupancy summed over devices
    batches: int  # device iterations executed (all devices)
    rounds: int  # phases executed (sum of batch sizes, incl. re-executions)
    peak_queue_depth: int
    rejected: int
    devices: int = 1  # cluster size
    per_device_busy_ms: tuple[float, ...] = ()
    device_speeds: tuple[float, ...] = ()  # relative speed per device
    device_roles: tuple[str, ...] = ()  # pool membership per device
    draft_share: float | None = None  # measured ratio fed to the planner
    # -- chaos accounting (all zero on a fault-free run) -------------------
    retries: int = 0  # failed phase executions (crash aborts + transients)
    requeues: int = 0  # phases rolled back to the waiting state
    preemptions: int = 0  # batch sessions bumped for interactive arrivals
    shed: int = 0  # requests dropped by the server itself
    duplicates: int = 0  # straggler re-issues dispatched
    cancelled: int = 0  # stale copies ignored (first-finisher-wins)
    displaced: int = 0  # queued batch entries bumped by interactive
    degraded_ms: float = 0.0  # sim time with >= 1 device dead or stalled
    wasted_busy_ms: float = 0.0  # occupancy billed to crash-aborted batches
    fault_events: int = 0  # events in the injected plan
    # -- memory accounting (empty/zero when memory is unconstrained) -------
    memory_blocks: tuple[int | None, ...] = ()  # KV capacity per device
    peak_memory_blocks: tuple[int, ...] = ()  # high-water blocks per device
    block_size: int = 0  # tokens per KV block (0 = memory off)
    evictions: int = 0  # idle sessions whose blocks were reclaimed
    evicted_blocks: int = 0  # blocks freed by those evictions
    prefix_reuse_hits: int = 0  # shared prefix blocks reused copy-on-write
    reprefill_ms: float = 0.0  # device time spent rebuilding evicted KV
    memory_stalls: int = 0  # dispatch attempts deferred for want of blocks

    @property
    def device_utilisation(self) -> float:
        """Mean busy fraction across the cluster (0.0 on empty runs)."""
        if self.sim_end_ms <= 0 or self.devices < 1:
            return 0.0
        return self.device_busy_ms / (self.sim_end_ms * self.devices)

    @property
    def mean_batch_occupancy(self) -> float:
        """Phases per device iteration (0.0 on empty runs)."""
        if self.batches == 0:
            return 0.0
        return self.rounds / self.batches


class _Active:
    """One in-flight request: its record, resumable decode, and next phase.

    ``gen`` is the phase generation: it bumps whenever the current phase
    commits, requeues or the session ends, so any still-executing copy
    dispatched under an older generation settles as *stale* and is ignored
    — this is both crash rollback and first-finisher-wins straggler
    cancellation.  ``live`` counts outstanding dispatched copies of the
    current phase; ``attempts`` counts its failures so far (for the retry
    budget and backoff), and ``phase_index`` counts committed phases (the
    deterministic transient-error hash keys on it).

    When memory accounting is on, ``prompt``/``committed`` track the
    session's resident KV extent per the billing model (prompt tokens plus
    tokens committed so far), ``prefilled`` records which models have run
    their first phase (a model's KV is only resident after its prefill),
    and ``prompt_key`` identifies the utterance for cross-request prefix
    sharing.

    For a streaming request (``rtf > 0``), ``chunk_caps`` holds the
    precomputed audio timeline — ``(at_ms, cap)`` per chunk event, where
    ``cap`` is how many transcript positions the audio heard by ``at_ms``
    supports — ``audio_end_ms`` the arrival of the last chunk, ``emitted``
    the committed-token count, and ``new_round`` whether the pending phase
    starts a fresh draft→verify round (the only point the chunk gate may
    hold it back).
    """

    __slots__ = (
        "record",
        "stepper",
        "phase",
        "ready_ms",
        "running",
        "gen",
        "live",
        "attempts",
        "phase_index",
        "projected_end",
        "device_index",
        "prompt",
        "committed",
        "prefilled",
        "prompt_key",
        "chunk_caps",
        "audio_end_ms",
        "emitted",
        "new_round",
    )

    def __init__(
        self, record: RequestRecord, stepper: DecodeStepper, ready_ms: float
    ) -> None:
        self.record = record
        self.stepper = stepper
        self.phase: PhaseOutcome = stepper.step_phase()  # next phase to place
        self.ready_ms = ready_ms  # when that phase became runnable
        self.running = False  # currently inside a device batch
        self.gen = 0  # phase generation (stale-copy detection)
        self.live = 0  # outstanding dispatched copies
        self.attempts = 0  # failures of the current phase
        self.phase_index = 0  # committed phases so far
        self.projected_end = 0.0  # end of the latest dispatch
        self.device_index = -1  # device of the latest dispatch
        self.prompt = 0  # prompt tokens (memory billing)
        self.committed = 0  # committed tokens (memory billing)
        self.prefilled: set[str] = set()  # models with resident KV
        self.prompt_key = ""  # prefix-sharing identity
        self.chunk_caps: tuple[tuple[float, int], ...] | None = None
        self.audio_end_ms = 0.0  # last chunk arrival (streaming only)
        self.emitted = 0  # committed tokens recorded as emissions
        self.new_round = True  # pending phase begins a new round


class ContinuousBatchScheduler:
    """Serve an arrival trace with one decoder on a simulated cluster.

    ``faults`` threads a seeded :class:`~repro.serving.faults.FaultPlan`
    through the run; omitted or empty, the loop is bit-identical to the
    fault-free scheduler.  ``memory`` enables KV-block accounting
    (:class:`~repro.serving.memory.MemorySpec`); it activates when the spec
    sets ``device_blocks`` or any device spec carries an ``@BLOCKS``
    capacity, and per-device capacities override the spec default.  After
    :meth:`run`, ``last_dispatch_log`` holds one
    ``(device_index, start_ms, end_ms, phases, aborted)`` tuple per
    executed micro-batch — the audit trail the invariant suite checks
    ("no phase starts on a dead device") against the plan.
    """

    def __init__(
        self,
        decoder,
        config: SchedulerConfig | None = None,
        cluster: ClusterConfig | None = None,
        faults: FaultPlan | None = None,
        memory: MemorySpec | None = None,
        stream: StreamSpec | None = None,
    ) -> None:
        self.decoder = decoder
        self.config = config or SchedulerConfig()
        self.cluster = cluster or ClusterConfig()
        self.faults = faults if faults is not None and faults else None
        if self.faults is not None:
            self.faults.validate_for(self.cluster.devices)
        self.memory = memory
        # Chunking/lookahead for any streamed arrival in the trace; whether
        # a request streams is the arrival's own rtf, not this spec.
        self.stream = stream if stream is not None else StreamSpec()
        self.last_stats: ScheduleStats | None = None
        self.last_dispatch_log: list[tuple[int, float, float, int, bool]] = []

    def run(
        self,
        trace: Sequence[Arrival],
        dataset: Dataset,
        id_prefix: str = "req",
    ) -> list[RequestRecord]:
        """Simulate serving ``trace`` over ``dataset``.

        Returns one :class:`RequestRecord` per arrival, in arrival order;
        rejected requests keep ``STATUS_REJECTED`` with an empty timeline
        and shed requests ``STATUS_SHED`` plus a ``shed_reason``.
        """
        config = self.config
        plan = self.faults
        retry = config.retry_policy()
        if self.cluster.router != ROUTER_COLOCATED and not hasattr(
            self.decoder, "begin"
        ):
            # A whole-decode fallback stepper yields one opaque verify blob:
            # nothing to hand to a draft pool, and merged coalescing would
            # mis-price distinct decodes as one pass.  Require a phase-split
            # decoder for disaggregating policies instead of silently idling
            # half the cluster.
            name = getattr(self.decoder, "name", type(self.decoder).__name__)
            raise ValueError(
                f"router {self.cluster.router!r} needs a phase-split decoder "
                f"(one exposing begin()), but {name!r} only supports "
                "whole-decode stepping — use the colocated router"
            )
        arrivals = sorted(trace, key=lambda a: (a.arrival_ms, a.index))
        draft_share = None
        if (
            self.cluster.split == SPLIT_BALANCED
            and self.cluster.router != ROUTER_COLOCATED
        ):
            # Workload-aware pool planning: measure the draft:verify cost
            # ratio on the first few distinct utterances of the trace.
            # Phase costs are pure functions of (decoder, utterance), so
            # this is deterministic and leaves transcripts untouched.
            sample_indices: list[int] = []
            for arrival in arrivals:
                index = arrival.utterance_index
                if index < len(dataset) and index not in sample_indices:
                    sample_indices.append(index)
                if len(sample_indices) >= PLANNER_SAMPLE_UTTERANCES:
                    break
            draft_share = measure_draft_share(
                self.decoder, [dataset[i] for i in sample_indices]
            )
        memspec = self.memory if self.memory is not None else MemorySpec()
        if self.cluster.device_specs is not None:
            capacities = [
                spec.memory_blocks
                if spec.memory_blocks is not None
                else memspec.device_blocks
                for spec in self.cluster.device_specs
            ]
        else:
            capacities = [memspec.device_blocks] * (self.cluster.devices or 1)
        memory = (
            ClusterKVMemory(memspec, capacities)
            if any(cap is not None for cap in capacities)
            else None
        )
        devices, router = build_router(
            self.cluster,
            config.overlap,
            draft_share,
            memory_blocks=capacities if memory is not None else None,
        )
        if memory is not None:
            # Lazy: the serving package must stay importable from a partially
            # initialised repro.models (see repro.models.__getattr__).
            from repro.models.simulated import prompt_token_count
        # Cross-request batched scoring: when the decoder's models expose the
        # block oracle (``oracle_block_size > 1``), every request admitted in
        # one scheduler round gets its anchored distributions materialised in
        # a single grouped array pass (cache warming only — nothing is
        # billed, so transcripts and SimClock totals are bit-identical to
        # the lazy per-position path).  Scalar-path models opt out.
        batch_models = [
            model
            for model in (
                getattr(self.decoder, "draft", None),
                getattr(self.decoder, "target", None),
            )
            if model is not None
            and getattr(model, "oracle_block_size", 0) > 1
            and callable(getattr(model, "oracle", None))
        ]
        prewarm = None
        if batch_models:
            # Lazy for the same partial-initialisation reason as above.
            from repro.models.simulated import prewarm_models as prewarm
        if plan is not None:
            for device, profile in zip(
                devices, plan.profiles(len(devices)), strict=True
            ):
                device.set_fault_profile(profile)
        records = []
        for arrival in arrivals:
            if arrival.utterance_index >= len(dataset):
                raise ValueError(
                    f"arrival {arrival.index} references utterance "
                    f"{arrival.utterance_index}, but the corpus holds only "
                    f"{len(dataset)} — was this trace recorded against a "
                    "larger corpus?"
                )
            utterance = dataset[arrival.utterance_index]
            request = ServeRequest(
                request_id=f"{id_prefix}-{arrival.index:04d}",
                index=arrival.index,
                utterance=utterance,
                arrival_ms=arrival.arrival_ms,
                priority=arrival.priority,
                rtf=arrival.rtf,
            )
            records.append(RequestRecord(request=request))

        pending = deque(records)
        queue = AdmissionQueue(config.queue_capacity)
        inflight: list[_Active] = []
        preempted: dict[int, _Active] = {}  # request index -> saved session
        # Batches in flight: (end_ms, tiebreak, device index, entries,
        # aborted).  Entries are (active, gen, attempt, transient-failure,
        # dispatched phase) tuples — the phase is kept because a stale
        # copy's KV must be released under the *dispatched* model, which
        # the active may have moved past.  The counter keeps heap ordering
        # total without comparing entries.
        executing: list[
            tuple[
                float,
                int,
                int,
                list[tuple[_Active, int, int, bool, PhaseOutcome]],
                bool,
            ]
        ] = []
        order = itertools.count()
        wakeups = deque(plan.wakeup_times()) if plan is not None else deque()
        now = 0.0
        last_alive: tuple[int, ...] | None = None
        tally = {
            "retries": 0,
            "requeues": 0,
            "preemptions": 0,
            "shed": 0,
            "duplicates": 0,
            "cancelled": 0,
        }
        dispatch_log = self.last_dispatch_log = []
        # Sessions whose committed phase awaits its successor: the advance
        # (``stepper.step_phase()``) is deferred out of ``commit`` and
        # drained once per scheduler round, so every session that settled at
        # the same simulated instant advances through one coalesced pass
        # over warm caches (the merged router regularly commits whole verify
        # batches at one end time).  Steppers are independent, so the
        # deferral never changes any session's own draws or billing.
        advancing: list[_Active] = []

        def deadline_for(record: RequestRecord) -> float | None:
            if record.request.priority == PRIORITY_BATCH:
                return config.batch_deadline_ms
            return config.admission_deadline_ms

        def shed_record(record: RequestRecord, reason: str) -> None:
            record.status = STATUS_SHED
            record.shed_reason = reason
            tally["shed"] += 1

        def shed_active(active: _Active, reason: str) -> None:
            active.gen += 1  # any outstanding copy settles as stale
            active.running = False
            shed_record(active.record, reason)
            inflight.remove(active)
            if memory is not None:
                # Idle KV frees now; still-executing copies release theirs
                # when they settle as stale.
                memory.release_request(active.record.request.index)

        def resident_tokens(active: _Active, model: str) -> int:
            # A model's KV is resident only once its first phase committed
            # (the prefill); from then on it holds prompt + committed tokens.
            if model in active.prefilled:
                return active.prompt + active.committed
            return 0

        def admit_blocks(
            device_index: int, active: _Active
        ) -> float | None:
            """Reserve KV blocks for the next phase; None = does not fit."""
            phase = active.phase
            return memory.admit(
                device_index,
                active.record.request.index,
                phase.model,
                active.prompt_key,
                phase.kv_peak,
                resident_tokens(active, phase.model),
            )

        def maybe_shed_memory(active: _Active) -> None:
            # Deferred-for-blocks is normal; shed only when the phase's
            # demand exceeds every pool device's *total* capacity — no
            # amount of eviction will ever make it fit.
            demand = memory.phase_demand(
                active.phase.kv_peak,
                resident_tokens(active, active.phase.model),
            )
            pool = router.pool_devices(active.phase)
            if pool and not memory.fits_anywhere(
                demand, (device.index for device in pool)
            ):
                shed_active(active, SHED_MEMORY)

        stream = self.stream

        def init_streaming(active: _Active) -> None:
            """Expand a streamed request into its audio-chunk timeline."""
            request = active.record.request
            if request.rtf <= 0:
                return
            utterance = request.utterance
            events = chunk_schedule(request, utterance.duration_s, stream.chunk_s)
            active.chunk_caps = tuple(
                (at_ms, positions_available(utterance, heard_s, stream.lookahead_s))
                for at_ms, heard_s in events
            )
            active.audio_end_ms = events[-1][0]
            active.record.audio_end_ms = active.audio_end_ms
            active.record.stream_chunks = len(events)

        def stream_gate_ms(active: _Active, now_ms: float) -> float | None:
            """When the audio cap next allows a new round; None = ungated.

            A round only holds at its *boundary* (``new_round``): once the
            draft phase of a round has run, its verify phase follows
            ungated, so the decode content — and with it transcripts and
            ``decode_ms`` — is bit-identical to the offline run.  The gate
            releases entirely once all audio has arrived (nothing left to
            wait for, including the final EOS round).
            """
            caps = active.chunk_caps
            if caps is None or not active.new_round:
                return None
            if now_ms >= active.audio_end_ms:
                return None
            current = 0
            for at_ms, cap in caps:
                if at_ms > now_ms:
                    break
                current = cap
            if active.emitted < current:
                return None
            for at_ms, cap in caps:
                if at_ms > now_ms and cap > active.emitted:
                    return at_ms
            return active.audio_end_ms

        def audio_ready_ms(active: _Active, position: int) -> float:
            """Arrival of the first chunk supporting ``position`` tokens."""
            for at_ms, cap in active.chunk_caps:
                if cap >= position:
                    return at_ms
            return active.audio_end_ms  # lookahead tail: final only at end

        def finalize_streaming(active: _Active, end_ms: float) -> None:
            """Clamp the emission timeline to the EOS-stripped transcript."""
            record = active.record
            n = len(record.tokens)
            # The commit stream includes the trailing EOS; the transcript
            # doesn't, so the final commit may have over-appended by one.
            del record.emission_ms[n:]
            record.partials = [(t, min(c, n)) for t, c in record.partials]
            if record.emission_ms:
                record.finish_ms = max(end_ms, record.emission_ms[-1])
                record.first_token_ms = record.emission_ms[0]
            else:
                record.finish_ms = end_ms
                record.first_token_ms = end_ms  # empty transcript
            # Emissions are append-only for the lossless decoder: no token,
            # once emitted, is ever revised.  Assert the structural half of
            # the partial-stability contract here (the transcript half —
            # streamed == offline — is enforced by the parity suite).
            assert record.revised_tokens == 0
            assert all(
                earlier <= later
                for earlier, later in zip(
                    record.emission_ms, record.emission_ms[1:], strict=False
                )
            )
            # Per-chunk emission latency: for every chunk that raised the
            # position cap, when its last due token became final, relative
            # to the chunk's own arrival; the lookahead tail is charged
            # against end-of-audio.
            prev = 0
            for at_ms, cap in active.chunk_caps:
                cap = min(cap, n)
                if cap > prev:
                    record.chunk_latencies_ms.append(
                        record.emission_ms[cap - 1] - at_ms
                    )
                    prev = cap
            if n > prev:
                record.chunk_latencies_ms.append(
                    record.emission_ms[-1] - active.audio_end_ms
                )

        def preempt_victim() -> _Active | None:
            """Newest idle batch session, or None when nothing is bumpable."""
            victims = [
                active
                for active in inflight
                if active.record.request.priority == PRIORITY_BATCH
                and not active.running
                and active.live == 0
            ]
            if not victims:
                return None
            return max(victims, key=lambda a: a.record.request.index)

        def admit(now_ms: float) -> None:
            # Arrivals up to `now_ms` enter the queue (or bounce off it),
            # then the queue drains into free in-flight slots in class-then-
            # FIFO order.  A waiting interactive request may preempt the
            # newest idle batch session for its slot; the victim re-queues
            # with its decode state intact and resumes later.
            arrived: list[RequestRecord] = []
            while pending and pending[0].request.arrival_ms <= now_ms:
                record = pending.popleft()
                arrived.append(record)
                queue.offer(record)
            if prewarm is not None and arrived:
                # Admission-batch prewarm: one grouped array pass covers
                # every (model, utterance) pair arriving this round, before
                # any of their sessions computes its first phase.
                prewarm(
                    batch_models, [r.request.utterance for r in arrived]
                )
            while queue:
                if len(inflight) >= config.max_inflight:
                    if queue.next_priority() != PRIORITY_INTERACTIVE:
                        break
                    victim = preempt_victim()
                    if victim is None:
                        break
                    victim.gen += 1
                    inflight.remove(victim)
                    victim.record.preemptions += 1
                    tally["preemptions"] += 1
                    if memory is not None:
                        # The bumped session's KV leaves the cluster; resume
                        # pays a re-prefill like any evicted session.
                        memory.release_request(
                            victim.record.request.index, evicted=True
                        )
                    if len(queue) >= queue.capacity:
                        # Nowhere to park the session: give up on it rather
                        # than deadlock the slot it was just bumped from.
                        shed_record(victim.record, SHED_CAPACITY)
                    else:
                        preempted[victim.record.request.index] = victim
                        queue.offer(victim.record)
                    continue
                record = queue.pop()
                deadline = deadline_for(record)
                if (
                    deadline is not None
                    and now_ms - record.request.arrival_ms > deadline
                ):
                    # The SLO is already blown while still queued: shed now
                    # instead of burning device time on a lost cause.
                    preempted.pop(record.request.index, None)
                    shed_record(record, SHED_DEADLINE)
                    continue
                resumed = preempted.pop(record.request.index, None)
                if resumed is not None:
                    resumed.running = False
                    resumed.ready_ms = now_ms
                    inflight.append(resumed)
                    continue
                record.service_start_ms = now_ms
                stepper = begin_decode(self.decoder, record.request.utterance)
                active = _Active(record, stepper, now_ms)
                init_streaming(active)
                if memory is not None:
                    utterance = record.request.utterance
                    active.prompt = prompt_token_count(utterance)
                    active.prompt_key = (
                        getattr(utterance, "utterance_id", None)
                        or record.request.request_id
                    )
                inflight.append(active)

        def launch(
            device: Device,
            batch: list[_Active],
            now_ms: float,
            penalties: Sequence[float] | None = None,
        ) -> None:
            """Execute ``batch`` on ``device``, folding in the fault plan."""
            start = max(now_ms, device.free_at)
            phases = [active.phase for active in batch]
            if penalties is not None:
                # Re-prefill after an eviction inflates *device* time for
                # this execution only; the phase object on the active stays
                # pristine, so transcripts and decode_ms never see it.
                phases = [
                    replace(phase, ms=phase.ms + penalty) if penalty else phase
                    for phase, penalty in zip(phases, penalties, strict=True)
                ]
            crash = None
            if plan is not None and device.faults.crash_ms is not None:
                busy = device.batch_busy_ms(
                    phases, merge_verify=router.merge_verify, at_ms=start
                )
                crash = device.faults.crash_during(start, start + busy)
            end = device.execute(
                now_ms,
                phases,
                merge_verify=router.merge_verify,
                abort_ms=crash,
            )
            entries = []
            for active in batch:
                attempt = active.attempts + 1
                failed = plan is not None and plan.phase_fails(
                    active.record.request.index, active.phase_index, attempt
                )
                entries.append((active, active.gen, attempt, failed, active.phase))
                active.running = True
                active.live += 1
                active.projected_end = end
                active.device_index = device.index
            aborted = crash is not None
            heapq.heappush(
                executing, (end, next(order), device.index, entries, aborted)
            )
            dispatch_log.append((device.index, start, end, len(batch), aborted))

        def dispatch(now_ms: float) -> None:
            # Waiting phases route in class-then-FIFO order (priority rank,
            # ready time, request index) so least-loaded routers see them in
            # a deterministic sequence; each free device then takes up to
            # max_batch of the phases routed to it, still in that order.
            if plan is not None:
                nonlocal last_alive
                alive = tuple(
                    device.index for device in devices if not device.is_dead(now_ms)
                )
                if alive != last_alive:
                    # Membership changed (crash or warm restart): the pool
                    # planner re-plans over the survivors.
                    router.on_membership_change(alive)
                    last_alive = alive
                router.plan_round(
                    now_ms,
                    available=[
                        device.index
                        for device in devices
                        if device.available(now_ms)
                    ],
                    speeds={
                        device.index: device.effective_speed(now_ms)
                        for device in devices
                    },
                )
            else:
                router.plan_round(now_ms)
            waiting = []
            for active in inflight:
                if active.running or active.ready_ms > now_ms:
                    continue
                gate = stream_gate_ms(active, now_ms)
                if gate is not None:
                    # Audio hasn't reached the positions the next round
                    # would decode: park the session until the cap-raising
                    # chunk arrives (the backoff machinery wakes the loop).
                    active.ready_ms = gate
                    continue
                waiting.append(active)
            waiting.sort(
                key=lambda a: (
                    priority_rank(a.record.request.priority),
                    a.ready_ms,
                    a.record.request.index,
                )
            )
            waiting_at: dict[int, list[_Active]] = {}
            for active in waiting:
                device = router.route(active.record.request.index, active.phase)
                if device is None:
                    continue  # whole pool dead/stalled; the phase waits
                waiting_at.setdefault(device.index, []).append(active)
            for device in devices:
                if device.free_at > now_ms or not device.available(now_ms):
                    continue
                routed = waiting_at.get(device.index)
                if not routed:
                    continue
                if memory is None:
                    launch(device, routed[: config.max_batch], now_ms)
                    continue
                # Memory gate: the batch is built phase by phase through the
                # block allocator, so its size emerges from free blocks
                # (max_batch stays the upper bound — the parity contract).
                batch: list[_Active] = []
                penalties: list[float] = []
                for active in routed:
                    if len(batch) >= config.max_batch:
                        break
                    grant = admit_blocks(device.index, active)
                    if grant is None:
                        maybe_shed_memory(active)
                        continue
                    batch.append(active)
                    penalties.append(grant)
                if batch:
                    launch(device, batch, now_ms, penalties)
            if config.straggler_factor > 0:
                reissue_stragglers(now_ms)

        def reissue_stragglers(now_ms: float) -> None:
            # A running phase whose projected completion exceeds k x its
            # pool's median is duplicated on the fastest idle pool peer;
            # whichever copy finishes first commits (the other settles as
            # stale).  live == 1 keeps one hedge per execution.
            running = [
                active
                for active in inflight
                if active.running and active.live == 1 and active.projected_end > now_ms
            ]
            by_kind: dict[str, list[_Active]] = {}
            for active in running:
                by_kind.setdefault(active.phase.phase, []).append(active)
            for kind in sorted(by_kind):
                group = by_kind[kind]
                ends = sorted(active.projected_end for active in group)
                median = ends[len(ends) // 2]
                threshold = config.straggler_factor * median
                for active in sorted(group, key=lambda a: a.record.request.index):
                    if active.projected_end <= threshold:
                        continue
                    peers = [
                        device
                        for device in router.pool_devices(active.phase)
                        if device.free_at <= now_ms
                        and device.available(now_ms)
                        and device.index != active.device_index
                    ]
                    if not peers:
                        continue
                    peer = max(
                        peers,
                        key=lambda d: (d.effective_speed(now_ms), -d.index),
                    )
                    if memory is not None:
                        grant = admit_blocks(peer.index, active)
                        if grant is None:
                            continue  # no blocks for a hedge copy
                        launch(peer, [active], now_ms, [grant])
                    else:
                        launch(peer, [active], now_ms)
                    tally["duplicates"] += 1

        def commit(active: _Active, end_ms: float, device_index: int) -> None:
            outcome = active.phase
            record = active.record
            active.gen += 1  # sibling straggler copies settle as stale
            active.running = False
            active.ready_ms = end_ms
            active.attempts = 0
            active.phase_index += 1
            if memory is not None:
                active.committed += len(outcome.new_tokens)
                active.prefilled.add(outcome.model)
                memory.settle(
                    device_index,
                    record.request.index,
                    outcome.model,
                    active.prompt_key,
                    active.prompt + active.committed,
                    committed=True,
                )
            active.new_round = outcome.round_done
            if outcome.round_done:
                record.rounds += 1
            if active.chunk_caps is not None and outcome.new_tokens:
                # A committed token becomes *final* (client-visible) only
                # once its supporting audio has arrived: emission time is
                # max(commit, audio ready).  Tokens the round decoded ahead
                # of the stream are future-dated, never revised.
                emissions = record.emission_ms
                for offset in range(len(outcome.new_tokens)):
                    position = active.emitted + offset + 1
                    emissions.append(max(end_ms, audio_ready_ms(active, position)))
                active.emitted += len(outcome.new_tokens)
                record.partials.append((emissions[-1], active.emitted))
            if outcome.new_tokens and record.first_token_ms is None:
                record.first_token_ms = (
                    record.emission_ms[0]
                    if active.chunk_caps is not None
                    else end_ms
                )
            if outcome.done:
                result = active.stepper.result
                record.status = STATUS_COMPLETED
                record.finish_ms = end_ms
                record.tokens = list(result.tokens)
                record.decode_ms = result.total_ms
                if record.first_token_ms is None:
                    record.first_token_ms = end_ms  # empty transcript
                if active.chunk_caps is not None:
                    finalize_streaming(active, end_ms)
                inflight.remove(active)
                if memory is not None:
                    memory.release_request(record.request.index)
            else:
                # Deferred: the successor phase is computed in the per-round
                # coalesced drain (see ``advancing`` above), not here —
                # nothing reads ``active.phase`` before that drain runs.
                advancing.append(active)

        def settle(
            entry: tuple[_Active, int, int, bool, PhaseOutcome],
            end_ms: float,
            aborted: bool,
            device_index: int,
        ) -> None:
            active, gen, attempt, transient, phase = entry
            active.live -= 1
            if active.gen != gen:
                # A sibling copy already committed this phase, or the phase
                # was requeued/shed after a crash: this copy is stale.
                tally["cancelled"] += 1
                if memory is not None:
                    memory.settle(
                        device_index,
                        active.record.request.index,
                        phase.model,
                        active.prompt_key,
                        0,
                        committed=False,
                    )
                return
            if not aborted and not transient:
                commit(active, end_ms, device_index)
                return
            # The copy failed (crash abort or transient phase error).  The
            # stepper never advanced, so the same phase object re-dispatches
            # and the decode resumes from its last committed state.
            if memory is not None:
                # Its KV is gone with the failure; if no sibling copy holds
                # one elsewhere, the retry pays a re-prefill on admission.
                memory.settle(
                    device_index,
                    active.record.request.index,
                    phase.model,
                    active.prompt_key,
                    0,
                    committed=False,
                )
            active.record.retries += 1
            tally["retries"] += 1
            if active.live > 0:
                return  # a sibling copy is still in flight; let it decide
            active.gen += 1
            active.running = False
            active.attempts = attempt
            if retry.exhausted(attempt):
                shed_active(active, SHED_RETRIES)
                return
            active.record.requeues += 1
            tally["requeues"] += 1
            active.ready_ms = end_ms + retry.backoff_for(attempt)

        while pending or queue or inflight or executing:
            admit(now)
            dispatch(now)
            next_times = []
            if executing:
                next_times.append(executing[0][0])
            if pending:
                next_times.append(pending[0].request.arrival_ms)
            backoffs = [
                active.ready_ms
                for active in inflight
                if not active.running and active.ready_ms > now
            ]
            if backoffs:
                next_times.append(min(backoffs))
            while wakeups and wakeups[0] <= now:
                wakeups.popleft()
            if wakeups and (inflight or queue or pending):
                next_times.append(wakeups[0])
            if not next_times:
                # Nothing will ever happen again.  Any remaining work is
                # unservable (every device its phases could use is dead with
                # no restart pending): shed it so the run terminates and
                # conservation still holds.
                for active in list(inflight):
                    shed_active(active, SHED_CAPACITY)
                while queue:
                    shed_record(queue.pop(), SHED_CAPACITY)
                break
            now = max(now, min(next_times))
            while executing and executing[0][0] <= now:
                end, _, device_index, entries, aborted = heapq.heappop(executing)
                for entry in entries:
                    settle(entry, end, aborted, device_index)
            if advancing:
                if prewarm is not None and len(advancing) > 1:
                    # Two or more sessions advance at this instant (e.g. a
                    # merged-verify batch just committed): re-warm their
                    # oracles in one grouped pass so each ``step_phase``
                    # below reads cached blocks.  A no-op when the admission
                    # prewarm is still resident; it only recomputes blocks
                    # the oracle LRU has since evicted.
                    units = []
                    seen = set()
                    for active in advancing:
                        unit = active.record.request.utterance
                        key = getattr(unit, "content_key", None) or id(unit)
                        if key not in seen:
                            seen.add(key)
                            units.append(unit)
                    prewarm(batch_models, units)
                for active in advancing:
                    active.phase = active.stepper.step_phase()
                advancing.clear()

        self.last_stats = ScheduleStats(
            sim_end_ms=now,
            device_busy_ms=sum(device.busy_ms for device in devices),
            batches=sum(device.batches for device in devices),
            rounds=sum(device.phases for device in devices),
            peak_queue_depth=queue.peak_depth,
            rejected=queue.rejected,
            devices=len(devices),
            per_device_busy_ms=tuple(device.busy_ms for device in devices),
            device_speeds=tuple(device.speed for device in devices),
            device_roles=router.device_roles(),
            draft_share=draft_share,
            retries=tally["retries"],
            requeues=tally["requeues"],
            preemptions=tally["preemptions"],
            shed=tally["shed"],
            duplicates=tally["duplicates"],
            cancelled=tally["cancelled"],
            displaced=queue.displaced,
            degraded_ms=(
                plan.degraded_ms(len(devices), now) if plan is not None else 0.0
            ),
            wasted_busy_ms=sum(device.wasted_ms for device in devices),
            fault_events=len(plan.events) if plan is not None else 0,
            memory_blocks=tuple(capacities) if memory is not None else (),
            peak_memory_blocks=memory.peaks if memory is not None else (),
            block_size=memspec.block_size if memory is not None else 0,
            evictions=memory.evictions if memory is not None else 0,
            evicted_blocks=memory.evicted_blocks if memory is not None else 0,
            prefix_reuse_hits=memory.reuse_hits if memory is not None else 0,
            reprefill_ms=memory.reprefill_ms if memory is not None else 0.0,
            memory_stalls=memory.stalls if memory is not None else 0,
        )
        if memory is not None:
            memory.audit()  # block conservation on every run
        return records
