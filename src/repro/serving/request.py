"""Request datatypes and per-request latency accounting.

A :class:`ServeRequest` is one utterance arriving at the serving front-end at
a point in *simulated* time (milliseconds, the same unit as
:class:`~repro.models.latency.SimClock`).  Its :class:`RequestRecord`
accumulates the timeline the SLO report is computed from:

``arrival → queue wait → service start → first token → finish``

Two latency notions coexist and must not be conflated:

* **decode_ms** — the request's own simulated model time (its SimClock
  total).  This depends only on (method, utterance) and is bit-identical
  across scheduler configurations; the determinism suite asserts it.
* **completion_ms / ttft_ms** — wall latency experienced by the client,
  including queueing and time spent sharing the device with other requests.
  This is what the scheduler shapes and what SLOs are written against.

Requests carry a **priority class**: ``interactive`` traffic (the default —
live captioning, voice assistants) outranks ``batch`` transcription jobs in
admission and dispatch order, and under pressure the scheduler preempts
waiting batch sessions to make room for interactive arrivals.

Beyond completion and queue rejection, a request can end **shed**: dropped
by the server itself, either because its SLO was already unreachable when a
slot opened (``"deadline"``), because a phase exhausted its bounded retries
on a faulty cluster (``"retries"``), or because no device could ever serve
it after a permanent capacity loss (``"capacity"``).  The conservation
invariant the property suite enforces is
``completed + rejected + shed == arrived``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.corpus import Utterance

#: Terminal request states.
STATUS_PENDING = "pending"
STATUS_REJECTED = "rejected"  # bounced by admission-queue backpressure
STATUS_COMPLETED = "completed"
STATUS_SHED = "shed"  # dropped by the server (deadline / retries / capacity)

#: Priority classes, highest first.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"
PRIORITY_CLASSES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

#: Shed reasons recorded on :attr:`RequestRecord.shed_reason`.
SHED_DEADLINE = "deadline"  # SLO already unreachable at admission
SHED_RETRIES = "retries"  # a phase exhausted its bounded retries
SHED_CAPACITY = "capacity"  # no device can ever serve the request
SHED_MEMORY = "memory"  # KV blocks can never fit on any pool device


def priority_rank(priority: str) -> int:
    """Dispatch/admission ordering key: lower ranks first."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        raise ValueError(
            f"unknown priority class {priority!r}; "
            f"use one of {', '.join(PRIORITY_CLASSES)}"
        ) from None


@dataclass(frozen=True)
class ServeRequest:
    """One inbound transcription request."""

    request_id: str
    index: int  # arrival sequence number (ties broken by this)
    utterance: Utterance
    arrival_ms: float
    priority: str = PRIORITY_INTERACTIVE

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"{self.request_id}: negative arrival time")
        priority_rank(self.priority)  # validates


@dataclass
class RequestRecord:
    """Mutable per-request timeline filled in by the scheduler."""

    request: ServeRequest
    status: str = STATUS_PENDING
    service_start_ms: float | None = None  # first scheduled round began
    first_token_ms: float | None = None  # first committed tokens visible
    finish_ms: float | None = None  # transcript complete
    tokens: list[int] = field(default_factory=list)
    decode_ms: float = 0.0  # own simulated model time (SimClock total)
    rounds: int = 0  # scheduler steps this request consumed

    # -- chaos accounting (failure-aware scheduling) -----------------------
    retries: int = 0  # failed phase executions (crash aborts + transients)
    requeues: int = 0  # phases returned to the waiting state after failure
    preemptions: int = 0  # times this (batch) session was bumped from a slot
    shed_reason: str | None = None  # deadline | retries | capacity | memory

    # -- derived latencies (client-observed, scheduler-dependent) ----------
    @property
    def queue_ms(self) -> float | None:
        """Time from arrival until the first scheduled round began."""
        if self.service_start_ms is None:
            return None
        return self.service_start_ms - self.request.arrival_ms

    @property
    def ttft_ms(self) -> float | None:
        """Time to first token, from arrival."""
        if self.first_token_ms is None:
            return None
        return self.first_token_ms - self.request.arrival_ms

    @property
    def completion_ms(self) -> float | None:
        """End-to-end latency, from arrival to final token."""
        if self.finish_ms is None:
            return None
        return self.finish_ms - self.request.arrival_ms

    @property
    def per_token_ms(self) -> float | None:
        """Mean client-observed latency per emitted token."""
        completion = self.completion_ms
        if completion is None or not self.tokens:
            return None
        return completion / len(self.tokens)

    def meets_deadline(self, deadline_ms: float) -> bool:
        """True when the request completed within ``deadline_ms`` of arrival."""
        completion = self.completion_ms
        return completion is not None and completion <= deadline_ms
