"""Request datatypes and per-request latency accounting.

A :class:`ServeRequest` is one utterance arriving at the serving front-end at
a point in *simulated* time (milliseconds, the same unit as
:class:`~repro.models.latency.SimClock`).  Its :class:`RequestRecord`
accumulates the timeline the SLO report is computed from:

``arrival → queue wait → service start → first token → finish``

Two latency notions coexist and must not be conflated:

* **decode_ms** — the request's own simulated model time (its SimClock
  total).  This depends only on (method, utterance) and is bit-identical
  across scheduler configurations; the determinism suite asserts it.
* **completion_ms / ttft_ms** — wall latency experienced by the client,
  including queueing and time spent sharing the device with other requests.
  This is what the scheduler shapes and what SLOs are written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.corpus import Utterance

#: Terminal request states.
STATUS_PENDING = "pending"
STATUS_REJECTED = "rejected"  # bounced by admission-queue backpressure
STATUS_COMPLETED = "completed"


@dataclass(frozen=True)
class ServeRequest:
    """One inbound transcription request."""

    request_id: str
    index: int  # arrival sequence number (ties broken by this)
    utterance: Utterance
    arrival_ms: float

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"{self.request_id}: negative arrival time")


@dataclass
class RequestRecord:
    """Mutable per-request timeline filled in by the scheduler."""

    request: ServeRequest
    status: str = STATUS_PENDING
    service_start_ms: float | None = None  # first scheduled round began
    first_token_ms: float | None = None  # first committed tokens visible
    finish_ms: float | None = None  # transcript complete
    tokens: list[int] = field(default_factory=list)
    decode_ms: float = 0.0  # own simulated model time (SimClock total)
    rounds: int = 0  # scheduler steps this request consumed

    # -- derived latencies (client-observed, scheduler-dependent) ----------
    @property
    def queue_ms(self) -> float | None:
        """Time from arrival until the first scheduled round began."""
        if self.service_start_ms is None:
            return None
        return self.service_start_ms - self.request.arrival_ms

    @property
    def ttft_ms(self) -> float | None:
        """Time to first token, from arrival."""
        if self.first_token_ms is None:
            return None
        return self.first_token_ms - self.request.arrival_ms

    @property
    def completion_ms(self) -> float | None:
        """End-to-end latency, from arrival to final token."""
        if self.finish_ms is None:
            return None
        return self.finish_ms - self.request.arrival_ms

    @property
    def per_token_ms(self) -> float | None:
        """Mean client-observed latency per emitted token."""
        completion = self.completion_ms
        if completion is None or not self.tokens:
            return None
        return completion / len(self.tokens)

    def meets_deadline(self, deadline_ms: float) -> bool:
        """True when the request completed within ``deadline_ms`` of arrival."""
        completion = self.completion_ms
        return completion is not None and completion <= deadline_ms
