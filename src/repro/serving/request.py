"""Request datatypes and per-request latency accounting.

A :class:`ServeRequest` is one utterance arriving at the serving front-end at
a point in *simulated* time (milliseconds, the same unit as
:class:`~repro.models.latency.SimClock`).  Its :class:`RequestRecord`
accumulates the timeline the SLO report is computed from:

``arrival → queue wait → service start → first token → finish``

Two latency notions coexist and must not be conflated:

* **decode_ms** — the request's own simulated model time (its SimClock
  total).  This depends only on (method, utterance) and is bit-identical
  across scheduler configurations; the determinism suite asserts it.
* **completion_ms / ttft_ms** — wall latency experienced by the client,
  including queueing and time spent sharing the device with other requests.
  This is what the scheduler shapes and what SLOs are written against.

Requests carry a **priority class**: ``interactive`` traffic (the default —
live captioning, voice assistants) outranks ``batch`` transcription jobs in
admission and dispatch order, and under pressure the scheduler preempts
waiting batch sessions to make room for interactive arrivals.

Beyond completion and queue rejection, a request can end **shed**: dropped
by the server itself, either because its SLO was already unreachable when a
slot opened (``"deadline"``), because a phase exhausted its bounded retries
on a faulty cluster (``"retries"``), or because no device could ever serve
it after a permanent capacity loss (``"capacity"``).  The conservation
invariant the property suite enforces is
``completed + rejected + shed == arrived``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.corpus import Utterance

#: Terminal request states.
STATUS_PENDING = "pending"
STATUS_REJECTED = "rejected"  # bounced by admission-queue backpressure
STATUS_COMPLETED = "completed"
STATUS_SHED = "shed"  # dropped by the server (deadline / retries / capacity)

#: Priority classes, highest first.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"
PRIORITY_CLASSES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

#: Shed reasons recorded on :attr:`RequestRecord.shed_reason`.
SHED_DEADLINE = "deadline"  # SLO already unreachable at admission
SHED_RETRIES = "retries"  # a phase exhausted its bounded retries
SHED_CAPACITY = "capacity"  # no device can ever serve the request
SHED_MEMORY = "memory"  # KV blocks can never fit on any pool device


def priority_rank(priority: str) -> int:
    """Dispatch/admission ordering key: lower ranks first."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        raise ValueError(
            f"unknown priority class {priority!r}; "
            f"use one of {', '.join(PRIORITY_CLASSES)}"
        ) from None


@dataclass(frozen=True)
class ServeRequest:
    """One inbound transcription request.

    ``rtf`` is the audio real-time factor carried over from the arrival:
    ``0.0`` means the whole utterance was available at ``arrival_ms``
    (offline); a positive value means the audio streams in chunk by chunk
    at that speed and the scheduler gates decode progress on audio heard.
    """

    request_id: str
    index: int  # arrival sequence number (ties broken by this)
    utterance: Utterance
    arrival_ms: float
    priority: str = PRIORITY_INTERACTIVE
    rtf: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"{self.request_id}: negative arrival time")
        if self.rtf < 0:
            raise ValueError(f"{self.request_id}: rtf must be >= 0")
        priority_rank(self.priority)  # validates


@dataclass
class RequestRecord:
    """Mutable per-request timeline filled in by the scheduler."""

    request: ServeRequest
    status: str = STATUS_PENDING
    service_start_ms: float | None = None  # first scheduled round began
    first_token_ms: float | None = None  # first committed tokens visible
    finish_ms: float | None = None  # transcript complete
    tokens: list[int] = field(default_factory=list)
    decode_ms: float = 0.0  # own simulated model time (SimClock total)
    rounds: int = 0  # scheduler steps this request consumed

    # -- chaos accounting (failure-aware scheduling) -----------------------
    retries: int = 0  # failed phase executions (crash aborts + transients)
    requeues: int = 0  # phases returned to the waiting state after failure
    preemptions: int = 0  # times this (batch) session was bumped from a slot
    shed_reason: str | None = None  # deadline | retries | capacity | memory

    # -- streaming timeline (populated only for rtf > 0 requests) ----------
    audio_end_ms: float | None = None  # when the last audio chunk arrived
    stream_chunks: int = 0  # audio chunk events delivered
    emission_ms: list[float] = field(default_factory=list)
    # absolute emission time per transcript token: max(commit, audio ready)
    partials: list[tuple[float, int]] = field(default_factory=list)
    # (emission time, cumulative tokens final) per committing phase
    chunk_latencies_ms: list[float] = field(default_factory=list)
    # per cap-raising chunk: emission of its last due token - chunk arrival
    revised_tokens: int = 0  # emitted tokens later revised (0: lossless)

    # -- derived latencies (client-observed, scheduler-dependent) ----------
    @property
    def queue_ms(self) -> float | None:
        """Time from arrival until the first scheduled round began."""
        if self.service_start_ms is None:
            return None
        return self.service_start_ms - self.request.arrival_ms

    @property
    def ttft_ms(self) -> float | None:
        """Time to first token, from arrival."""
        if self.first_token_ms is None:
            return None
        return self.first_token_ms - self.request.arrival_ms

    @property
    def completion_ms(self) -> float | None:
        """End-to-end latency, from arrival to final token."""
        if self.finish_ms is None:
            return None
        return self.finish_ms - self.request.arrival_ms

    @property
    def per_token_ms(self) -> float | None:
        """Mean client-observed latency per emitted token."""
        completion = self.completion_ms
        if completion is None or not self.tokens:
            return None
        return completion / len(self.tokens)

    # -- streaming-derived latencies ---------------------------------------
    @property
    def streaming(self) -> bool:
        """True when this request's audio arrived in timed chunks."""
        return self.audio_end_ms is not None

    @property
    def word_ttft_ms(self) -> float | None:
        """First *emitted* token latency from arrival (word-level TTFT).

        For streaming requests emission waits for the token's supporting
        audio, so this is >= the scheduler-side ``ttft_ms``; for offline
        requests they coincide.
        """
        if self.emission_ms:
            return self.emission_ms[0] - self.request.arrival_ms
        return self.ttft_ms

    @property
    def final_latency_ms(self) -> float | None:
        """Delay from end-of-audio to transcript-final (streaming only).

        The streaming analogue of completion latency: a live stream cannot
        finish before its audio does, so the clamp at zero only engages
        when the decode EOS'd early (transcript shorter than the audio).
        """
        if self.audio_end_ms is None or self.finish_ms is None:
            return None
        return max(self.finish_ms - self.audio_end_ms, 0.0)

    @property
    def slo_latency_ms(self) -> float | None:
        """Latency the SLO deadline is judged against.

        Offline requests are judged on completion (arrival → final token);
        streaming requests on final latency (end-of-audio → final token) —
        an utterance longer than the deadline would otherwise be
        unservable by construction, however fast the decode.
        """
        if self.streaming:
            return self.final_latency_ms
        return self.completion_ms

    def meets_deadline(self, deadline_ms: float) -> bool:
        """True when the request completed within ``deadline_ms``.

        Measured from arrival (offline) or end-of-audio (streaming) — see
        :attr:`slo_latency_ms`.
        """
        latency = self.slo_latency_ms
        return latency is not None and latency <= deadline_ms
