"""Arrival traces: when requests hit the server and which utterance each is.

A trace is a list of :class:`Arrival` entries sorted by arrival time (ties
broken by index).  Traces are either synthesised — Poisson (memoryless open
loop, the standard serving-workload model) or uniform (a paced load
generator) — or loaded from JSON, so recorded production traces can be
replayed deterministically.

All synthesis is seeded through :mod:`repro.utils.rng`: the same
``(seed, qps, num_requests)`` always yields the bit-identical trace, which
is what makes serve simulations reproducible end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    priority_rank,
)
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class Arrival:
    """One request arrival: who arrives when, and which utterance it wants.

    ``priority`` tags the request's SLO class (``interactive`` by default;
    ``batch`` for throughput-oriented offline transcription jobs).
    """

    index: int
    utterance_index: int
    arrival_ms: float
    priority: str = PRIORITY_INTERACTIVE

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"arrival {self.index}: negative arrival time")
        if self.utterance_index < 0:
            raise ValueError(f"arrival {self.index}: negative utterance index")
        priority_rank(self.priority)  # validates the class name


def _assign_utterances(rng: RngStream, count: int, dataset_size: int) -> list[int]:
    if dataset_size < 1:
        raise ValueError("dataset must hold at least one utterance")
    return [rng.integers(0, dataset_size) for _ in range(count)]


def _assign_priorities(seed: int, count: int, batch_fraction: float) -> list[str]:
    """Seeded per-arrival class draw (``batch`` with prob ``batch_fraction``).

    Drawn from its own stream scope, so enabling a class mix never perturbs
    the gap/utterance draws of existing traces (and ``batch_fraction=0``
    reproduces the legacy all-interactive trace bit-identically).
    """
    if not 0.0 <= batch_fraction <= 1.0:
        raise ValueError(f"batch_fraction must be in [0, 1], got {batch_fraction}")
    if batch_fraction == 0.0:
        return [PRIORITY_INTERACTIVE] * count
    classes = RngStream(seed, "serve-arrivals", "classes")
    return [
        PRIORITY_BATCH if classes.uniform() < batch_fraction else PRIORITY_INTERACTIVE
        for _ in range(count)
    ]


def poisson_trace(
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
) -> list[Arrival]:
    """Open-loop Poisson arrivals at ``qps`` requests/second.

    Inter-arrival gaps are exponential with mean ``1000 / qps`` ms; utterances
    are drawn uniformly from the corpus.  Deterministic in ``seed``.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gaps = RngStream(seed, "serve-arrivals", "gaps")
    mean_gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    priorities = _assign_priorities(seed, num_requests, batch_fraction)
    arrivals = []
    now = 0.0
    for index in range(num_requests):
        now += gaps.numpy.exponential(mean_gap_ms)
        arrivals.append(
            Arrival(index, utterances[index], float(now), priorities[index])
        )
    return arrivals


def uniform_trace(
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
) -> list[Arrival]:
    """Evenly paced arrivals at ``qps`` requests/second (a paced load test)."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    priorities = _assign_priorities(seed, num_requests, batch_fraction)
    return [
        Arrival(index, utterances[index], gap_ms * (index + 1), priorities[index])
        for index in range(num_requests)
    ]


def make_trace(
    kind: str,
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
) -> list[Arrival]:
    """Build a trace by kind name (``poisson`` or ``uniform``)."""
    if kind == "poisson":
        return poisson_trace(num_requests, qps, dataset_size, seed, batch_fraction)
    if kind == "uniform":
        return uniform_trace(num_requests, qps, dataset_size, seed, batch_fraction)
    raise ValueError(f"unknown arrival kind {kind!r}; use 'poisson' or 'uniform'")


def offered_qps(trace: Sequence[Arrival]) -> float:
    """Offered load of a trace: requests per second of arrival span."""
    if not trace:
        return 0.0
    span_ms = max(a.arrival_ms for a in trace)
    if span_ms <= 0:
        return 0.0
    return len(trace) * 1000.0 / span_ms


def save_trace(trace: Sequence[Arrival], path: str | Path) -> Path:
    """Write a trace as JSON (replayable with :func:`load_trace`)."""
    path = Path(path)
    payload = [
        {
            "index": a.index,
            "utterance_index": a.utterance_index,
            "arrival_ms": a.arrival_ms,
            "priority": a.priority,
        }
        for a in trace
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> list[Arrival]:
    """Load a JSON trace; entries are re-sorted into arrival order."""
    entries = json.loads(Path(path).read_text())
    trace = [
        Arrival(
            int(entry["index"]),
            int(entry["utterance_index"]),
            float(entry["arrival_ms"]),
            str(entry.get("priority", PRIORITY_INTERACTIVE)),
        )
        for entry in entries
    ]
    trace.sort(key=lambda a: (a.arrival_ms, a.index))
    return trace
