"""Arrival traces: when requests hit the server and which utterance each is.

A trace is a list of :class:`Arrival` entries sorted by arrival time (ties
broken by index).  Traces are either synthesised — Poisson (memoryless open
loop, the standard serving-workload model) or uniform (a paced load
generator) — or loaded from JSON, so recorded production traces can be
replayed deterministically.

All synthesis is seeded through :mod:`repro.utils.rng`: the same
``(seed, qps, num_requests)`` always yields the bit-identical trace, which
is what makes serve simulations reproducible end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.utils.rng import RngStream


@dataclass(frozen=True)
class Arrival:
    """One request arrival: who arrives when, and which utterance it wants."""

    index: int
    utterance_index: int
    arrival_ms: float

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"arrival {self.index}: negative arrival time")
        if self.utterance_index < 0:
            raise ValueError(f"arrival {self.index}: negative utterance index")


def _assign_utterances(rng: RngStream, count: int, dataset_size: int) -> list[int]:
    if dataset_size < 1:
        raise ValueError("dataset must hold at least one utterance")
    return [rng.integers(0, dataset_size) for _ in range(count)]


def poisson_trace(
    num_requests: int, qps: float, dataset_size: int, seed: int = 0
) -> list[Arrival]:
    """Open-loop Poisson arrivals at ``qps`` requests/second.

    Inter-arrival gaps are exponential with mean ``1000 / qps`` ms; utterances
    are drawn uniformly from the corpus.  Deterministic in ``seed``.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gaps = RngStream(seed, "serve-arrivals", "gaps")
    mean_gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    arrivals = []
    now = 0.0
    for index in range(num_requests):
        now += gaps.numpy.exponential(mean_gap_ms)
        arrivals.append(Arrival(index, utterances[index], float(now)))
    return arrivals


def uniform_trace(
    num_requests: int, qps: float, dataset_size: int, seed: int = 0
) -> list[Arrival]:
    """Evenly paced arrivals at ``qps`` requests/second (a paced load test)."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    return [
        Arrival(index, utterances[index], gap_ms * (index + 1))
        for index in range(num_requests)
    ]


def make_trace(
    kind: str, num_requests: int, qps: float, dataset_size: int, seed: int = 0
) -> list[Arrival]:
    """Build a trace by kind name (``poisson`` or ``uniform``)."""
    if kind == "poisson":
        return poisson_trace(num_requests, qps, dataset_size, seed)
    if kind == "uniform":
        return uniform_trace(num_requests, qps, dataset_size, seed)
    raise ValueError(f"unknown arrival kind {kind!r}; use 'poisson' or 'uniform'")


def offered_qps(trace: Sequence[Arrival]) -> float:
    """Offered load of a trace: requests per second of arrival span."""
    if not trace:
        return 0.0
    span_ms = max(a.arrival_ms for a in trace)
    if span_ms <= 0:
        return 0.0
    return len(trace) * 1000.0 / span_ms


def save_trace(trace: Sequence[Arrival], path: str | Path) -> Path:
    """Write a trace as JSON (replayable with :func:`load_trace`)."""
    path = Path(path)
    payload = [
        {
            "index": a.index,
            "utterance_index": a.utterance_index,
            "arrival_ms": a.arrival_ms,
        }
        for a in trace
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> list[Arrival]:
    """Load a JSON trace; entries are re-sorted into arrival order."""
    entries = json.loads(Path(path).read_text())
    trace = [
        Arrival(
            int(entry["index"]),
            int(entry["utterance_index"]),
            float(entry["arrival_ms"]),
        )
        for entry in entries
    ]
    trace.sort(key=lambda a: (a.arrival_ms, a.index))
    return trace
