"""Arrival traces: when requests hit the server and which utterance each is.

A trace is a list of :class:`Arrival` entries sorted by arrival time (ties
broken by index).  Traces are either synthesised — Poisson (memoryless open
loop, the standard serving-workload model) or uniform (a paced load
generator) — or loaded from JSON, so recorded production traces can be
replayed deterministically.

All synthesis is seeded through :mod:`repro.utils.rng`: the same
``(seed, qps, num_requests)`` always yields the bit-identical trace, which
is what makes serve simulations reproducible end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.serving.request import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    priority_rank,
)
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class Arrival:
    """One request arrival: who arrives when, and which utterance it wants.

    ``priority`` tags the request's SLO class (``interactive`` by default;
    ``batch`` for throughput-oriented offline transcription jobs).

    ``rtf`` is the request's audio real-time factor.  ``0.0`` (the default)
    means the whole utterance is available at ``arrival_ms`` — the offline
    workload every earlier trace encodes.  A positive value streams the
    audio in: ``rtf=1.0`` delivers it at real time (one second of audio per
    second of simulated time), ``rtf=2.0`` at double speed, and the arrival
    expands into timed chunk events (:func:`chunk_schedule`).
    """

    index: int
    utterance_index: int
    arrival_ms: float
    priority: str = PRIORITY_INTERACTIVE
    rtf: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(f"arrival {self.index}: negative arrival time")
        if self.utterance_index < 0:
            raise ValueError(f"arrival {self.index}: negative utterance index")
        if self.rtf < 0:
            raise ValueError(f"arrival {self.index}: rtf must be >= 0")
        priority_rank(self.priority)  # validates the class name


def _assign_utterances(rng: RngStream, count: int, dataset_size: int) -> list[int]:
    if dataset_size < 1:
        raise ValueError("dataset must hold at least one utterance")
    return [rng.integers(0, dataset_size) for _ in range(count)]


def _assign_priorities(seed: int, count: int, batch_fraction: float) -> list[str]:
    """Seeded per-arrival class draw (``batch`` with prob ``batch_fraction``).

    Drawn from its own stream scope, so enabling a class mix never perturbs
    the gap/utterance draws of existing traces (and ``batch_fraction=0``
    reproduces the legacy all-interactive trace bit-identically).
    """
    if not 0.0 <= batch_fraction <= 1.0:
        raise ValueError(f"batch_fraction must be in [0, 1], got {batch_fraction}")
    if batch_fraction == 0.0:
        return [PRIORITY_INTERACTIVE] * count
    classes = RngStream(seed, "serve-arrivals", "classes")
    return [
        PRIORITY_BATCH if classes.uniform() < batch_fraction else PRIORITY_INTERACTIVE
        for _ in range(count)
    ]


def poisson_trace(
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
    rtf: float = 0.0,
) -> list[Arrival]:
    """Open-loop Poisson arrivals at ``qps`` requests/second.

    Inter-arrival gaps are exponential with mean ``1000 / qps`` ms; utterances
    are drawn uniformly from the corpus.  Deterministic in ``seed``.
    ``rtf > 0`` tags every arrival as a streamed audio source at that
    real-time factor (chunk timing is derived later, per utterance).
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gaps = RngStream(seed, "serve-arrivals", "gaps")
    mean_gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    priorities = _assign_priorities(seed, num_requests, batch_fraction)
    arrivals = []
    now = 0.0
    for index in range(num_requests):
        now += gaps.numpy.exponential(mean_gap_ms)
        arrivals.append(
            Arrival(index, utterances[index], float(now), priorities[index], rtf)
        )
    return arrivals


def uniform_trace(
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
    rtf: float = 0.0,
) -> list[Arrival]:
    """Evenly paced arrivals at ``qps`` requests/second (a paced load test)."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    gap_ms = 1000.0 / qps
    utterances = _assign_utterances(
        RngStream(seed, "serve-arrivals", "utterances"), num_requests, dataset_size
    )
    priorities = _assign_priorities(seed, num_requests, batch_fraction)
    return [
        Arrival(index, utterances[index], gap_ms * (index + 1), priorities[index], rtf)
        for index in range(num_requests)
    ]


def make_trace(
    kind: str,
    num_requests: int,
    qps: float,
    dataset_size: int,
    seed: int = 0,
    batch_fraction: float = 0.0,
    rtf: float = 0.0,
) -> list[Arrival]:
    """Build a trace by kind name (``poisson`` or ``uniform``)."""
    if kind == "poisson":
        return poisson_trace(num_requests, qps, dataset_size, seed, batch_fraction, rtf)
    if kind == "uniform":
        return uniform_trace(num_requests, qps, dataset_size, seed, batch_fraction, rtf)
    raise ValueError(f"unknown arrival kind {kind!r}; use 'poisson' or 'uniform'")


def chunk_schedule(
    arrival: Arrival, duration_s: float, chunk_s: float
) -> list[tuple[float, float]]:
    """Timed audio-chunk events for one arrival.

    Returns ``(at_ms, heard_s)`` pairs: by simulated time ``at_ms`` the
    server has heard the first ``heard_s`` seconds of the utterance.  An
    offline arrival (``rtf == 0``) is a single event delivering the whole
    utterance at ``arrival_ms``; a streamed one delivers ``chunk_s``-second
    chunks paced at its real-time factor (the final chunk may be shorter).
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if chunk_s <= 0:
        raise ValueError(f"chunk_s must be positive, got {chunk_s}")
    if arrival.rtf <= 0:
        return [(arrival.arrival_ms, duration_s)]
    events = []
    heard = 0.0
    while heard < duration_s:
        heard = min(heard + chunk_s, duration_s)
        events.append((arrival.arrival_ms + heard * 1000.0 / arrival.rtf, heard))
    return events


def offered_qps(trace: Sequence[Arrival]) -> float:
    """Offered load of a trace: requests per second of arrival span.

    The span is measured first→last arrival, so a replayed/trimmed trace
    that starts late (or was recorded with an offset clock) reports the
    same load as the equivalent trace shifted to t=0.  A single-arrival
    trace has no span and reports ``0.0``.
    """
    if len(trace) < 2:
        return 0.0
    first = min(a.arrival_ms for a in trace)
    last = max(a.arrival_ms for a in trace)
    span_ms = last - first
    if span_ms <= 0:
        return 0.0
    return len(trace) * 1000.0 / span_ms


def save_trace(trace: Sequence[Arrival], path: str | Path) -> Path:
    """Write a trace as JSON (replayable with :func:`load_trace`)."""
    path = Path(path)
    payload = [
        {
            "index": a.index,
            "utterance_index": a.utterance_index,
            "arrival_ms": a.arrival_ms,
            "priority": a.priority,
            "rtf": a.rtf,
        }
        for a in trace
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> list[Arrival]:
    """Load a JSON trace; entries are re-sorted into arrival order."""
    entries = json.loads(Path(path).read_text())
    trace = [
        Arrival(
            int(entry["index"]),
            int(entry["utterance_index"]),
            float(entry["arrival_ms"]),
            str(entry.get("priority", PRIORITY_INTERACTIVE)),
            float(entry.get("rtf", 0.0)),
        )
        for entry in entries
    ]
    trace.sort(key=lambda a: (a.arrival_ms, a.index))
    return trace
