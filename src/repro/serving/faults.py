"""Deterministic fault injection for the serving simulation.

A :class:`FaultPlan` is a seeded, fully deterministic description of what
goes wrong during one serve simulation — the chaos-engineering counterpart
of an arrival trace.  Four fault kinds compose freely:

* :class:`DeviceCrash` — the device dies at ``at_ms``.  With a
  ``restart_delay_ms`` it warm-restarts after a weight-reload delay (the
  device is dead for exactly that window); without one the loss is
  permanent.  A batch executing when the crash hits is *aborted*: its
  phases roll back to the waiting state and are re-dispatched elsewhere.
* :class:`DeviceStall` — a transient unavailability window
  ``[at_ms, at_ms + duration_ms)``: the device accepts no new work while
  stalled (in-flight batches ride through — a stall models a hiccup in
  dispatch, not a loss of state).
* :class:`DeviceSlowdown` — a straggler: the device's effective speed is
  multiplied by ``factor`` inside the window (``factor < 1`` slows it).
  Batches are priced at the effective speed of their *start* time.
* :class:`PhaseErrorRate` — transient phase-level errors: each executed
  phase independently fails with probability ``rate``, decided by a stable
  hash of ``(plan seed, request, phase index, attempt)`` — the same plan
  always fails the same executions, on any host.

The scheduler threads the plan into its devices
(:meth:`repro.serving.devices.Device.set_fault_profile`) and its event
loop; everything stays a pure function of (trace, decoder, cluster, plan),
so chaos runs are exactly as reproducible as fault-free ones.

The CLI grammar (``repro serve-sim --faults SPEC``) is ``;``-separated
events::

    crash@2000:dev3                 # permanent crash at t=2000 ms
    crash@2000:dev3:restart=1500    # warm restart 1500 ms later
    stall@1000+500:dev0             # no new work in [1000, 1500)
    slow:dev2:x0.5                  # half speed for the whole run
    slow@3000+2000:dev2:x0.25       # quarter speed in [3000, 5000)
    perr:0.02                       # 2% transient phase-error rate

Device references accept ``devI`` or a bare index ``I``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.hashing import stable_uniform

#: Fault event kind tags (mirrored in the spec grammar).
FAULT_CRASH = "crash"
FAULT_STALL = "stall"
FAULT_SLOW = "slow"
FAULT_PHASE_ERROR = "perr"


@dataclass(frozen=True)
class DeviceCrash:
    """Device ``device`` dies at ``at_ms``; optionally warm-restarts."""

    device: int
    at_ms: float
    restart_delay_ms: float | None = None  # weight-reload time; None = permanent

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError(f"crash device index must be >= 0, got {self.device}")
        if not math.isfinite(self.at_ms) or self.at_ms < 0:
            raise ValueError(f"crash time must be finite and >= 0, got {self.at_ms}")
        if self.restart_delay_ms is not None and (
            not math.isfinite(self.restart_delay_ms) or self.restart_delay_ms <= 0
        ):
            raise ValueError(
                f"restart delay must be finite and > 0, got {self.restart_delay_ms}"
            )

    @property
    def restart_ms(self) -> float | None:
        """Absolute time service resumes (None for a permanent crash)."""
        if self.restart_delay_ms is None:
            return None
        return self.at_ms + self.restart_delay_ms


@dataclass(frozen=True)
class DeviceStall:
    """No new work dispatches to ``device`` in ``[at_ms, at_ms + duration)``."""

    device: int
    at_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError(f"stall device index must be >= 0, got {self.device}")
        if not math.isfinite(self.at_ms) or self.at_ms < 0:
            raise ValueError(f"stall start must be finite and >= 0, got {self.at_ms}")
        if not math.isfinite(self.duration_ms) or self.duration_ms <= 0:
            raise ValueError(
                f"stall duration must be finite and > 0, got {self.duration_ms}"
            )

    @property
    def end_ms(self) -> float:
        return self.at_ms + self.duration_ms


@dataclass(frozen=True)
class DeviceSlowdown:
    """Multiply ``device``'s effective speed by ``factor`` inside a window."""

    device: int
    factor: float
    at_ms: float = 0.0
    duration_ms: float = math.inf  # default: the whole run

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError(f"slowdown device index must be >= 0, got {self.device}")
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(
                f"slowdown factor must be finite and > 0, got {self.factor}"
            )
        if not math.isfinite(self.at_ms) or self.at_ms < 0:
            raise ValueError(
                f"slowdown start must be finite and >= 0, got {self.at_ms}"
            )
        if self.duration_ms <= 0 or math.isnan(self.duration_ms):
            raise ValueError(
                f"slowdown duration must be > 0, got {self.duration_ms}"
            )

    @property
    def end_ms(self) -> float:
        return self.at_ms + self.duration_ms


@dataclass(frozen=True)
class PhaseErrorRate:
    """Each executed phase fails independently with probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"phase-error rate must be in [0, 1), got {self.rate}")


#: Any single fault event.
FaultEvent = DeviceCrash | DeviceStall | DeviceSlowdown | PhaseErrorRate


@dataclass(frozen=True)
class DeviceFaultProfile:
    """The slice of a fault plan that concerns one device.

    This is what :class:`~repro.serving.devices.Device` consults for its
    availability and effective speed; an all-default profile is the
    fault-free case.
    """

    crash_ms: float | None = None
    restart_ms: float | None = None  # absolute resume time; None = permanent
    stalls: tuple[tuple[float, float], ...] = ()  # (start, end) windows
    slowdowns: tuple[tuple[float, float, float], ...] = ()  # (start, end, factor)

    def is_dead(self, at_ms: float) -> bool:
        """True while the device is crashed (and not yet restarted)."""
        if self.crash_ms is None or at_ms < self.crash_ms:
            return False
        return self.restart_ms is None or at_ms < self.restart_ms

    def is_stalled(self, at_ms: float) -> bool:
        return any(start <= at_ms < end for start, end in self.stalls)

    def available(self, at_ms: float) -> bool:
        """Can the device start new work at ``at_ms``?"""
        return not self.is_dead(at_ms) and not self.is_stalled(at_ms)

    def speed_factor(self, at_ms: float) -> float:
        """Product of slowdown factors whose windows contain ``at_ms``."""
        factor = 1.0
        for start, end, window_factor in self.slowdowns:
            if start <= at_ms < end:
                factor *= window_factor
        return factor

    def crash_during(self, start_ms: float, end_ms: float) -> float | None:
        """The crash time if it aborts work spanning ``[start, end)``."""
        if self.crash_ms is not None and start_ms < self.crash_ms < end_ms:
            return self.crash_ms
        return None

    def unavailable_intervals(self) -> list[tuple[float, float]]:
        """Dead + stalled windows (unmerged; ends may be ``inf``)."""
        intervals = list(self.stalls)
        if self.crash_ms is not None:
            intervals.append((self.crash_ms, self.restart_ms or math.inf))
        return intervals


#: Profile every device gets when no plan is in force.
HEALTHY_PROFILE = DeviceFaultProfile()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault events for one simulation."""

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        crashed: set[int] = set()
        for event in self.events:
            if isinstance(event, DeviceCrash):
                if event.device in crashed:
                    raise ValueError(
                        f"device {event.device} has more than one crash event; "
                        "model repeated failures as crash + restart + crash on "
                        "distinct devices instead"
                    )
                crashed.add(event.device)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- per-kind views ----------------------------------------------------
    @property
    def phase_error_rate(self) -> float:
        """Combined transient phase-error probability (independent events)."""
        survive = 1.0
        for event in self.events:
            if isinstance(event, PhaseErrorRate):
                survive *= 1.0 - event.rate
        return 1.0 - survive

    def device_events(self) -> list[DeviceCrash | DeviceStall | DeviceSlowdown]:
        return [e for e in self.events if not isinstance(e, PhaseErrorRate)]

    def validate_for(self, num_devices: int) -> None:
        """Raise if any event names a device the cluster does not have."""
        for event in self.device_events():
            if event.device >= num_devices:
                raise ValueError(
                    f"fault plan names device {event.device}, but the cluster "
                    f"has only {num_devices} device(s) (dev0..dev{num_devices - 1})"
                )

    def profiles(self, num_devices: int) -> list[DeviceFaultProfile]:
        """One :class:`DeviceFaultProfile` per device index."""
        self.validate_for(num_devices)
        crash: dict[int, DeviceCrash] = {}
        stalls: dict[int, list[tuple[float, float]]] = {}
        slowdowns: dict[int, list[tuple[float, float, float]]] = {}
        for event in self.device_events():
            if isinstance(event, DeviceCrash):
                crash[event.device] = event
            elif isinstance(event, DeviceStall):
                stalls.setdefault(event.device, []).append(
                    (event.at_ms, event.end_ms)
                )
            elif isinstance(event, DeviceSlowdown):
                slowdowns.setdefault(event.device, []).append(
                    (event.at_ms, event.end_ms, event.factor)
                )
        profiles = []
        for index in range(num_devices):
            crashed = crash.get(index)
            profiles.append(
                DeviceFaultProfile(
                    crash_ms=crashed.at_ms if crashed else None,
                    restart_ms=crashed.restart_ms if crashed else None,
                    stalls=tuple(sorted(stalls.get(index, []))),
                    slowdowns=tuple(sorted(slowdowns.get(index, []))),
                )
            )
        return profiles

    def wakeup_times(self) -> tuple[float, ...]:
        """Sorted simulation times the scheduler must wake at.

        Crash times (to abort and re-plan), restart times and stall ends
        (newly available capacity), stall starts and finite slowdown
        boundaries (dispatch pricing changes).
        """
        times: set[float] = set()
        for event in self.device_events():
            times.add(event.at_ms)
            if isinstance(event, DeviceCrash) and event.restart_ms is not None:
                times.add(event.restart_ms)
            elif isinstance(event, DeviceStall):
                times.add(event.end_ms)
            elif isinstance(event, DeviceSlowdown) and math.isfinite(event.end_ms):
                times.add(event.end_ms)
        return tuple(sorted(times))

    def membership_times(self) -> tuple[float, ...]:
        """Sorted times the *alive* device set changes (crashes, restarts)."""
        times: set[float] = set()
        for event in self.events:
            if isinstance(event, DeviceCrash):
                times.add(event.at_ms)
                if event.restart_ms is not None:
                    times.add(event.restart_ms)
        return tuple(sorted(times))

    def phase_fails(self, request_index: int, phase_index: int, attempt: int) -> bool:
        """Deterministic transient-error verdict for one phase execution.

        A pure function of ``(plan seed, request, phase, attempt)``: every
        copy of the same execution (e.g. a straggler duplicate) gets the
        same verdict, and re-running the plan reproduces it bit-identically.
        """
        rate = self.phase_error_rate
        if rate <= 0.0:
            return False
        draw = stable_uniform(
            self.seed, "fault-phase-error", request_index, phase_index, attempt
        )
        return draw < rate

    def degraded_ms(self, num_devices: int, horizon_ms: float) -> float:
        """Sim time within ``[0, horizon]`` with >= 1 device dead or stalled."""
        if horizon_ms <= 0:
            return 0.0
        intervals: list[tuple[float, float]] = []
        for profile in self.profiles(num_devices):
            for start, end in profile.unavailable_intervals():
                start = max(0.0, start)
                end = min(end, horizon_ms)
                if end > start:
                    intervals.append((start, end))
        if not intervals:
            return 0.0
        intervals.sort()
        total = 0.0
        cur_start, cur_end = intervals[0]
        for start, end in intervals[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        total += cur_end - cur_start
        return total

    def describe(self) -> str:
        """Canonical spec-grammar rendering (parse/format round-trips)."""
        return format_fault_plan(self)


def _parse_device(text: str, item: str, spec: str) -> int:
    token = text.strip()
    if token.startswith("dev"):
        token = token[3:]
    try:
        device = int(token)
    except ValueError:
        raise ValueError(
            f"bad device reference {text!r} in fault event {item!r} of spec "
            f"{spec!r}; expected devI or a bare index (e.g. dev2 or 2)"
        ) from None
    if device < 0:
        raise ValueError(
            f"device index must be >= 0 in fault event {item!r} of spec {spec!r}"
        )
    return device


def _parse_float(text: str, what: str, item: str, spec: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad {what} {text!r} in fault event {item!r} of spec {spec!r}"
        ) from None


def parse_fault_spec(text: str, seed: int = 0) -> FaultPlan:
    """Parse the ``;``-separated CLI fault grammar into a :class:`FaultPlan`.

    See the module docstring for the grammar.  An empty/whitespace spec is
    the empty (fault-free) plan.  ``seed`` feeds the transient phase-error
    hash and is otherwise inert.
    """
    events: list[FaultEvent] = []
    for raw in text.split(";"):
        item = raw.strip()
        if not item:
            continue
        head, _, rest = item.partition(":")
        kind, _, when = head.partition("@")
        kind = kind.strip()
        if kind == FAULT_CRASH:
            if not when or not rest:
                raise ValueError(
                    f"bad crash event {item!r} in spec {text!r}; expected "
                    "crash@TIME:devI[:restart=MS]"
                )
            at_ms = _parse_float(when, "crash time", item, text)
            dev_text, _, tail = rest.partition(":")
            restart = None
            if tail:
                key, _, value = tail.partition("=")
                if key.strip() != "restart" or not value:
                    raise ValueError(
                        f"bad crash option {tail!r} in fault event {item!r}; "
                        "expected restart=MS"
                    )
                restart = _parse_float(value, "restart delay", item, text)
            events.append(
                DeviceCrash(
                    device=_parse_device(dev_text, item, text),
                    at_ms=at_ms,
                    restart_delay_ms=restart,
                )
            )
        elif kind == FAULT_STALL:
            start_text, sep, duration_text = when.partition("+")
            if not sep or not rest:
                raise ValueError(
                    f"bad stall event {item!r} in spec {text!r}; expected "
                    "stall@TIME+DURATION:devI"
                )
            events.append(
                DeviceStall(
                    device=_parse_device(rest, item, text),
                    at_ms=_parse_float(start_text, "stall start", item, text),
                    duration_ms=_parse_float(
                        duration_text, "stall duration", item, text
                    ),
                )
            )
        elif kind == FAULT_SLOW:
            dev_text, _, factor_text = rest.partition(":")
            if not dev_text or not factor_text.startswith("x"):
                raise ValueError(
                    f"bad slowdown event {item!r} in spec {text!r}; expected "
                    "slow:devI:xFACTOR or slow@TIME+DURATION:devI:xFACTOR"
                )
            factor = _parse_float(factor_text[1:], "slowdown factor", item, text)
            if when:
                start_text, sep, duration_text = when.partition("+")
                if not sep:
                    raise ValueError(
                        f"bad slowdown window {when!r} in fault event {item!r}; "
                        "expected TIME+DURATION"
                    )
                events.append(
                    DeviceSlowdown(
                        device=_parse_device(dev_text, item, text),
                        factor=factor,
                        at_ms=_parse_float(start_text, "slowdown start", item, text),
                        duration_ms=_parse_float(
                            duration_text, "slowdown duration", item, text
                        ),
                    )
                )
            else:
                events.append(
                    DeviceSlowdown(
                        device=_parse_device(dev_text, item, text), factor=factor
                    )
                )
        elif kind == FAULT_PHASE_ERROR:
            if when or not rest:
                raise ValueError(
                    f"bad phase-error event {item!r} in spec {text!r}; "
                    "expected perr:RATE"
                )
            events.append(
                PhaseErrorRate(rate=_parse_float(rest, "phase-error rate", item, text))
            )
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} in spec {text!r}; use one of "
                f"{FAULT_CRASH}, {FAULT_STALL}, {FAULT_SLOW}, {FAULT_PHASE_ERROR}"
            )
    return FaultPlan(events=tuple(events), seed=seed)


def format_fault_plan(plan: FaultPlan) -> str:
    """Render a plan back into the spec grammar (inverse of the parser)."""
    parts = []
    for event in plan.events:
        if isinstance(event, DeviceCrash):
            part = f"crash@{event.at_ms:g}:dev{event.device}"
            if event.restart_delay_ms is not None:
                part += f":restart={event.restart_delay_ms:g}"
        elif isinstance(event, DeviceStall):
            part = f"stall@{event.at_ms:g}+{event.duration_ms:g}:dev{event.device}"
        elif isinstance(event, DeviceSlowdown):
            if math.isinf(event.duration_ms) and event.at_ms == 0.0:
                part = f"slow:dev{event.device}:x{event.factor:g}"
            else:
                part = (
                    f"slow@{event.at_ms:g}+{event.duration_ms:g}:"
                    f"dev{event.device}:x{event.factor:g}"
                )
        else:
            part = f"perr:{event.rate:g}"
        parts.append(part)
    return ";".join(parts)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for failed phase dispatches.

    A failed phase (crash abort or transient error) re-enters the waiting
    state ``backoff_ms * 2**(attempt - 1)`` after the failure; once a single
    phase fails more than ``max_retries`` times the whole request is shed
    (reason ``"retries"``) — a poisoned request must not spin forever on a
    flaky cluster.
    """

    max_retries: int = 3
    backoff_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not math.isfinite(self.backoff_ms) or self.backoff_ms < 0:
            raise ValueError(
                f"backoff_ms must be finite and >= 0, got {self.backoff_ms}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        return self.backoff_ms * (2.0 ** max(0, attempt - 1))

    def exhausted(self, attempts: int) -> bool:
        return attempts > self.max_retries


__all__ = [
    "DeviceCrash",
    "DeviceFaultProfile",
    "DeviceSlowdown",
    "DeviceStall",
    "FAULT_CRASH",
    "FAULT_PHASE_ERROR",
    "FAULT_SLOW",
    "FAULT_STALL",
    "FaultPlan",
    "HEALTHY_PROFILE",
    "PhaseErrorRate",
    "RetryPolicy",
    "format_fault_plan",
    "parse_fault_spec",
]
