"""Bring your own models: SpecASR over a custom draft/target pair.

The registry presets mirror the paper's models, but the engine works with
any :class:`SimulatedASRModel` — or any object exposing the same session
interface (see ``repro.decoding.base.SessionLike`` — wrapping a real
HuggingFace model means implementing ``peek/step/step_frontier/verify_eval``
against its logits).  This example builds a custom pair from scratch: a fast
distilled draft and a slow high-quality target with user-chosen capacity and
latency constants, then compares ASP vs TSP to pick the right SpecASR mode
for the pair's size disparity.

Run:  python examples/custom_model_pair.py
"""

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.harness.figures import ascii_table
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.latency import LatencyProfile
from repro.models.simulated import SimulatedASRModel


def build_custom_pair(vocab):
    """A distilled 0.5 B draft and a 30 B-class target (huge disparity)."""
    draft = SimulatedASRModel(
        name="distil-asr-0.5b",
        capacity=0.82,
        latency=LatencyProfile(
            name="distil-asr-0.5b",
            base_ms=4.0,
            per_token_ms=0.10,
            kv_us_per_token=1.0,
            prefill_per_token_ms=0.03,
        ),
        vocab=vocab,
        encoder_latency_ms_per_10s=12.0,
    )
    target = SimulatedASRModel(
        name="asr-30b",
        capacity=0.96,
        latency=LatencyProfile(
            name="asr-30b",
            base_ms=95.0,
            per_token_ms=0.50,
            kv_us_per_token=4.0,
            prefill_per_token_ms=0.15,
        ),
        vocab=vocab,
        encoder_latency_ms_per_10s=40.0,
    )
    return draft, target


def main() -> None:
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", ExperimentConfig(utterances=16))
    draft, target = build_custom_pair(vocab)

    decoders = {
        "autoregressive": AutoregressiveDecoder(target),
        "specasr-asp": SpecASREngine(
            draft, target, SpecASRConfig(recycling=True), name="specasr-asp"
        ),
        "specasr-tsp": SpecASREngine(
            draft,
            target,
            SpecASRConfig(recycling=True, sparse_tree=True),
            name="specasr-tsp",
        ),
    }

    rows = []
    reference = None
    ar_ms = None
    for name, decoder in decoders.items():
        total_ms = 0.0
        tokens = []
        for utterance in dataset:
            result = decoder.decode(utterance)
            total_ms += result.total_ms
            tokens.append(result.tokens)
        if reference is None:
            reference, ar_ms = tokens, total_ms
        assert tokens == reference, f"{name} is not lossless!"
        rows.append([name, total_ms / len(dataset), ar_ms / total_ms])

    print(
        ascii_table(
            ["method", "ms/utterance", "speedup vs AR"],
            rows,
            title="Custom pair: distil-asr-0.5b drafting for asr-30b",
        )
    )
    asp_ms = rows[1][1]
    tsp_ms = rows[2][1]
    recommended = "specasr-tsp" if tsp_ms < asp_ms else "specasr-asp"
    print(
        f"\nrecommended mode for this pair: {recommended}\n"
        "(rule of thumb from the paper: the larger the draft/target size\n"
        " disparity, the more two-pass sparse-tree prediction pays off)"
    )


if __name__ == "__main__":
    main()
