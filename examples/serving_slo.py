"""Serving walkthrough: live traffic, latency SLOs, and capacity per method.

Simulates a stream of transcription requests (Poisson arrivals) hitting one
simulated accelerator behind a bounded admission queue and a continuous
micro-batch scheduler, then answers the deployment question behind the
paper's speedup claim: **how much more live traffic does speculative
decoding serve at a fixed latency SLO?**

The walkthrough:

1. serves the same 2 QPS load with autoregressive decoding and SpecASR and
   compares client-observed latency percentiles;
2. pushes autoregressive decoding past its saturation point to show queueing
   collapse and admission-queue backpressure (rejections);
3. searches the max sustainable QPS per method at a 3 s completion SLO;
4. scales the cluster: 1 vs 2 vs 4 simulated devices, colocated sharding vs
   draft/target disaggregation vs merged cross-request verification;
5. makes placement a real optimisation problem: a heterogeneous
   ``2x1.0,2x0.5`` fast/slow cluster, fixed ``K // 2`` pools vs the
   workload-aware balanced planner (pool sizes follow the measured
   draft:verify cost ratio and the device speeds);
6. turns on the chaos: kills a target-pool device mid-run (with a warm
   restart) on the 4-device disaggregated cluster and shows the scheduler
   absorbing it — aborted batches requeue, pools re-plan around the dead
   device, and every transcript stays bit-identical to the fault-free run.

Run:  PYTHONPATH=src python examples/serving_slo.py
"""

from dataclasses import replace

from repro.serving import (
    ServeSimConfig,
    build_decoder,
    max_sustainable_qps,
    simulate,
)


def main() -> None:
    slo_ms = 3000.0

    print("=== 1. same load, two methods " + "=" * 38)
    for method in ("autoregressive", "specasr-tsp"):
        config = ServeSimConfig(
            method=method, qps=2.0, num_requests=48, deadline_ms=slo_ms
        )
        print(simulate(config).render())
        print()

    print("=== 2. pushing autoregressive past saturation " + "=" * 22)
    for qps in (0.5, 1.0, 2.0, 4.0):
        config = ServeSimConfig(
            method="autoregressive",
            qps=qps,
            num_requests=48,
            deadline_ms=slo_ms,
            queue_capacity=8,  # small queue: overload becomes rejections
        )
        report = simulate(config)
        print(
            f"  {qps:4.1f} qps -> goodput {report.goodput_ratio:6.1%}, "
            f"p95 completion {report.completion.p95:8.1f} ms, "
            f"rejected {report.rejected}"
        )
    print()

    print("=== 3. max sustainable QPS at the SLO " + "=" * 30)
    baseline = None
    for method in ("autoregressive", "spec(8,1)", "specasr-asp", "specasr-tsp"):
        config = ServeSimConfig(method=method, num_requests=64, deadline_ms=slo_ms)
        max_qps, _ = max_sustainable_qps(config)
        if baseline is None:
            baseline = max_qps
        ratio = max_qps / baseline if baseline > 0 else float("nan")
        print(
            f"  {method:16s} sustains {max_qps:6.2f} qps "
            f"({ratio:4.2f}x autoregressive capacity)"
        )
    print()

    print("=== 4. scaling out: devices x placement policy " + "=" * 21)
    # One decoder (and its warm oracle caches) serves every search probe;
    # transcripts and per-request decode times are identical at every point
    # (the cluster determinism contract) — only capacity moves.
    base = ServeSimConfig(method="specasr-asp", num_requests=48, deadline_ms=slo_ms)
    decoder = build_decoder(base)
    single_device = None
    for devices, router in (
        (1, "colocated"),
        (2, "colocated"),
        (2, "disaggregated"),
        (2, "merged"),
        (4, "colocated"),
        (4, "disaggregated"),
        (4, "merged"),
    ):
        config = replace(base, devices=devices, router=router)
        max_qps, _ = max_sustainable_qps(config, refine_steps=4, decoder=decoder)
        if single_device is None:
            single_device = max_qps
        ratio = max_qps / single_device if single_device > 0 else float("nan")
        print(
            f"  {devices}x {router:14s} sustains {max_qps:6.2f} qps "
            f"({ratio:4.2f}x one device)"
        )
    print()

    print("=== 5. heterogeneous clusters + workload-aware splits " + "=" * 14)
    # Two full-speed and two half-speed accelerators.  The fixed K//2 split
    # wastes fast silicon on the cheap draft side; the balanced planner
    # measures the draft:verify cost ratio and gives the fast devices to
    # the verify pool, sized to the workload.
    for devices, spec, split in (
        (4, "", "fixed"),
        (4, "", "balanced"),
        (4, "2x1.0,2x0.5", "fixed"),
        (4, "2x1.0,2x0.5", "balanced"),
    ):
        config = replace(
            base,
            devices=devices,
            router="disaggregated",
            pool_split=split,
            device_spec=spec,
        )
        max_qps, probes = max_sustainable_qps(config, refine_steps=4, decoder=decoder)
        report = next(iter(probes.values()))
        roles = "".join(
            "D" if role == "draft" else "T" for role in report.stats.device_roles
        )
        label = spec if spec else "4x1.0 (homogeneous)"
        print(
            f"  {label:18s} split={split:8s} pools {roles}  "
            f"sustains {max_qps:6.2f} qps"
        )
    print()

    print("=== 6. chaos: losing a device mid-run " + "=" * 30)
    # The same 4-device disaggregated cluster under a steady 8 QPS load,
    # except dev3 — a target-pool device — crashes 2 s in and warm-restarts
    # 1.5 s later.  Every batch in flight on dev3 at the crash is aborted
    # and its phases requeue; the router re-plans the pools around the dead
    # device and folds it back in at restart.  Crucially, the decode
    # steppers only advance on commit, so the recovered requests finish
    # with transcripts bit-identical to the fault-free run: chaos moves
    # *waiting*, never *results*.
    chaos_base = replace(base, qps=8.0, devices=4, router="disaggregated")
    fault_free = simulate(chaos_base, decoder=decoder)
    chaotic = simulate(
        replace(chaos_base, faults="crash@2000:dev3:restart=1500"),
        decoder=decoder,
    )
    print(chaotic.render())
    print()
    chaos = chaotic.chaos_dict()
    print(
        f"  the crash aborted work worth {chaos['wasted_busy_ms']:.1f} ms, "
        f"forcing {chaos['retries']} retries / {chaos['requeues']} requeues;"
    )
    print(
        f"  {chaotic.completed}/{chaotic.num_requests} requests still "
        f"completed (fault-free: {fault_free.completed}) and p95 completion "
        f"moved {fault_free.completion.p95:.0f} -> "
        f"{chaotic.completion.p95:.0f} ms."
    )


if __name__ == "__main__":
    main()
