"""Tune the ASP truncation threshold for a custom model pair (Fig. 13a).

The normalised-logit threshold controls when the draft stops extending: too
low and the draft wastes steps on tokens the target will reject; too high
and correct tokens are truncated, inflating verification rounds.  This
example sweeps the threshold for any registered pairing and prints the
U-curve plus the tuned value — the workflow a user would follow before
deploying SpecASR on their own models.

Run:  python examples/threshold_tuning.py [--pairing whisper]
"""

import argparse
from dataclasses import replace

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.harness.figures import ascii_bars, ascii_table
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import PAIRINGS, model_pair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairing", choices=sorted(PAIRINGS), default="whisper")
    parser.add_argument("--utterances", type=int, default=24)
    args = parser.parse_args()

    vocab = shared_vocabulary()
    dataset = load_split("dev-clean", ExperimentConfig(utterances=args.utterances))
    draft, target = model_pair(args.pairing, vocab)
    base_config = SpecASRConfig(recycling=True)

    rows = []
    curve = []
    thresholds = [round(0.1 * i, 1) for i in range(8)]
    for threshold in thresholds:
        engine = SpecASREngine(draft, target, replace(base_config, threshold=threshold))
        total_ms = draft_steps = rounds = 0.0
        for utterance in dataset:
            result = engine.decode(utterance)
            total_ms += result.total_ms
            draft_steps += result.trace.total_draft_steps
            rounds += result.trace.num_rounds
        per_utt = total_ms / len(dataset)
        rows.append(
            [threshold, draft_steps / len(dataset), rounds / len(dataset), per_utt]
        )
        curve.append(per_utt)

    print(
        ascii_table(
            ["threshold", "draft steps/utt", "verify rounds/utt", "ms/utt"],
            rows,
            title=f"Truncation-threshold sweep — {args.pairing} (dev-clean)",
        )
    )
    print()
    print(ascii_bars(
        [f"t={t}" for t in thresholds],
        curve,
        unit=" ms",
        title="latency per utterance (lower is better)",
    ))
    best = thresholds[curve.index(min(curve))]
    print(f"\ntuned threshold: {best}  (paper's tuned value: 0.4)")
    print(
        "Tune on a dev split, deploy on test — thresholds transfer across "
        "splits but not necessarily across model pairs."
    )


if __name__ == "__main__":
    main()
