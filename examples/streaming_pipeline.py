"""Streaming SpecASR: live transcription with chunked audio.

Feeds an utterance to :class:`StreamingSpecASR` in one-second chunks and
prints the emission timeline — when each partial transcript became final,
the first-token latency, and the tail latency after end-of-audio.  This is
the deployment mode the paper's real-time constraints are about: the decoder
must keep pace with the microphone, not just be fast in aggregate.

Run:  python examples/streaming_pipeline.py
"""

from repro.core.config import SpecASRConfig
from repro.core.streaming import StreamingConfig, StreamingSpecASR
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import model_pair


def main() -> None:
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", ExperimentConfig(utterances=8))
    utterance = max(dataset, key=lambda u: u.duration_s)  # longest utterance
    draft, target = model_pair("whisper", vocab)
    streamer = StreamingSpecASR(
        draft,
        target,
        StreamingConfig(chunk_s=1.0, specasr=SpecASRConfig(sparse_tree=True)),
    )

    print(f"utterance : {utterance.utterance_id} ({utterance.duration_s:.1f} s)")
    print(f"reference : {utterance.text}\n")
    result = streamer.decode_stream(utterance)
    words = vocab.decode_ids(result.tokens)

    print("stream timeline (chunk arrivals every 1.0 s):")
    shown = 0
    for time_s, count in result.partials:
        if count == shown:
            continue
        new_words = " ".join(words[shown:count])
        print(f"  t={time_s:6.2f}s  +{count - shown:2d} tokens: {new_words}")
        shown = count

    first = result.first_token_latency_s
    first_label = f"{first:.2f} s" if first is not None else "n/a (empty transcript)"
    print(f"\nfirst-token latency : {first_label}")
    print(
        f"tail latency        : {result.final_latency_s * 1000:.0f} ms "
        f"after end-of-audio"
    )
    print(f"real-time factor    : {result.real_time_factor:.3f} (must stay < 1)")
    print(f"chunks processed    : {result.chunks}")


if __name__ == "__main__":
    main()
