"""Real-time-factor analysis: can each decoder keep up with live speech?

The paper's motivation is real-time ASR: an LLM decoder that takes longer
than the audio it transcribes is unusable live.  This example measures the
simulated real-time factor (decode latency / audio duration) per method and
per target scale, and reports the largest LLM target each method can serve
under a given RTF budget — the deployment question SpecASR answers.

A second section runs the serving simulator in streaming mode: requests
deliver audio in timed chunks at real-time rate, decode sessions start
before the utterance completes, and the report carries word-level TTFT and
per-chunk emission-latency percentiles — the live-microphone view of the
same deployment question.

Run:  python examples/streaming_realtime.py
"""

from repro.harness.figures import ascii_table
from repro.harness.methods import standard_methods
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import PAIRINGS, model_pair
from repro.serving import ServeSimConfig, simulate

RTF_BUDGET = 0.10  # decode in at most 10 % of the audio duration


def serve_streaming() -> None:
    """Streaming serve-sim: chunked arrivals, word-level TTFT, emission lag."""
    report = simulate(
        ServeSimConfig(
            num_requests=8,
            utterances=6,
            qps=0.4,
            streaming=True,
            rtf=1.0,
            chunk_s=1.0,
            lookahead_s=0.3,
        )
    )
    summary = report.streaming
    assert summary is not None
    assert summary.word_ttft and summary.emission_latency and summary.final_latency
    print("\nStreaming serve-sim (8 requests, audio at real-time rate):")
    print(f"  streams completed   : {summary.completed}/{summary.requests}")
    print(f"  audio chunks heard  : {summary.chunks}")
    print(f"  word-level TTFT     : p50 {summary.word_ttft.p50:.0f} ms")
    print(
        f"  emission latency    : p50 {summary.emission_latency.p50:.0f} ms"
        f"  p95 {summary.emission_latency.p95:.0f} ms"
    )
    print(
        f"  final latency       : p95 {summary.final_latency.p95:.0f} ms"
        f" after end-of-audio"
    )
    print(f"  partial stability   : {100.0 * (1.0 - summary.partial_stability):.0f} %")


def main() -> None:
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", ExperimentConfig(utterances=16))
    duration = dataset.total_duration_s

    rows = []
    feasible: dict[str, list[str]] = {}
    for pairing in PAIRINGS:
        draft, target = model_pair(pairing, vocab)
        for name, decoder in standard_methods(draft, target).items():
            total_ms = sum(decoder.decode(u).total_ms for u in dataset)
            rtf = total_ms / 1000.0 / duration
            rows.append([pairing, name, total_ms / len(dataset), rtf])
            if rtf <= RTF_BUDGET:
                feasible.setdefault(name, []).append(pairing)

    print(
        ascii_table(
            ["target pairing", "method", "ms / utterance", "real-time factor"],
            rows,
            title="Simulated real-time factor per decoding method",
        )
    )
    print(f"\nMethods meeting the RTF budget of {RTF_BUDGET:.2f}:")
    for name, pairings in feasible.items():
        print(f"  {name:16s} -> {', '.join(pairings)}")
    if "specasr-tsp" in feasible and "autoregressive" in feasible:
        extra = set(feasible["specasr-tsp"]) - set(feasible["autoregressive"])
        if extra:
            print(
                f"\nSpecASR unlocks target scales AR decoding cannot serve "
                f"in real time: {', '.join(sorted(extra))}"
            )
    serve_streaming()


if __name__ == "__main__":
    main()
