"""Real-time-factor analysis: can each decoder keep up with live speech?

The paper's motivation is real-time ASR: an LLM decoder that takes longer
than the audio it transcribes is unusable live.  This example measures the
simulated real-time factor (decode latency / audio duration) per method and
per target scale, and reports the largest LLM target each method can serve
under a given RTF budget — the deployment question SpecASR answers.

Run:  python examples/streaming_realtime.py
"""

from repro.harness.figures import ascii_table
from repro.harness.methods import standard_methods
from repro.harness.runner import ExperimentConfig, load_split, shared_vocabulary
from repro.models.registry import PAIRINGS, model_pair

RTF_BUDGET = 0.10  # decode in at most 10 % of the audio duration


def main() -> None:
    vocab = shared_vocabulary()
    dataset = load_split("test-clean", ExperimentConfig(utterances=16))
    duration = dataset.total_duration_s

    rows = []
    feasible: dict[str, list[str]] = {}
    for pairing in PAIRINGS:
        draft, target = model_pair(pairing, vocab)
        for name, decoder in standard_methods(draft, target).items():
            total_ms = sum(decoder.decode(u).total_ms for u in dataset)
            rtf = total_ms / 1000.0 / duration
            rows.append([pairing, name, total_ms / len(dataset), rtf])
            if rtf <= RTF_BUDGET:
                feasible.setdefault(name, []).append(pairing)

    print(
        ascii_table(
            ["target pairing", "method", "ms / utterance", "real-time factor"],
            rows,
            title="Simulated real-time factor per decoding method",
        )
    )
    print(f"\nMethods meeting the RTF budget of {RTF_BUDGET:.2f}:")
    for name, pairings in feasible.items():
        print(f"  {name:16s} -> {', '.join(pairings)}")
    if "specasr-tsp" in feasible and "autoregressive" in feasible:
        extra = set(feasible["specasr-tsp"]) - set(feasible["autoregressive"])
        if extra:
            print(
                f"\nSpecASR unlocks target scales AR decoding cannot serve "
                f"in real time: {', '.join(sorted(extra))}"
            )


if __name__ == "__main__":
    main()
