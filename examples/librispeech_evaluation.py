"""LibriSim evaluation: the paper's main-results workflow (Fig. 11 style).

Runs every decoding method over the four LibriSim splits with the
Vicuna-13B-scale target and prints a speedup table over autoregressive and
speculative baselines, plus per-model WERs — the full evaluation a user
would run to reproduce the paper's headline numbers.

Run:  python examples/librispeech_evaluation.py [--pairing llama-7b]
"""

import argparse

from repro.data.librisim import SPLITS
from repro.harness.figures import ascii_table
from repro.harness.methods import standard_methods
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_methods,
    shared_vocabulary,
)
from repro.metrics.wer import model_wer
from repro.models.registry import PAIRINGS, model_pair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairing", choices=sorted(PAIRINGS), default="vicuna-13b")
    parser.add_argument("--utterances", type=int, default=24)
    args = parser.parse_args()

    vocab = shared_vocabulary()
    config = ExperimentConfig(utterances=args.utterances)
    draft, target = model_pair(args.pairing, vocab)

    # --- recognition quality (iso-accuracy context) ---------------------------
    wer_rows = []
    for split in SPLITS:
        dataset = load_split(split, config)
        wer_rows.append(
            [
                split,
                100.0 * model_wer(draft, dataset),
                100.0 * model_wer(target, dataset),
            ]
        )
    print(ascii_table(
        ["split", "draft WER (%)", "target WER (%)"],
        wer_rows,
        title=f"Model quality — {draft.name} / {target.name}",
    ))
    print()

    # --- speedups per split ------------------------------------------------------
    rows = []
    for split in SPLITS:
        dataset = load_split(split, config)
        runs = run_methods(standard_methods(draft, target), dataset)
        ar_ms = runs["autoregressive"].breakdown.total_ms
        spec_ms = min(
            runs[name].breakdown.total_ms for name in runs if name.startswith("spec(")
        )
        for name, run in runs.items():
            ms = run.breakdown.total_ms
            rows.append(
                [split, name, run.breakdown.ms_per_10s, ar_ms / ms, spec_ms / ms]
            )
    print(
        ascii_table(
            ["split", "method", "ms / 10s audio", "x over AR", "x over best spec"],
            rows,
            title=f"Speedups — {args.pairing} pairing (all methods lossless)",
        )
    )


if __name__ == "__main__":
    main()
