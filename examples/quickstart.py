"""Quickstart: decode one utterance with SpecASR vs autoregressive decoding.

Builds the LibriSim test-clean split, opens the Whisper-like draft/target
pair, and decodes a single utterance with plain autoregressive decoding,
baseline speculative decoding and full SpecASR.  Shows that all three emit
the *identical* transcript (losslessness) while SpecASR is fastest.

Run:  python examples/quickstart.py
"""

from repro import (
    AutoregressiveDecoder,
    SpecASRConfig,
    SpecASREngine,
    SpeculativeConfig,
    SpeculativeDecoder,
    build_default_vocabulary,
    build_split,
    model_pair,
)


def main() -> None:
    vocab = build_default_vocabulary()
    dataset = build_split("test-clean", vocab, seed=2025, utterances=8)
    utterance = dataset[0]
    print(f"utterance : {utterance.utterance_id} ({utterance.duration_s:.1f} s)")
    print(f"reference : {utterance.text}\n")

    draft, target = model_pair("whisper", vocab)
    decoders = [
        AutoregressiveDecoder(target),
        SpeculativeDecoder(draft, target, SpeculativeConfig(draft_len=8)),
        SpecASREngine(draft, target, SpecASRConfig(sparse_tree=True)),
    ]

    baseline_ms = None
    reference_tokens = None
    for decoder in decoders:
        result = decoder.decode(utterance)
        if baseline_ms is None:
            baseline_ms = result.total_ms
            reference_tokens = result.tokens
        speedup = baseline_ms / result.total_ms
        lossless = result.tokens == reference_tokens
        text = " ".join(vocab.decode_ids(result.tokens))
        print(f"[{decoder.name}]")
        print(f"  transcript : {text}")
        print(
            f"  latency    : {result.total_ms:7.1f} ms simulated "
            f"({speedup:.2f}x vs autoregressive, lossless={lossless})"
        )
        if result.trace.num_rounds:
            print(
                f"  rounds     : {result.trace.num_rounds}, "
                f"accepted/round: "
                f"{result.trace.total_accepted / result.trace.num_rounds:.1f}, "
                f"recycled tokens: {result.trace.total_recycled}"
            )
        print()


if __name__ == "__main__":
    main()
