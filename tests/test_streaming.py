"""Tests for streaming SpecASR."""

import pytest

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.core.streaming import StreamingConfig, StreamingSpecASR


@pytest.fixture(scope="module")
def streamer(whisper_pair):
    draft, target = whisper_pair
    return StreamingSpecASR(draft, target, StreamingConfig(chunk_s=1.0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingConfig(chunk_s=0.0)
        with pytest.raises(ValueError):
            StreamingConfig(lookahead_s=-1.0)


class TestStreaming:
    def test_transcript_matches_offline(self, streamer, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        offline = SpecASREngine(draft, target, SpecASRConfig())
        for utterance in list(clean_dataset)[:3]:
            result = streamer.decode_stream(utterance)
            assert result.tokens == offline.decode(utterance).tokens

    def test_emission_times_monotone(self, streamer, utterance):
        result = streamer.decode_stream(utterance)
        times = result.emission_times_s
        assert len(times) == len(result.tokens)
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:], strict=False))

    def test_tokens_never_precede_their_audio(self, streamer, utterance):
        """A token cannot finalize before any audio has arrived."""
        result = streamer.decode_stream(utterance)
        assert result.emission_times_s[0] >= streamer.config.chunk_s - 1e-9

    def test_partials_grow_monotonically(self, streamer, utterance):
        result = streamer.decode_stream(utterance)
        counts = [count for _time, count in result.partials]
        assert counts == sorted(counts)
        assert counts[-1] == len(result.tokens)

    def test_first_token_latency_small(self, streamer, utterance):
        """Streaming should emit the first token long before end-of-audio."""
        result = streamer.decode_stream(utterance)
        assert result.first_token_latency_s < utterance.duration_s / 2

    def test_final_latency_bounded(self, streamer, utterance):
        result = streamer.decode_stream(utterance)
        assert result.final_latency_s < 1.0  # well under a second of tail

    def test_real_time_factor_below_one(self, streamer, clean_dataset):
        for utterance in list(clean_dataset)[:3]:
            result = streamer.decode_stream(utterance)
            assert result.real_time_factor < 1.0

    def test_chunk_count(self, streamer, utterance):
        result = streamer.decode_stream(utterance)
        import math

        assert result.chunks == max(1, math.ceil(utterance.duration_s / 1.0))
