"""Bit-identity parity suite: vectorised oracle scoring == scalar reference.

The block-vectorised emission path (grouped array passes over position
blocks, cross-session batched scoring, cross-oracle prewarm) carries a hard
contract: every number it produces is **bit-identical** to the scalar
per-position reference (``oracle_block_size=1``) — same tokens, same
float probabilities, same SimClock records.  This suite pins that contract
at each seam:

* anchored + perturbed + EOS-region + overflow positions, across
  utterances, capacities, model seeds and block sizes (hypothesis-driven);
* block boundaries (first/last position of a block, the ragged final
  block, positions past ``max_positions``);
* ``step_many`` / ``_compute_steps_batch`` (the batched query path);
* ``prewarm_oracles`` / ``prewarm_models`` / ``_prewarm_candidates`` (the
  grouped cross-oracle passes) — warming must never change a value;
* ``score_batch`` / ``_node_steps`` (cross-session batched verification)
  against solo ``verify_eval`` / ``step_frontier`` calls, latency billing
  included;
* ``batched_generators`` / ``batched_seed_states`` (the vectorised
  SeedSequence expansion) against numpy's own seeding, fallbacks included;
* the bounded ``_base`` LRU: a long sweep keeps the per-oracle block cache
  flat, and values recomputed after eviction are unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import acoustic
from repro.models.acoustic import (
    BASE_BLOCK_SIZE,
    EmissionOracle,
    prewarm_oracles,
)
from repro.models.latency import SimClock
from repro.models.registry import model_pair
from repro.models.simulated import prewarm_models
from repro.utils import rng as rng_module
from repro.utils.rng import (
    batched_generators,
    batched_seed_states,
    fast_generator,
)


def _oracle(utterance, vocab, block_size, capacity=0.8, seed=1, params=None):
    return EmissionOracle(
        "m", seed, capacity, utterance, vocab, params, block_size=block_size
    )


def _probe_keys(utterance):
    """(position, perturb_level, context_key) probes covering every branch:
    anchored, perturbed (context-sensitive), the EOS region and overflow
    positions past ``max_positions``."""
    n = utterance.num_tokens
    positions = sorted({0, 1, n // 2, max(n - 1, 0), n, n + 1, n + 3})
    keys = []
    for pos in positions:
        keys.append((pos, 0, 0))
        keys.append((pos, 1, 7))
        keys.append((pos, 2, 123))
    return keys


def _assert_steps_equal(a, b):
    assert a.position == b.position
    assert a.token == b.token
    assert a.top_prob == b.top_prob  # exact float equality: bit-identity
    assert a.topk == b.topk


class TestScalarVectorParity:
    def test_full_corpus_all_positions(self, clean_dataset, vocab):
        for utterance in clean_dataset:
            scalar = _oracle(utterance, vocab, block_size=1)
            vector = _oracle(utterance, vocab, block_size=BASE_BLOCK_SIZE)
            assert scalar.greedy_stream() == vector.greedy_stream()
            for key in _probe_keys(utterance):
                _assert_steps_equal(scalar.step(*key), vector.step(*key))

    def test_block_boundary_positions(self, utterance, vocab):
        """First/last position of each block and the ragged final block."""
        block_size = 4
        scalar = _oracle(utterance, vocab, block_size=1)
        vector = _oracle(utterance, vocab, block_size=block_size)
        ceiling = vector.max_positions
        probes = set()
        for start in range(0, ceiling, block_size):
            probes.update({start, start + block_size - 1, ceiling - 1})
        for pos in sorted(p for p in probes if p >= 0):
            _assert_steps_equal(scalar.step(pos), vector.step(pos))

    def test_eos_branch_beyond_num_tokens(self, utterance, vocab):
        """``position >= num_tokens``: EOS region inside ``max_positions``
        and overflow positions past it (scalar fallback on both paths)."""
        scalar = _oracle(utterance, vocab, block_size=1)
        vector = _oracle(utterance, vocab, block_size=BASE_BLOCK_SIZE)
        n = utterance.num_tokens
        for pos in (n, n + 1, n + 2, n + 5):
            _assert_steps_equal(scalar.step(pos), vector.step(pos))
            _assert_steps_equal(scalar.step(pos, 1, 9), vector.step(pos, 1, 9))

    @settings(max_examples=20, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=5),
        capacity=st.floats(min_value=0.3, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32),
        block_size=st.sampled_from([2, 3, 5, 8, BASE_BLOCK_SIZE]),
        level=st.integers(min_value=0, max_value=3),
        context=st.integers(min_value=0, max_value=2**20),
    )
    def test_parity_hypothesis(
        self, clean_dataset, vocab, index, capacity, seed, block_size, level, context
    ):
        utterance = clean_dataset[index % len(clean_dataset)]
        scalar = _oracle(utterance, vocab, 1, capacity=capacity, seed=seed)
        vector = _oracle(utterance, vocab, block_size, capacity=capacity, seed=seed)
        for pos in (0, utterance.num_tokens // 2, utterance.num_tokens):
            _assert_steps_equal(
                scalar.step(pos, level, context), vector.step(pos, level, context)
            )

    def test_step_many_matches_scalar_loop(self, utterance, vocab):
        scalar = _oracle(utterance, vocab, block_size=1)
        vector = _oracle(utterance, vocab, block_size=BASE_BLOCK_SIZE)
        queries = _probe_keys(utterance)
        # Duplicates exercise the memo path inside one batch.
        queries = queries + queries[:3]
        batched = vector.step_many(queries)
        solo = [scalar.step(*query) for query in queries]
        for a, b in zip(solo, batched, strict=True):
            _assert_steps_equal(a, b)

    def test_prewarm_oracles_changes_no_value(self, clean_dataset, vocab):
        """The grouped cross-oracle pass (``_compute_base_blocks`` +
        ``_prewarm_candidates``) only warms caches."""
        for utterance in clean_dataset[:3]:
            scalar = _oracle(utterance, vocab, block_size=1)
            warmed = _oracle(utterance, vocab, block_size=BASE_BLOCK_SIZE)
            prewarm_oracles([warmed])
            prewarm_oracles([warmed])  # idempotent
            for key in _probe_keys(utterance):
                _assert_steps_equal(scalar.step(*key), warmed.step(*key))

    def test_prewarm_oracles_skips_scalar_path(self, utterance, vocab):
        scalar = _oracle(utterance, vocab, block_size=1)
        prewarm_oracles([scalar])
        assert len(scalar._base) == 0  # the reference path stays lazy

    def test_prewarm_models_cross_product(self, clean_dataset, vocab):
        units = list(clean_dataset[:2])
        draft, target = model_pair("whisper", vocab)
        draft_ref, target_ref = model_pair("whisper", vocab, oracle_block_size=1)
        prewarm_models([draft, target], units)
        for unit in units:
            for warm, ref in ((draft, draft_ref), (target, target_ref)):
                assert (
                    warm.oracle(unit).greedy_stream()
                    == ref.oracle(unit).greedy_stream()
                )


class TestSessionBatchParity:
    """``score_batch`` / ``_node_steps`` vs solo per-session calls."""

    def _frontiers(self, model, units):
        """Per-unit (session, prefixes) pairs over fresh clocks: the empty
        prefix, on-path prefixes, and one off-path (perturbed) branch."""
        entries = []
        off_path = model.vocab.regular_ids()[0]
        for unit in units:
            session = model.session(unit, SimClock())
            session.prefill()
            tokens = list(unit.tokens[:2])
            prefixes = [(), (tokens[0],), tuple(tokens), (*tokens, off_path)]
            entries.append((session, prefixes))
        return entries

    @pytest.mark.parametrize("kind", ["verify", "draft"])
    def test_score_batch_matches_solo_calls(self, clean_dataset, vocab, kind):
        units = list(clean_dataset[:3])
        vector_model = model_pair("whisper", vocab)[1]
        scalar_model = model_pair("whisper", vocab, oracle_block_size=1)[1]
        batch_entries = self._frontiers(vector_model, units)
        solo_entries = self._frontiers(scalar_model, units)
        batched = vector_model.score_batch(batch_entries, kind=kind)
        for (b_session, _), (s_session, prefixes), results in zip(
            batch_entries, solo_entries, batched, strict=True
        ):
            if kind == "verify":
                solo = s_session.verify_eval(prefixes)
            else:
                solo = s_session.step_frontier(prefixes, kind=kind)
            assert results == solo
            # Latency billing parity: same events, same totals.
            assert [
                (e.model, e.kind, e.ms) for e in b_session.clock.events
            ] == [(e.model, e.kind, e.ms) for e in s_session.clock.events]

    def test_score_batch_rejects_empty_frontier(self, clean_dataset, vocab):
        model = model_pair("whisper", vocab)[1]
        session = model.session(clean_dataset[0], SimClock())
        session.prefill()
        with pytest.raises(ValueError):
            model.score_batch([(session, [])])


class TestBatchedGenerators:
    """The vectorised SeedSequence expansion behind the grouped passes."""

    EDGE_SEEDS = [0, 1, 2025, 2**31, 2**32 - 1, 2**32, 2**63 + 11, 2**64 - 1]

    def test_import_probe_passed(self):
        # The probe compares against numpy's own expansion at import time;
        # on any numpy this repo supports it must pass (otherwise the whole
        # batched path silently degrades to per-seed construction).
        assert rng_module._BATCH_OK is True

    def test_states_match_seedsequence(self):
        seeds = self.EDGE_SEEDS + [
            int(x) for x in fast_generator(99).integers(0, 2**63, size=32)
        ]
        states = batched_seed_states(seeds)
        for row, seed in enumerate(seeds):
            expected = np.random.SeedSequence(seed).generate_state(4, np.uint64)
            assert np.array_equal(states[row], expected)

    def test_generators_match_default_rng(self):
        for seed, rng in zip(
            self.EDGE_SEEDS, batched_generators(self.EDGE_SEEDS), strict=True
        ):
            stock = np.random.default_rng(seed)
            assert rng.standard_normal(4).tolist() == stock.standard_normal(
                4
            ).tolist()
            assert rng.uniform() == stock.uniform()
            assert rng.integers(0, 1000) == stock.integers(0, 1000)

    def test_fallback_for_out_of_range_seeds(self):
        seeds = [3, 2**64 + 17]  # beyond 64-bit: per-seed fallback path
        for seed, rng in zip(seeds, batched_generators(seeds), strict=True):
            assert (
                rng.standard_normal(4).tolist()
                == np.random.default_rng(seed).standard_normal(4).tolist()
            )

    def test_empty(self):
        assert batched_generators([]) == []


class TestBaseCacheBounded:
    """Satellite: the per-oracle ``_base`` cache is LRU-bounded, so a long
    sweep keeps memory flat — and eviction never changes a value."""

    def test_long_sweep_memory_flat_vectorised(
        self, clean_dataset, vocab, monkeypatch
    ):
        utterance = max(clean_dataset, key=lambda u: u.num_tokens)
        monkeypatch.setattr(acoustic, "BASE_CACHE_BLOCKS", 3)
        vector = _oracle(utterance, vocab, block_size=2)
        assert vector._base.maxsize == 3
        scalar = _oracle(utterance, vocab, block_size=1)
        positions = list(range(vector.max_positions)) + [vector.max_positions + 1]
        for _sweep in range(2):
            for pos in positions:
                vector._cache.clear()  # force re-reads through _base
                _assert_steps_equal(scalar.step(pos), vector.step(pos))
                assert len(vector._base) <= 3
        assert vector._base.evictions > 0  # the sweep actually overflowed

    def test_long_sweep_memory_flat_scalar(self, clean_dataset, vocab, monkeypatch):
        utterance = max(clean_dataset, key=lambda u: u.num_tokens)
        monkeypatch.setattr(acoustic, "BASE_CACHE_POSITIONS", 5)
        scalar = _oracle(utterance, vocab, block_size=1)
        assert scalar._base.maxsize == 5
        reference = _oracle(utterance, vocab, block_size=1)
        for pos in range(scalar.max_positions):
            scalar._cache.clear()
            scalar.step(pos)
            assert len(scalar._base) <= 5
        assert scalar._base.evictions > 0
        # Re-reading an evicted position recomputes the identical value.
        _assert_steps_equal(scalar.step(0), reference.step(0))
