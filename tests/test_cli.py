"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "tab02" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "whisper-tiny-sim" in out
        assert "vicuna-13b-sim" in out
        assert "pairings" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig13b", "--utterances", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig13b" in out
        assert "paper" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_decode(self, capsys):
        assert main(["decode", "--pairing", "whisper", "--index", "0"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out
        assert "specasr-tsp" in out
        assert "autoregressive" in out

    def test_decode_bad_index(self, capsys):
        assert main(["decode", "--index", "9999"]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeSimValidation:
    """Bad serve-sim arguments fail with a clean SystemExit, not a traceback."""

    def _error_text(self, capsys) -> str:
        captured = capsys.readouterr()
        return captured.err + captured.out

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["serve-sim", "--qps", "0"], "positive number"),
            (["serve-sim", "--qps", "-2"], "positive number"),
            (["serve-sim", "--devices", "0"], "positive integer"),
            (["serve-sim", "--max-batch", "-1"], "positive integer"),
            (["serve-sim", "--requests", "0"], "positive integer"),
            (["serve-sim", "--overlap", "1.5"], "in [0, 1]"),
            (["serve-sim", "--overlap", "-0.1"], "in [0, 1]"),
        ],
    )
    def test_rejects_out_of_range_values(self, capsys, argv, fragment):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert fragment in self._error_text(capsys)

    def test_rejects_unknown_router(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--router", "sharded"])

    def test_rejects_disagg_on_single_device(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--router", "disagg", "--devices", "1"])
        assert "at least 2 devices" in str(excinfo.value)

    def test_rejects_inflight_below_batch(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--max-batch", "8", "--inflight", "2"])
        assert "max_inflight" in str(excinfo.value)

    def test_rejects_malformed_device_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--device-spec", "2xfast"])
        assert "COUNTxSPEED" in str(excinfo.value)

    def test_rejects_device_spec_count_mismatch(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--devices", "3", "--device-spec", "2x1.0"])
        assert "does not match" in str(excinfo.value)

    def test_rejects_explicit_single_device_with_multi_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--devices", "1", "--device-spec", "2x1.0,2x0.5"])
        assert "does not match" in str(excinfo.value)

    def test_rejects_unknown_split(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--split", "optimal"])

    def test_serve_sim_cluster_runs(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--method",
                    "spec(8,1)",
                    "--qps",
                    "3",
                    "--requests",
                    "6",
                    "--utterances",
                    "6",
                    "--devices",
                    "2",
                    "--router",
                    "disagg",
                    "--no-max-qps",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 device(s)" in out

    def test_rejects_malformed_fault_spec(self, capsys):
        with pytest.raises(SystemExit, match="serve-sim: error"):
            main(["serve-sim", "--faults", "explode@100:dev0"])

    def test_rejects_fault_plan_naming_missing_device(self, capsys):
        with pytest.raises(SystemExit, match="dev0..dev1"):
            main(
                [
                    "serve-sim",
                    "--devices",
                    "2",
                    "--faults",
                    "crash@100:dev7",
                ]
            )

    def test_rejects_out_of_range_batch_fraction(self, capsys):
        with pytest.raises(SystemExit, match=r"batch_fraction must be in \[0, 1\]"):
            main(["serve-sim", "--batch-fraction", "1.5"])

    def test_rejects_bad_straggler_factor(self, capsys):
        with pytest.raises(SystemExit, match="straggler_factor"):
            main(["serve-sim", "--straggler-k", "0.5"])

    def test_serve_sim_chaos_runs(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--method",
                    "spec(8,1)",
                    "--qps",
                    "6",
                    "--requests",
                    "8",
                    "--utterances",
                    "6",
                    "--devices",
                    "4",
                    "--router",
                    "disagg",
                    "--faults",
                    "crash@500:dev3:restart=800;perr:0.05",
                    "--batch-fraction",
                    "0.5",
                    "--batch-deadline-ms",
                    "9000",
                    "--no-max-qps",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "degraded" in out
        assert "class" in out

    def test_serve_sim_heterogeneous_balanced_runs(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--method",
                    "spec(8,1)",
                    "--qps",
                    "3",
                    "--requests",
                    "6",
                    "--utterances",
                    "6",
                    "--device-spec",
                    "2x1.0,2x0.5",
                    "--router",
                    "merged",
                    "--split",
                    "balanced",
                    "--no-max-qps",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 device(s)" in out
        assert "speed 0.5" in out
        assert "measured draft share" in out
