"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "tab02" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "whisper-tiny-sim" in out
        assert "vicuna-13b-sim" in out
        assert "pairings" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig13b", "--utterances", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig13b" in out
        assert "paper" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_decode(self, capsys):
        assert main(["decode", "--pairing", "whisper", "--index", "0"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out
        assert "specasr-tsp" in out
        assert "autoregressive" in out

    def test_decode_bad_index(self, capsys):
        assert main(["decode", "--index", "9999"]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
