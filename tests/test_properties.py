"""Property-based tests of the core invariants (hypothesis).

The central invariant of speculative decoding is losslessness: for ANY
draft/target behaviour and ANY SpecASR configuration, the decoded transcript
equals the target's greedy decode.  These tests drive scripted models with
arbitrary streams and overrides, plus the statistical simulated models with
random configurations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder
from repro.decoding.tree_spec import FixedTreeConfig, FixedTreeDecoder

from tests.fakes import EOS, FakeUnit, ScriptedModel

# Token streams avoid the EOS id (2) internally; EOS is appended explicitly.
token = st.integers(min_value=4, max_value=20)
stream = st.lists(token, min_size=1, max_size=30).map(lambda s: s + [EOS])

spec_config = st.builds(
    SpeculativeConfig,
    draft_len=st.integers(1, 16),
    beams=st.sampled_from([1, 2]),
)

specasr_config = st.builds(
    SpecASRConfig,
    max_draft_len=st.integers(2, 24),
    threshold=st.floats(0.0, 0.8),
    recycling=st.booleans(),
    sparse_tree=st.booleans(),
    max_branches=st.integers(0, 3),
    branch_extension_cap=st.integers(1, 4),
    adjacent_merge=st.booleans(),
    merge_verify_window=st.integers(0, 24),
)

probs = st.dictionaries(st.integers(0, 29), st.floats(0.05, 0.99), max_size=8)


def ar_reference(target_stream):
    target = ScriptedModel(stream=list(target_stream), name="target")
    return AutoregressiveDecoder(target).decode(FakeUnit()).tokens


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(target_stream=stream, draft_stream=stream, config=spec_config)
def test_vanilla_speculative_lossless(target_stream, draft_stream, config):
    draft = ScriptedModel(stream=list(draft_stream), name="draft")
    target = ScriptedModel(stream=list(target_stream), name="target")
    result = SpeculativeDecoder(draft, target, config).decode(FakeUnit())
    assert result.tokens == ar_reference(target_stream)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    target_stream=stream,
    draft_stream=stream,
    config=specasr_config,
    draft_probs=probs,
)
def test_specasr_lossless(target_stream, draft_stream, config, draft_probs):
    draft = ScriptedModel(stream=list(draft_stream), probs=draft_probs, name="draft")
    target = ScriptedModel(stream=list(target_stream), name="target")
    result = SpecASREngine(draft, target, config).decode(FakeUnit())
    assert result.tokens == ar_reference(target_stream)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    target_stream=stream,
    draft_stream=stream,
    branching=st.lists(st.integers(1, 3), min_size=1, max_size=6),
)
def test_fixed_tree_lossless(target_stream, draft_stream, branching):
    draft = ScriptedModel(stream=list(draft_stream), name="draft")
    target = ScriptedModel(stream=list(target_stream), name="target")
    decoder = FixedTreeDecoder(draft, target, FixedTreeConfig(tuple(branching)))
    assert decoder.decode(FakeUnit()).tokens == ar_reference(target_stream)


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(target_stream=stream, draft_stream=stream, config=specasr_config)
def test_trace_counters_consistent(target_stream, draft_stream, config):
    """Per-round counters respect their defining inequalities."""
    draft = ScriptedModel(stream=list(draft_stream), name="draft")
    target = ScriptedModel(stream=list(target_stream), name="target")
    result = SpecASREngine(draft, target, config).decode(FakeUnit())
    for stats in result.trace.rounds:
        assert 0 <= stats.accepted_tokens <= stats.submitted_tokens
        assert stats.submitted_tokens <= stats.tree_nodes
        assert stats.emitted_tokens == stats.accepted_tokens + 1
        assert 0.0 <= stats.acceptance_ratio <= 1.0
    assert result.total_ms >= 0.0


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(target_stream=stream, draft_stream=stream, config=specasr_config)
def test_latency_totals_equal_event_sums(target_stream, draft_stream, config):
    draft = ScriptedModel(stream=list(draft_stream), name="draft")
    target = ScriptedModel(stream=list(target_stream), name="target")
    result = SpecASREngine(draft, target, config).decode(FakeUnit())
    assert abs(result.total_ms - sum(e.ms for e in result.clock.events)) < 1e-9
