"""Shared fixtures: vocabulary, small corpora, model pairs.

Session-scoped where construction is expensive; all deterministic.
"""

from __future__ import annotations

import pytest

from repro.data.librisim import LibriSimBuilder, LibriSimConfig
from repro.models.registry import model_pair
from repro.models.vocab import build_default_vocabulary


@pytest.fixture(scope="session")
def vocab():
    return build_default_vocabulary()


@pytest.fixture(scope="session")
def small_config():
    return LibriSimConfig(seed=7, utterances_per_split=6, min_words=8, max_words=24)


@pytest.fixture(scope="session")
def clean_dataset(vocab, small_config):
    return LibriSimBuilder(vocab, small_config).build("test-clean")


@pytest.fixture(scope="session")
def other_dataset(vocab, small_config):
    return LibriSimBuilder(vocab, small_config).build("test-other")


@pytest.fixture(scope="session")
def whisper_pair(vocab):
    return model_pair("whisper", vocab)


@pytest.fixture(scope="session")
def vicuna_pair(vocab):
    return model_pair("vicuna-13b", vocab)


@pytest.fixture()
def utterance(clean_dataset):
    return clean_dataset[0]
