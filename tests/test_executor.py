"""Parity suite for the parallel corpus executor.

The contract: for every backend and worker count, transcripts, traces and
SimClock totals are byte-identical to the serial runner — parallelism may
only change wall-clock time, never results.
"""

from __future__ import annotations

import pytest

from repro.harness.executor import CorpusExecutor, default_worker_count
from repro.harness.methods import standard_methods
from repro.harness.runner import run_method, run_methods
from repro.models.registry import model_pair


@pytest.fixture(scope="module")
def serial_runs(vocab, clean_dataset):
    draft, target = model_pair("whisper", vocab)
    return run_methods(standard_methods(draft, target), clean_dataset)


def _assert_identical(runs, reference):
    assert set(runs) == set(reference)
    for name in reference:
        got, want = runs[name].results, reference[name].results
        assert [r.tokens for r in got] == [r.tokens for r in want]
        assert [r.total_ms for r in got] == [r.total_ms for r in want]
        assert [r.trace.rounds for r in got] == [r.trace.rounds for r in want]
        assert [r.clock.events for r in got] == [r.clock.events for r in want]
        assert runs[name].breakdown.total_ms == reference[name].breakdown.total_ms


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_pool_matches_serial(
        self, vocab, clean_dataset, serial_runs, backend, workers
    ):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=workers, backend=backend)
        runs = run_methods(
            standard_methods(draft, target), clean_dataset, executor=executor
        )
        assert executor.last_stats.backend == backend
        _assert_identical(runs, serial_runs)

    def test_auto_backend_matches_serial(self, vocab, clean_dataset, serial_runs):
        draft, target = model_pair("whisper", vocab)
        runs = run_methods(standard_methods(draft, target), clean_dataset, workers=4)
        _assert_identical(runs, serial_runs)

    def test_factory_process_pool(self, vocab, clean_dataset, serial_runs):
        def factory():
            draft, target = model_pair("whisper")
            return standard_methods(draft, target)

        executor = CorpusExecutor(workers=2, backend="process")
        grids = executor.map_decode(factory, clean_dataset)
        for name, reference in serial_runs.items():
            assert [r.tokens for r in grids[name]] == [
                r.tokens for r in reference.results
            ]
            assert [r.total_ms for r in grids[name]] == [
                r.total_ms for r in reference.results
            ]


class TestRunnerIntegration:
    def test_run_method_workers(self, whisper_pair, clean_dataset):
        _, target = whisper_pair
        from repro.decoding.autoregressive import AutoregressiveDecoder

        serial = run_method(AutoregressiveDecoder(target), clean_dataset)
        parallel = run_method(AutoregressiveDecoder(target), clean_dataset, workers=2)
        assert [r.tokens for r in parallel.results] == [
            r.tokens for r in serial.results
        ]
        assert [r.total_ms for r in parallel.results] == [
            r.total_ms for r in serial.results
        ]

    def test_lossless_check_still_applies(self, vocab, clean_dataset):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=2, backend="thread")
        runs = run_methods(
            standard_methods(draft, target), clean_dataset, executor=executor
        )
        reference = [r.tokens for r in runs["autoregressive"].results]
        for run in runs.values():
            assert [r.tokens for r in run.results] == reference


class TestExecutorValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            CorpusExecutor(backend="gpu")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            CorpusExecutor(workers=0)

    def test_single_worker_is_serial(self, vocab, clean_dataset):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=1, backend="process")
        executor.map_decode(
            {"autoregressive": standard_methods(draft, target)["autoregressive"]},
            clean_dataset,
        )
        assert executor.last_stats.backend == "serial"

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestIterResults:
    def test_serial_streaming_matches_map(self, vocab, clean_dataset, serial_runs):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=1)
        triples = list(
            executor.iter_results(standard_methods(draft, target), clean_dataset)
        )
        # deterministic grid order: methods outer, corpus index inner
        expected_order = [
            (name, index)
            for name in serial_runs
            for index in range(len(clean_dataset))
        ]
        assert [(name, index) for name, index, _ in triples] == expected_order
        for name, index, result in triples:
            want = serial_runs[name].results[index]
            assert result.tokens == want.tokens
            assert result.total_ms == want.total_ms

    def test_serial_is_lazy(self, vocab, clean_dataset):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=1)
        stream = executor.iter_results(
            standard_methods(draft, target), clean_dataset
        )
        first = next(stream)  # only the first decode has run
        assert first[:2] == ("autoregressive", 0)
        stream.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_streaming_matches_serial(
        self, vocab, clean_dataset, serial_runs, backend
    ):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=2, backend=backend)
        triples = list(
            executor.iter_results(
                standard_methods(draft, target), clean_dataset, window=3
            )
        )
        for name, index, result in triples:
            want = serial_runs[name].results[index]
            assert result.tokens == want.tokens
            assert result.total_ms == want.total_ms
        assert executor.last_stats.backend == backend

    def test_window_validated(self, vocab, clean_dataset):
        draft, target = model_pair("whisper", vocab)
        executor = CorpusExecutor(workers=2, backend="thread")
        with pytest.raises(ValueError):
            list(
                executor.iter_results(
                    standard_methods(draft, target), clean_dataset, window=0
                )
            )


def _square_job(value):
    return value * value


class TestMapJobs:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_in_job_order(self, backend):
        workers = 1 if backend == "serial" else 3
        executor = CorpusExecutor(workers=workers, backend=backend)
        jobs = list(range(17))
        assert executor.map_jobs(_square_job, jobs) == [v * v for v in jobs]

    def test_auto_never_picks_process_for_unpicklable(self):
        executor = CorpusExecutor(workers=2, backend="auto")
        jobs = [1, 2, 3]
        results = executor.map_jobs(lambda v: v + 1, jobs)  # lambda: no pickle
        assert results == [2, 3, 4]
        # thread on multi-core hosts, serial on single-core — never process
        assert executor.last_stats.backend in ("thread", "serial")
