"""Tests for adaptive single-sequence prediction (ASP)."""

import pytest

from repro.core.adaptive import draft_adaptive
from repro.core.config import SpecASRConfig
from repro.models.latency import SimClock

from tests.fakes import EOS, FakeUnit, ScriptedModel


def session_for(stream, probs=None):
    model = ScriptedModel(stream=stream, probs=probs or {}, name="draft")
    session = model.session(FakeUnit(), SimClock())
    session.prefill()
    return session


class TestDraftAdaptive:
    def test_reaches_length_cap_when_confident(self):
        session = session_for([5] * 40)
        config = SpecASRConfig(max_draft_len=24, threshold=0.4)
        draft = draft_adaptive(session, [], config, EOS)
        assert len(draft.tokens) == 24
        assert not draft.truncated
        assert draft.draft_steps == 24

    def test_stops_at_eos(self):
        session = session_for([5, 6, EOS, 7])
        config = SpecASRConfig()
        draft = draft_adaptive(session, [], config, EOS)
        assert draft.tokens == [5, 6, EOS]
        assert draft.hit_eos

    def test_truncates_after_uncertain_token(self):
        # Position 2 has low confidence: drafting stops right after it.
        session = session_for([5, 6, 7, 8, 9], probs={2: 0.2})
        config = SpecASRConfig(threshold=0.4)
        draft = draft_adaptive(session, [], config, EOS)
        assert draft.tokens == [5, 6, 7]  # uncertain token still submitted
        assert draft.truncated
        assert len(draft.uncertain) == 1
        assert draft.uncertain[0].offset == 2

    def test_no_truncation_records_all_uncertain_points(self):
        session = session_for([5, 6, 7, 8, 9, 10], probs={1: 0.3, 4: 0.1})
        config = SpecASRConfig(threshold=0.4, max_draft_len=6)
        draft = draft_adaptive(session, [], config, EOS, truncate=False)
        assert len(draft.tokens) == 6
        assert [p.offset for p in draft.uncertain] == [1, 4]
        assert not draft.truncated

    def test_uncertain_point_alternatives(self):
        session = session_for([5, 6, 7], probs={0: 0.2})
        config = SpecASRConfig(threshold=0.4)
        draft = draft_adaptive(session, [], config, EOS)
        point = draft.uncertain[0]
        assert point.alternative_token(1) == 5
        assert point.alternative_token(2) == 105  # scripted runner-up
        assert point.alternative_token(99) is None

    def test_threshold_zero_never_truncates(self):
        session = session_for([5] * 30, probs={i: 0.05 for i in range(30)})
        config = SpecASRConfig(threshold=0.0, max_draft_len=10)
        draft = draft_adaptive(session, [], config, EOS)
        assert len(draft.tokens) == 10
        assert not draft.truncated

    def test_prefix_offsets(self):
        session = session_for([5, 6, 7, 8])
        config = SpecASRConfig(max_draft_len=2)
        draft = draft_adaptive(session, [5, 6], config, EOS)
        assert draft.tokens == [7, 8]

    def test_max_len_override(self):
        session = session_for([5] * 30)
        config = SpecASRConfig(max_draft_len=24)
        draft = draft_adaptive(session, [], config, EOS, max_len=4)
        assert len(draft.tokens) == 4


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            SpecASRConfig(max_draft_len=0)
        with pytest.raises(ValueError):
            SpecASRConfig(threshold=1.0)
        with pytest.raises(ValueError):
            SpecASRConfig(branch_top_k=1)
        with pytest.raises(ValueError):
            SpecASRConfig(branch_extension_cap=0)
        with pytest.raises(ValueError):
            SpecASRConfig(merge_verify_window=-1)

    def test_mode_labels(self):
        assert SpecASRConfig(recycling=False).mode == "specasr-asp"
        assert SpecASRConfig(recycling=True).mode == "specasr-asp+recycle"
        assert SpecASRConfig(sparse_tree=True).mode == "specasr-tsp"
