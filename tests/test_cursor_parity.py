"""Property tests: trie-cursor sessions match the legacy tuple-prefix path.

The reference implementation below is a line-for-line port of the seed's
tuple-keyed divergence-state algorithm (``_states`` dict, forward walk from
the longest cached ancestor).  Cursor-based sessions must agree with it on
perturbation state and on every next-token distribution, over random token
trees that mix on-greedy and off-greedy branches.
"""

from __future__ import annotations

import random

import pytest

from repro.models.latency import SimClock
from repro.utils.hashing import stable_hash


class LegacyStateTracker:
    """The seed's tuple-keyed perturbation-state algorithm."""

    def __init__(self, oracle, window: int) -> None:
        self._oracle = oracle
        self._window = window
        self._states: dict[tuple, int] = {(): 0}

    def _context_key(self, prefix: tuple) -> int:
        return stable_hash("ctx", prefix[-3:])

    def perturb_state(self, prefix: tuple) -> int:
        state = self._states.get(prefix)
        if state is not None:
            return state
        depth = len(prefix) - 1
        while depth >= 0 and prefix[:depth] not in self._states:
            depth -= 1
        state = self._states[prefix[:depth]] if depth >= 0 else 0
        for pos in range(max(depth, 0), len(prefix)):
            sub = prefix[:pos]
            expected = self._oracle.step(
                pos, state, self._context_key(sub) if state else 0
            ).token
            state = max(state - 1, 0) if prefix[pos] == expected else self._window
            self._states[prefix[: pos + 1]] = state
        return state

    def step(self, prefix: tuple):
        state = self.perturb_state(prefix)
        context = self._context_key(prefix) if state else 0
        return self._oracle.step(len(prefix), state, context)


def _random_prefixes(session, rng, count=120, max_len=18):
    """Random prefixes biased towards the model's own greedy continuations."""
    prefixes = [()]
    for _ in range(count):
        prefix = ()
        for _ in range(rng.randrange(max_len)):
            greedy = session.peek(prefix).token
            if rng.random() < 0.7:
                token = greedy
            else:
                topk = session.peek(prefix).topk
                token = rng.choice([tok for tok, _ in topk])
            prefix = prefix + (token,)
            prefixes.append(prefix)
    return prefixes


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cursor_states_match_legacy_walk(whisper_pair, clean_dataset, seed):
    _, target = whisper_pair
    utterance = clean_dataset[seed % len(clean_dataset)]
    session = target.session(utterance, SimClock())
    legacy = LegacyStateTracker(
        target.oracle(utterance), target.oracle_params.perturb_window
    )
    rng = random.Random(seed)
    for prefix in _random_prefixes(session, rng):
        assert session.perturb_state(prefix) == legacy.perturb_state(prefix), prefix
        got = session.peek(prefix)
        want = legacy.step(prefix)
        assert (got.token, got.top_prob, got.topk) == (
            want.token,
            want.top_prob,
            want.topk,
        ), prefix


def test_cursor_advance_matches_tuple_calls(whisper_pair, clean_dataset):
    """Advancing cursors token-by-token equals passing full tuples."""
    draft, _ = whisper_pair
    utterance = clean_dataset[0]
    tuple_session = draft.session(utterance, SimClock())
    cursor_session = draft.session(utterance, SimClock())
    rng = random.Random(7)
    for _ in range(40):
        cursor = cursor_session.cursor()
        prefix = ()
        for _ in range(rng.randrange(14)):
            token = rng.choice([tok for tok, _ in tuple_session.peek(prefix).topk[:3]])
            cursor = cursor.advance(token)
            prefix = prefix + (token,)
            assert len(cursor) == len(prefix)
            assert cursor.tokens == prefix
            got = cursor_session.peek(cursor)
            want = tuple_session.peek(prefix)
            assert got == want


def test_rollback_prunes_dead_branches(vocab, clean_dataset):
    # A fresh model: the trie is shared per (model, utterance), so reusing
    # the session-scoped fixture would start from other tests' branches.
    from repro.models.registry import model_pair

    _, target = model_pair("whisper", vocab)
    utterance = clean_dataset[1]
    clock = SimClock()
    session = target.session(utterance, clock)
    session.prefill()
    cursor = session.cursor()
    # Explore several wrong branches at each committed position, then commit
    # the greedy token and roll back with pruning.
    for _ in range(8):
        step = session.peek(cursor)
        for wrong, _prob in step.topk[1:4]:
            probe = cursor.advance(wrong)
            session.peek(probe)  # materialise a dead branch
        cursor = cursor.advance(step.token)
        cursor.rollback()
    # After pruning, the trie holds the committed chain (plus at most the
    # live frontier below it), not the ~3 dead probes per position.
    assert session.trie_size() <= 2 * len(cursor) + 4


def test_rollback_without_cursor_keeps_legacy_behavior(whisper_pair, clean_dataset):
    _, target = whisper_pair
    utterance = clean_dataset[2]
    session = target.session(utterance, SimClock())
    session.prefill()
    result = session.step(())
    session.step((result.token,))
    kv_before = session.kv.length
    session.rollback(1)  # plain length-based rollback still works
    assert session.kv.length == kv_before - 1


def test_foreign_cursor_falls_back_to_tokens(whisper_pair, clean_dataset):
    draft, target = whisper_pair
    utterance = clean_dataset[0]
    draft_session = draft.session(utterance, SimClock())
    target_session = target.session(utterance, SimClock())
    prefix = tuple(target.greedy_transcript(utterance)[:5])
    foreign = draft_session.cursor(prefix)
    assert target_session.peek(foreign) == target_session.peek(prefix)


class TestTextSessionCursor:
    """The TextSession trie cursor must be bit-identical to tuple prefixes."""

    @pytest.fixture(scope="class")
    def text_model(self, vocab):
        from repro.data.text_tasks import TextTaskConfig, build_text_corpus
        from repro.models.latency import LatencyProfile
        from repro.models.textlm import SimulatedTextLM

        profile = LatencyProfile("t", 5.0, 0.2, 1.0, 0.05)
        model = SimulatedTextLM("text-draft", 0.80, profile, vocab, pair_seed=5)
        prompts = build_text_corpus(
            TextTaskConfig(seed=3, num_prompts=2, max_new_tokens=20)
        )
        return model, prompts[0]

    def test_native_cursor_used_by_as_cursor(self, text_model):
        from repro.decoding.base import as_cursor
        from repro.models.latency import SimClock
        from repro.models.textlm import TextCursor

        model, prompt = text_model
        session = model.session(prompt, SimClock())
        cursor = as_cursor(session)
        assert isinstance(cursor, TextCursor)

    def test_cursor_matches_tuple_prefixes(self, text_model):
        from repro.models.latency import SimClock

        model, prompt = text_model
        session = model.session(prompt, SimClock())
        rng = random.Random(13)
        for _ in range(30):
            cursor = session.cursor()
            prefix = ()
            for _ in range(rng.randrange(12)):
                token = rng.choice(
                    [tok for tok, _ in session.peek(prefix).topk[:4]]
                )
                cursor = cursor.advance(token)
                prefix = prefix + (token,)
                assert cursor.tokens == prefix
                assert len(cursor) == len(prefix)
                assert session.peek(cursor) == session.peek(prefix)

    def test_two_sessions_agree(self, text_model):
        """A trie session and a fresh session walked by tuples agree."""
        from repro.models.latency import SimClock

        model, prompt = text_model
        cursor_session = model.session(prompt, SimClock())
        tuple_session = model.session(prompt, SimClock())
        greedy = ()
        cursor = cursor_session.cursor()
        for _ in range(15):
            got = cursor_session.peek(cursor)
            want = tuple_session.peek(greedy)
            assert got == want
            if tuple_session.is_eos(want.token):
                break
            cursor = cursor.advance(want.token)
            greedy = greedy + (want.token,)

    def test_foreign_cursor_resolves_by_tokens(self, text_model, whisper_pair,
                                               clean_dataset):
        from repro.models.latency import SimClock

        model, prompt = text_model
        _, target = whisper_pair
        asr_session = target.session(clean_dataset[0], SimClock())
        text_session = model.session(prompt, SimClock())
        foreign = asr_session.cursor((1, 2, 3))
        assert text_session.peek(foreign) == text_session.peek((1, 2, 3))
