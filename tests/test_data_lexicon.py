"""Tests for repro.data.lexicon."""

from repro.data.lexicon import SentenceSampler, default_lexicon
from repro.utils.rng import RngStream


class TestLexicon:
    def test_buckets_nonempty(self):
        lex = default_lexicon()
        for bucket in (
            lex.determiners,
            lex.pronouns,
            lex.conjunctions,
            lex.prepositions,
            lex.adverbs,
            lex.adjectives,
            lex.nouns,
            lex.verbs,
            lex.interjections,
        ):
            assert len(bucket) > 0

    def test_all_words_unique_and_sorted(self):
        words = default_lexicon().all_words()
        assert words == sorted(set(words))

    def test_vocabulary_scale(self):
        # The simulation's confusion pools need a reasonably large lexicon.
        assert len(default_lexicon().all_words()) > 700

    def test_zipf_weights_decreasing(self):
        weights = default_lexicon().zipf_weights()
        values = list(weights.values())
        assert all(a >= b for a, b in zip(values, values[1:], strict=False))


class TestSentenceSampler:
    def test_deterministic(self):
        sampler = SentenceSampler()
        a = sampler.sentence(RngStream(3))
        b = sampler.sentence(RngStream(3))
        assert a == b

    def test_length_bounds(self):
        sampler = SentenceSampler()
        for seed in range(20):
            words = sampler.sentence(RngStream(seed), min_words=10, max_words=30)
            assert 10 <= len(words) <= 30 + 8  # last clause may overshoot a bit

    def test_words_come_from_lexicon(self):
        sampler = SentenceSampler()
        lexicon_words = set(default_lexicon().all_words())
        words = sampler.sentence(RngStream(11), 12, 20)
        assert set(words) <= lexicon_words

    def test_invalid_bounds_raise(self):
        sampler = SentenceSampler()
        import pytest

        with pytest.raises(ValueError):
            sampler.sentence(RngStream(1), min_words=5, max_words=2)

    def test_different_seeds_differ(self):
        sampler = SentenceSampler()
        assert sampler.sentence(RngStream(1)) != sampler.sentence(RngStream(2))
