"""Tests for the text-LM comparator (repro.models.textlm)."""

import pytest

from repro.data.text_tasks import TextTaskConfig, build_text_corpus
from repro.models.latency import LatencyProfile, SimClock
from repro.models.textlm import SimulatedTextLM


@pytest.fixture(scope="module")
def prompts():
    return build_text_corpus(TextTaskConfig(seed=3, num_prompts=4, max_new_tokens=20))


@pytest.fixture(scope="module")
def text_pair(vocab):
    profile = LatencyProfile("t", 5.0, 0.2, 1.0, 0.05)
    draft = SimulatedTextLM("text-draft", 0.80, profile, vocab, pair_seed=5)
    target = SimulatedTextLM("text-target", 0.93, profile, vocab, pair_seed=5)
    return draft, target


class TestTextCorpus:
    def test_deterministic(self):
        a = build_text_corpus(TextTaskConfig(seed=3, num_prompts=4))
        b = build_text_corpus(TextTaskConfig(seed=3, num_prompts=4))
        assert [p.prompt_words for p in a] == [p.prompt_words for p in b]

    def test_prompt_shapes(self, prompts):
        for prompt in prompts:
            assert len(prompt.prompt_words) == 12
            assert prompt.max_new_tokens == 20


class TestTextSession:
    def test_deterministic_given_prefix(self, text_pair, prompts):
        draft, _ = text_pair
        a = draft.session(prompts[0], SimClock()).peek((7, 8))
        b = draft.session(prompts[0], SimClock()).peek((7, 8))
        assert a == b

    def test_prefix_changes_distribution(self, text_pair, prompts, vocab):
        """No audio anchor: a different prefix redraws the distribution.

        This is the structural opposite of the ASR sessions and the reason
        text speculative decoding shows lower acceptance (Fig. 5b).
        """
        draft, _ = text_pair
        session = draft.session(prompts[0], SimClock())
        regular = vocab.regular_ids()
        flips = 0
        for base in range(10):
            a = session.peek((regular[base],))
            b = session.peek((regular[base + 50],))
            if a.token != b.token:
                flips += 1
        assert flips > 5

    def test_eos_after_budget(self, text_pair, prompts, vocab):
        draft, _ = text_pair
        session = draft.session(prompts[0], SimClock())
        prefix = tuple(vocab.regular_ids()[:20])  # length == max_new_tokens
        assert session.peek(prefix).token == vocab.eos_id

    def test_latency_accounted(self, text_pair, prompts):
        draft, _ = text_pair
        clock = SimClock()
        session = draft.session(prompts[0], clock)
        session.prefill()
        session.step(())
        assert clock.total_ms() > 0

    def test_prefill_required(self, text_pair, prompts):
        draft, _ = text_pair
        session = draft.session(prompts[0], SimClock())
        with pytest.raises(RuntimeError):
            session.step(())

    def test_pair_shares_candidates(self, text_pair, prompts):
        """Draft and target with the same pair seed see the same candidate
        sets, so their top-k lists overlap heavily."""
        draft, target = text_pair
        d = draft.session(prompts[0], SimClock()).peek(())
        t = target.session(prompts[0], SimClock()).peek(())
        d_tokens = {tok for tok, _ in d.topk}
        t_tokens = {tok for tok, _ in t.topk}
        assert len(d_tokens & t_tokens) >= 4

    def test_capacity_validated(self, vocab, prompts):
        profile = LatencyProfile("t", 5.0, 0.2, 1.0, 0.05)
        with pytest.raises(ValueError):
            SimulatedTextLM("bad", 0.0, profile, vocab)


class TestSpeculativeOverText:
    def test_decoders_run_and_are_lossless(self, text_pair, prompts, vocab):
        """The generic decoders work unchanged over text sessions."""
        from repro.decoding.autoregressive import AutoregressiveDecoder
        from repro.decoding.speculative import SpeculativeConfig, SpeculativeDecoder

        draft, target = text_pair
        ar = AutoregressiveDecoder(target)
        spec = SpeculativeDecoder(draft, target, SpeculativeConfig(8, 1))
        for prompt in prompts:
            assert spec.decode(prompt).tokens == ar.decode(prompt).tokens
