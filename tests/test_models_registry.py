"""Tests for the model registry."""

import pytest

from repro.models.registry import (
    PAIRINGS,
    get_model,
    get_spec,
    list_models,
    model_pair,
    published_asr_configs,
)


class TestRegistry:
    def test_all_models_instantiate(self, vocab):
        for name in list_models():
            model = get_model(name, vocab)
            assert model.name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_spec("gpt-5-sim")

    def test_pairings_reference_known_models(self):
        names = set(list_models())
        for draft, target in PAIRINGS.values():
            assert {draft, target} <= names

    def test_pair_instantiation(self, vocab):
        draft, target = model_pair("whisper", vocab)
        assert draft.name == "whisper-tiny-sim"
        assert target.name == "whisper-medium-sim"

    def test_unknown_pairing_rejected(self, vocab):
        with pytest.raises(KeyError):
            model_pair("nonexistent", vocab)

    def test_capacity_monotone_in_size_within_family(self):
        whisper = [
            get_spec(n) for n in list_models() if get_spec(n).family == "whisper"
        ]
        whisper.sort(key=lambda s: s.decoder_params_b)
        capacities = [s.capacity for s in whisper]
        assert capacities == sorted(capacities)

    def test_latency_monotone_in_size_within_family(self):
        whisper = [
            get_spec(n) for n in list_models() if get_spec(n).family == "whisper"
        ]
        whisper.sort(key=lambda s: s.decoder_params_b)
        bases = [s.latency.base_ms for s in whisper]
        assert bases == sorted(bases)

    def test_draft_cheaper_than_target_in_every_pairing(self):
        for draft_name, target_name in PAIRINGS.values():
            draft, target = get_spec(draft_name), get_spec(target_name)
            assert draft.latency.base_ms < target.latency.base_ms
            assert draft.capacity < target.capacity

    def test_published_configs_match_paper_fig1(self):
        configs = {c.name: c for c in published_asr_configs()}
        assert configs["BESTOW"].decoder_params_b == pytest.approx(1.1)
        assert configs["Speech-Llama"].decoder_params_b == pytest.approx(7.0)
        assert configs["Seed-ASR"].decoder_params_b > 10.0
        for config in configs.values():
            assert config.encoder_params_b < 1.0  # "generally under 1B"

    def test_encoder_attached_latency(self):
        for name in list_models():
            assert get_spec(name).encoder_latency_ms_per_10s > 0
