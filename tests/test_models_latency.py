"""Tests for repro.models.latency and repro.models.kv_cache."""

import pytest

from repro.models.kv_cache import KVCacheTracker
from repro.models.latency import (
    LatencyEvent,
    LatencyProfile,
    SimClock,
    forward_ms,
    prefill_ms,
    summarize_events,
)

PROFILE = LatencyProfile(
    "m", base_ms=10.0, per_token_ms=0.5, kv_us_per_token=2.0, prefill_per_token_ms=0.1
)


class TestForwardCost:
    def test_single_token(self):
        assert forward_ms(PROFILE, 1, 0) == pytest.approx(10.5)

    def test_batched_cheaper_than_sequential(self):
        batched = forward_ms(PROFILE, 8, 0)
        sequential = sum(forward_ms(PROFILE, 1, i) for i in range(8))
        assert batched < sequential

    def test_kv_term_grows_with_cache(self):
        assert forward_ms(PROFILE, 1, 1000) > forward_ms(PROFILE, 1, 0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            forward_ms(PROFILE, 0, 0)
        with pytest.raises(ValueError):
            forward_ms(PROFILE, 1, -1)

    def test_prefill(self):
        assert prefill_ms(PROFILE, 100) == pytest.approx(10.0 + 10.0)
        with pytest.raises(ValueError):
            prefill_ms(PROFILE, -1)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            LatencyProfile("bad", -1.0, 0.1, 0.1, 0.1)


class TestSimClock:
    def test_totals_equal_sum_of_events(self):
        clock = SimClock()
        clock.record("a", "draft", 1, 0, 5.0)
        clock.record("b", "verify", 4, 10, 7.5)
        assert clock.total_ms() == pytest.approx(12.5)
        assert clock.total_for_model("a") == pytest.approx(5.0)
        assert clock.total_for_kind("verify") == pytest.approx(7.5)

    def test_counts_and_tokens(self):
        clock = SimClock()
        clock.record("a", "draft", 2, 0, 1.0)
        clock.record("a", "draft", 3, 2, 1.0)
        assert clock.count_for_kind("draft") == 2
        assert clock.tokens_for_kind("draft") == 5

    def test_negative_duration_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.record("a", "draft", 1, 0, -1.0)

    def test_merge(self):
        a, b = SimClock(), SimClock()
        a.record("x", "draft", 1, 0, 1.0)
        b.record("y", "verify", 1, 0, 2.0)
        a.merge(b)
        assert a.total_ms() == pytest.approx(3.0)

    def test_summarize(self):
        events = [
            LatencyEvent("a", "draft", 1, 0, 1.0),
            LatencyEvent("a", "draft", 1, 0, 2.0),
        ]
        assert summarize_events(events) == {"a/draft": 3.0}


class TestKVCache:
    def test_append_and_peak(self):
        kv = KVCacheTracker()
        kv.append(10)
        kv.append(5)
        assert kv.length == 15
        assert kv.peak == 15

    def test_rollback(self):
        kv = KVCacheTracker()
        kv.append(10)
        kv.rollback_to(4)
        assert kv.length == 4
        assert kv.rolled_back_total == 6
        assert kv.rollback_events == 1

    def test_rollback_validation(self):
        kv = KVCacheTracker()
        kv.append(3)
        with pytest.raises(ValueError):
            kv.rollback_to(5)
        with pytest.raises(ValueError):
            kv.rollback_to(-1)

    def test_waste_ratio(self):
        kv = KVCacheTracker()
        kv.append(10)
        kv.rollback_to(5)
        assert kv.waste_ratio == pytest.approx(0.5)

    def test_waste_ratio_empty(self):
        assert KVCacheTracker().waste_ratio == 0.0

    def test_negative_append_rejected(self):
        with pytest.raises(ValueError):
            KVCacheTracker().append(-1)
