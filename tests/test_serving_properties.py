"""Property-based serving invariants (hypothesis).

Three invariant families the serving stack must hold for *any* workload
and cluster shape, not just the hand-picked fixtures of the unit suites:

* **Request conservation** — every request a trace admits is accounted
  for when the scheduler drains: completed + rejected == offered, with no
  request left in flight and no status invented.
* **Device timeline monotonicity** — a device's ``free_at`` never
  decreases, its busy intervals never overlap, and its ``busy_ms`` is
  exactly the sum of its interval lengths.
* **Batch cost bounds** — for any micro-batch,
  ``max(costs) <= busy * speed <= sum(costs) * inflation`` where
  ``inflation`` is the residency-interference multiplier, and busy time
  is monotonically non-increasing in ``overlap``.

* **Chaos invariants** — for *any* seeded fault plan (crashes with or
  without warm restart, stall windows, slowdowns, transient phase
  errors) and any priority mix: conservation extends to
  ``completed + rejected + shed == arrived``, no micro-batch ever starts
  on a dead or stalled device, per-device dispatch timelines stay
  monotone across failure gaps, and every request that completes does so
  with a transcript bit-identical to the fault-free decode.

All examples are bounded and deadline-free (``deadline=None``,
``derandomize=True``) so the suite is CI-stable by construction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decoding.base import PHASE_DRAFT, PHASE_VERIFY, PhaseOutcome
from repro.harness.methods import build_method
from repro.serving import (
    ClusterConfig,
    ContinuousBatchScheduler,
    Device,
    DeviceCrash,
    DeviceSlowdown,
    DeviceStall,
    FaultPlan,
    PhaseErrorRate,
    SchedulerConfig,
)
from repro.serving.arrivals import Arrival
from repro.serving.request import (
    PRIORITY_CLASSES,
    STATUS_COMPLETED,
    STATUS_REJECTED,
    STATUS_SHED,
)

STABLE = settings(max_examples=30, deadline=None, derandomize=True)
STABLE_SMALL = settings(max_examples=15, deadline=None, derandomize=True)

overlaps = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
speeds = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
switch_costs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
models = st.sampled_from(("draft-model", "target-model"))
kinds = st.sampled_from((PHASE_DRAFT, PHASE_VERIFY))


def _phase(model: str, kind: str, ms: float) -> PhaseOutcome:
    return PhaseOutcome(kind, model, ms, (), True, False)


batches = st.lists(
    st.tuples(
        models,
        kinds,
        st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
).map(lambda items: [_phase(m, k, ms) for m, k, ms in items])


class TestBatchCostBounds:
    @given(batch=batches, overlap=overlaps, speed=speeds, switch=switch_costs)
    @STABLE
    def test_busy_bounded_by_critical_path_and_serial_sum(
        self, batch, overlap, speed, switch
    ):
        device = Device(0, overlap=overlap, switch_cost=switch, speed=speed)
        busy = device.batch_busy_ms(batch)
        phase_costs = [p.ms for p in batch]
        n_models = len({p.model for p in batch})
        inflation = 1.0 + switch * (n_models - 1)
        # speed scales linearly, so compare in nominal (speed-1) time
        nominal = busy * speed
        assert nominal >= max(phase_costs) * (1.0 - 1e-9)
        assert nominal <= sum(phase_costs) * inflation * (1.0 + 1e-9)

    @given(
        batch=batches,
        lo=overlaps,
        hi=overlaps,
        speed=speeds,
        merge=st.booleans(),
    )
    @STABLE
    def test_busy_monotone_non_increasing_in_overlap(
        self, batch, lo, hi, speed, merge
    ):
        lo, hi = min(lo, hi), max(lo, hi)
        less_batched = Device(0, overlap=lo, speed=speed)
        more_batched = Device(1, overlap=hi, speed=speed)
        assert (
            more_batched.batch_busy_ms(batch, merge_verify=merge)
            <= less_batched.batch_busy_ms(batch, merge_verify=merge) + 1e-9
        )

    @given(batch=batches, overlap=overlaps, speed=speeds)
    @STABLE
    def test_merge_verify_never_costs_more(self, batch, overlap, speed):
        device = Device(0, overlap=overlap, speed=speed)
        assert (
            device.batch_busy_ms(batch, merge_verify=True)
            <= device.batch_busy_ms(batch, merge_verify=False) + 1e-9
        )


class TestDeviceTimeline:
    @given(
        overlap=overlaps,
        speed=speeds,
        submissions=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
                batches,
            ),
            min_size=1,
            max_size=10,
        ),
    )
    @STABLE
    def test_free_at_monotone_and_busy_intervals_disjoint(
        self, overlap, speed, submissions
    ):
        device = Device(0, overlap=overlap, speed=speed)
        intervals = []
        previous_free = device.free_at
        for start_ms, batch in submissions:
            begin = max(start_ms, device.free_at)
            end = device.execute(start_ms, batch)
            assert end >= begin
            assert device.free_at == end
            assert device.free_at >= previous_free  # never rewinds
            previous_free = device.free_at
            intervals.append((begin, end))
        # busy intervals never overlap: each starts at or after the
        # previous one ended (submission order is execution order)
        for (_, prev_end), (next_begin, _) in zip(
            intervals, intervals[1:], strict=False
        ):
            assert next_begin >= prev_end - 1e-9
        assert device.busy_ms == pytest.approx(
            sum(end - begin for begin, end in intervals)
        )
        assert device.batches == len(submissions)
        assert device.phases == sum(len(batch) for _, batch in submissions)


@pytest.fixture(scope="module")
def serving_decoder(whisper_pair):
    draft, target = whisper_pair
    return build_method("spec(8,1)", draft, target)


cluster_shapes = st.sampled_from(
    (
        ClusterConfig(devices=1),
        ClusterConfig(devices=2, router="disaggregated"),
        ClusterConfig(devices=3, router="merged", split="balanced"),
        ClusterConfig(devices=4, router="disaggregated", split="balanced"),
    )
)


class TestRequestConservation:
    @given(
        arrival_gaps=st.lists(
            st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        utterance_picks=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=12, max_size=12
        ),
        queue_capacity=st.integers(min_value=1, max_value=4),
        max_batch=st.integers(min_value=1, max_value=3),
        cluster=cluster_shapes,
    )
    @STABLE_SMALL
    def test_admitted_equals_completed_plus_rejected_at_drain(
        self,
        serving_decoder,
        clean_dataset,
        arrival_gaps,
        utterance_picks,
        queue_capacity,
        max_batch,
        cluster,
    ):
        trace = []
        now = 0.0
        for index, gap in enumerate(arrival_gaps):
            now += gap
            utterance = utterance_picks[index] % len(clean_dataset)
            trace.append(Arrival(index, utterance, now))
        scheduler = ContinuousBatchScheduler(
            serving_decoder,
            SchedulerConfig(
                max_batch=max_batch,
                max_inflight=max_batch + 2,
                queue_capacity=queue_capacity,
            ),
            cluster,
        )
        records = scheduler.run(trace, clean_dataset)
        stats = scheduler.last_stats

        # conservation: offered == completed + rejected, nothing in flight
        assert len(records) == len(trace)
        completed = [r for r in records if r.status == STATUS_COMPLETED]
        rejected = [r for r in records if r.status == STATUS_REJECTED]
        assert len(completed) + len(rejected) == len(records)
        assert stats.rejected == len(rejected)

        # per-request timeline sanity for everything that ran
        for record in completed:
            assert record.service_start_ms >= record.request.arrival_ms
            assert record.first_token_ms >= record.service_start_ms
            assert record.finish_ms >= record.first_token_ms
            assert record.finish_ms <= stats.sim_end_ms + 1e-9
        for record in rejected:
            assert record.finish_ms is None and not record.tokens

        # cluster accounting is self-consistent
        assert stats.devices == cluster.devices
        assert len(stats.per_device_busy_ms) == cluster.devices
        assert sum(stats.per_device_busy_ms) == pytest.approx(stats.device_busy_ms)
        assert all(busy >= 0.0 for busy in stats.per_device_busy_ms)


CHAOS_DEVICES = 4
event_times = st.floats(min_value=0.0, max_value=2500.0, allow_nan=False)
chaos_device_indices = st.integers(min_value=0, max_value=CHAOS_DEVICES - 1)


@st.composite
def fault_plans(draw):
    """Any composition of the four fault kinds on a 4-device cluster."""
    events = []
    if draw(st.booleans()):  # at most one crash keeps the plan valid
        events.append(
            DeviceCrash(
                device=draw(chaos_device_indices),
                at_ms=draw(event_times),
                restart_delay_ms=draw(
                    st.one_of(
                        st.none(),
                        st.floats(min_value=50.0, max_value=1500.0),
                    )
                ),
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        events.append(
            DeviceStall(
                device=draw(chaos_device_indices),
                at_ms=draw(event_times),
                duration_ms=draw(st.floats(min_value=10.0, max_value=800.0)),
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        events.append(
            DeviceSlowdown(
                device=draw(chaos_device_indices),
                factor=draw(st.floats(min_value=0.1, max_value=2.0)),
                at_ms=draw(event_times),
                duration_ms=draw(st.floats(min_value=50.0, max_value=1500.0)),
            )
        )
    if draw(st.booleans()):
        events.append(
            PhaseErrorRate(rate=draw(st.floats(min_value=0.0, max_value=0.25)))
        )
    return FaultPlan(events=tuple(events), seed=draw(st.integers(0, 3)))


class TestChaosInvariants:
    @given(
        plan=fault_plans(),
        arrival_gaps=st.lists(
            st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
        priorities=st.lists(
            st.sampled_from(PRIORITY_CLASSES), min_size=10, max_size=10
        ),
        max_batch=st.integers(min_value=1, max_value=3),
    )
    @STABLE_SMALL
    def test_conservation_and_timelines_hold_under_any_plan(
        self,
        serving_decoder,
        clean_dataset,
        plan,
        arrival_gaps,
        priorities,
        max_batch,
    ):
        trace = []
        now = 0.0
        for index, gap in enumerate(arrival_gaps):
            now += gap
            trace.append(
                Arrival(index, index % len(clean_dataset), now, priorities[index])
            )
        scheduler = ContinuousBatchScheduler(
            serving_decoder,
            SchedulerConfig(max_batch=max_batch, max_inflight=max_batch + 2),
            ClusterConfig(devices=CHAOS_DEVICES, router="disaggregated"),
            faults=plan,
        )
        records = scheduler.run(trace, clean_dataset)
        stats = scheduler.last_stats

        # conservation now includes shedding: every arrival is accounted for
        by_status = {
            status: sum(1 for r in records if r.status == status)
            for status in (STATUS_COMPLETED, STATUS_REJECTED, STATUS_SHED)
        }
        assert sum(by_status.values()) == len(records)
        assert stats.shed == by_status[STATUS_SHED]
        for record in records:
            if record.status == STATUS_SHED:
                assert record.shed_reason in ("deadline", "retries", "capacity")

        # no micro-batch ever starts on a dead or stalled device, and each
        # device's dispatch timeline stays monotone across failure gaps
        profiles = plan.profiles(CHAOS_DEVICES)
        per_device_end = [0.0] * CHAOS_DEVICES
        for device_index, start, end, phases, _aborted in scheduler.last_dispatch_log:
            assert profiles[device_index].available(start)
            assert phases >= 1
            assert start >= per_device_end[device_index] - 1e-9
            assert end >= start
            per_device_end[device_index] = end

        # completers' transcripts are bit-identical to the fault-free decode
        for record in records:
            if record.status != STATUS_COMPLETED:
                continue
            reference = serving_decoder.decode(record.request.utterance)
            assert record.tokens == list(reference.tokens)
            assert record.decode_ms == reference.total_ms
            assert record.finish_ms <= stats.sim_end_ms + 1e-9

        # wasted work only exists when batches were actually aborted
        aborted = sum(1 for entry in scheduler.last_dispatch_log if entry[4])
        if aborted == 0:
            assert stats.wasted_busy_ms == 0.0
        assert stats.fault_events == len(plan.events)
