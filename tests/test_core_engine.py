"""Tests for the SpecASR engine: all modes, losslessness, suffix lifecycle."""

import pytest

from repro.core.config import asp_only, asp_with_recycling, full_specasr
from repro.core.engine import SpecASREngine
from repro.decoding.autoregressive import AutoregressiveDecoder

from tests.fakes import EOS, FakeUnit, ScriptedModel

MODES = [asp_only(), asp_with_recycling(), full_specasr()]


class TestLosslessOnScriptedModels:
    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode)
    def test_agreeing_models(self, config):
        stream = [5, 6, 7, 8, 9, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = SpecASREngine(draft, target, config).decode(FakeUnit())
        assert result.tokens == [5, 6, 7, 8, 9]

    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode)
    def test_disagreeing_models(self, config):
        target_stream = [5, 6, 7, 8, 9, 10, EOS]
        draft_stream = [5, 9, 7, 8, 11, 10, EOS]
        draft = ScriptedModel(stream=draft_stream, name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        result = SpecASREngine(draft, target, config).decode(FakeUnit())
        assert result.tokens == [5, 6, 7, 8, 9, 10]

    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode)
    def test_hostile_draft(self, config):
        """A draft that never agrees still converges to the target output."""
        target_stream = [5, 6, 7, EOS]
        draft = ScriptedModel(stream=[90, 91, 92, 93, 94], name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        result = SpecASREngine(draft, target, config).decode(FakeUnit())
        assert result.tokens == [5, 6, 7]


class TestSuffixLifecycle:
    def test_recycling_records_reuse(self):
        # Draft wrong at position 1 only; the retained suffix should merge.
        target_stream = [5, 6, 7, 8, 9, 10, 11, 12, EOS]
        draft_stream = [5, 99, 7, 8, 9, 10, 11, 12, EOS]
        draft = ScriptedModel(stream=draft_stream, name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        result = SpecASREngine(draft, target, asp_with_recycling()).decode(FakeUnit())
        assert result.tokens == target_stream[:-1]
        assert result.trace.total_recycled > 0

    def test_asp_only_never_recycles(self):
        target_stream = [5, 6, 7, 8, 9, EOS]
        draft_stream = [5, 99, 7, 8, 9, EOS]
        draft = ScriptedModel(stream=draft_stream, name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        result = SpecASREngine(draft, target, asp_only()).decode(FakeUnit())
        assert result.trace.total_recycled == 0

    def test_recycling_reduces_draft_steps(self):
        target_stream = [5, 99, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, EOS]
        draft_stream = [5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, EOS]
        draft = ScriptedModel(stream=draft_stream, name="draft")
        target = ScriptedModel(stream=target_stream, name="target")
        no_recycle = SpecASREngine(draft, target, asp_only()).decode(FakeUnit())
        recycle = SpecASREngine(draft, target, asp_with_recycling()).decode(FakeUnit())
        assert recycle.tokens == no_recycle.tokens
        assert recycle.trace.total_draft_steps < no_recycle.trace.total_draft_steps


class TestOnSimulatedModels:
    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode)
    def test_lossless_against_ar(self, config, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        ar = AutoregressiveDecoder(target)
        engine = SpecASREngine(draft, target, config)
        for utterance in clean_dataset:
            assert engine.decode(utterance).tokens == ar.decode(utterance).tokens

    def test_deterministic(self, whisper_pair, utterance):
        draft, target = whisper_pair
        engine = SpecASREngine(draft, target, full_specasr())
        a = engine.decode(utterance)
        b = engine.decode(utterance)
        assert a.tokens == b.tokens
        assert a.total_ms == pytest.approx(b.total_ms)
        assert a.trace.num_rounds == b.trace.num_rounds

    def test_faster_than_autoregressive(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        ar = AutoregressiveDecoder(target)
        engine = SpecASREngine(draft, target, asp_with_recycling())
        ar_ms = sum(ar.decode(u).total_ms for u in clean_dataset)
        engine_ms = sum(engine.decode(u).total_ms for u in clean_dataset)
        assert engine_ms < ar_ms

    def test_latency_totals_consistent(self, whisper_pair, utterance):
        draft, target = whisper_pair
        engine = SpecASREngine(draft, target, full_specasr())
        result = engine.decode(utterance)
        assert result.total_ms == pytest.approx(sum(e.ms for e in result.clock.events))

    def test_round_counters_consistent(self, whisper_pair, utterance):
        draft, target = whisper_pair
        engine = SpecASREngine(draft, target, asp_with_recycling())
        result = engine.decode(utterance)
        for stats in result.trace.rounds:
            assert stats.accepted_tokens <= stats.submitted_tokens
            assert stats.emitted_tokens == stats.accepted_tokens + 1
            assert stats.tree_nodes >= stats.submitted_tokens

    def test_ms_per_10s_normalisation(self, whisper_pair, utterance):
        draft, target = whisper_pair
        engine = SpecASREngine(draft, target, asp_only())
        result = engine.decode(utterance)
        expected = result.total_ms * 10.0 / utterance.duration_s
        assert result.ms_per_10s(utterance.duration_s) == pytest.approx(expected)
        with pytest.raises(ValueError):
            result.ms_per_10s(0.0)
