"""Tests for repro.utils.hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import stable_hash, stable_uniform


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_known_value_is_stable_across_runs(self):
        # Pin one value so accidental algorithm changes are caught: the whole
        # simulation's determinism depends on this function never changing.
        assert stable_hash("anchor") == stable_hash("anchor")
        assert stable_hash("anchor") != stable_hash("anchor2")

    def test_order_sensitive(self):
        assert stable_hash(1, 2) != stable_hash(2, 1)

    def test_type_sensitive(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(1) != stable_hash(1.0)

    def test_bool_distinct_from_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_nested_tuples(self):
        assert stable_hash((1, (2, 3))) == stable_hash((1, (2, 3)))
        assert stable_hash((1, (2, 3))) != stable_hash((1, 2, 3))

    def test_none_supported(self):
        assert stable_hash(None) == stable_hash(None)

    def test_bytes_supported(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    @given(st.lists(st.integers(), max_size=8))
    def test_in_64bit_range(self, parts):
        value = stable_hash(*parts) if parts else stable_hash(0)
        assert 0 <= value < 2**64


class TestStableUniform:
    @given(st.integers(), st.integers())
    def test_in_unit_interval(self, a, b):
        value = stable_uniform(a, b)
        assert 0.0 <= value < 1.0

    def test_deterministic(self):
        assert stable_uniform("x", 3) == stable_uniform("x", 3)

    def test_spreads(self):
        values = {stable_uniform("spread", i) for i in range(100)}
        assert len(values) == 100
