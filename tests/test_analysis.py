"""Tests for :mod:`repro.analysis` — the ``repro lint`` rule engine.

Every rule gets (a) a fixture that fires it and (b) a suppression test
showing ``# repro: ignore[RULE]`` silences exactly that rule on exactly
that line.  The engine suite covers discovery, baselines, JSON round-trips,
parallel==serial output, and — the point of the whole exercise — a
self-scan: the shipped tree lints clean with an empty baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintResult,
    SYNTAX_RULE,
    analyze_source,
    collect_files,
    default_rules,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    suppressed_lines,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default rel for fixtures: inside every rule's scope.
SCOPED = "src/repro/serving/fixture.py"


def lint(source: str, rel: str = SCOPED, rules=None) -> list[Finding]:
    return analyze_source(textwrap.dedent(source), rel, rules=rules)


def rules_fired(source: str, rel: str = SCOPED) -> set[str]:
    return {finding.rule for finding in lint(source, rel)}


# -- rule registry -----------------------------------------------------------


class TestRegistry:
    def test_all_seven_rules_registered(self):
        ids = [rule.id for rule in default_rules()]
        assert ids == sorted(ids), "registry must be ordered by rule id"
        assert set(ids) == {
            "API001",
            "CFG001",
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "SIM001",
        }

    def test_scopes(self):
        scopes = {rule.id: rule.scope for rule in default_rules()}
        assert scopes["DET001"] == "src/repro"
        assert scopes["SIM001"] == "src/repro"
        assert scopes["CFG001"] == "src/repro/serving"
        assert scopes["DET002"] is None


# -- DET001: wall-clock reads ------------------------------------------------


class TestDet001:
    FIXTURE = """\
        import time
        from time import perf_counter
        import datetime as dt

        def f():
            a = time.time()
            b = perf_counter()
            c = dt.datetime.now()
            return a, b, c
        """

    def test_fires_on_wall_clock_reads(self):
        findings = [f for f in lint(self.FIXTURE) if f.rule == "DET001"]
        assert [f.line for f in findings] == [6, 7, 8]
        assert "time.perf_counter" in findings[1].message

    def test_out_of_scope_tools_are_exempt(self):
        assert "DET001" not in rules_fired(self.FIXTURE, rel="tools/bench.py")

    def test_suppression_silences_only_its_line(self):
        fixture = """\
            import time

            def f():
                a = time.time()  # repro: ignore[DET001]
                return a, time.monotonic()
            """
        findings = [f for f in lint(fixture) if f.rule == "DET001"]
        assert [f.line for f in findings] == [5]


# -- DET002: unseeded randomness ---------------------------------------------


class TestDet002:
    def test_fires_on_global_stdlib_random(self):
        fired = lint("import random\nx = random.random()\n")
        assert [f.rule for f in fired] == ["DET002"]
        assert "process-global" in fired[0].message

    def test_fires_on_numpy_legacy_global(self):
        fired = lint("import numpy as np\nnp.random.seed(0)\n")
        assert [f.rule for f in fired] == ["DET002"]
        assert "legacy" in fired[0].message

    def test_fires_on_unseeded_default_rng(self):
        fired = lint("import numpy as np\nrng = np.random.default_rng()\n")
        assert [f.rule for f in fired] == ["DET002"]
        assert "OS entropy" in fired[0].message

    def test_seeded_default_rng_is_clean(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(7)\n") == []
        assert lint("import numpy as np\nr = np.random.default_rng(seed=7)\n") == []

    def test_fires_on_intrinsically_nondeterministic_sources(self):
        fired = rules_fired("import uuid\ntoken = uuid.uuid4()\n")
        assert fired == {"DET002"}

    def test_seeded_random_class_is_clean(self):
        assert lint("import random\nrng = random.Random(13)\n") == []

    def test_suppression(self):
        clean = lint(
            "import random\nx = random.random()  # repro: ignore[DET002]\n"
        )
        assert clean == []


# -- DET003: builtin hash()/id() ---------------------------------------------


class TestDet003:
    def test_hash_always_fires(self):
        fired = lint("key = hash('utterance-7')\n")
        assert [f.rule for f in fired] == ["DET003"]
        assert "PYTHONHASHSEED" in fired[0].message

    def test_id_in_sort_key_fires(self):
        fired = lint("items = sorted(pool, key=lambda d: id(d))\n")
        assert [f.rule for f in fired] == ["DET003"]

    def test_id_in_seed_arithmetic_fires(self):
        assert rules_fired("seed = id(obj) % 1000\n") == {"DET003"}

    def test_id_fed_to_stable_hash_fires(self):
        fired = lint(
            "from repro.utils.hashing import stable_hash\ns = stable_hash(id(x))\n"
        )
        assert [f.rule for f in fired] == ["DET003"]

    def test_id_as_plain_cache_key_is_clean(self):
        # Identity caching is deterministic in behaviour — must NOT fire.
        assert lint("cache[id(model)] = value\n") == []
        assert lint("seen = {id(node) for node in nodes}\n") == []

    def test_suppression(self):
        assert lint("key = hash(text)  # repro: ignore[DET003]\n") == []


# -- DET004: unordered selection ---------------------------------------------


class TestDet004:
    def test_min_over_set_without_key_fires(self):
        fired = lint("best = min({3, 1, 2})\n")
        assert [f.rule for f in fired] == ["DET004"]

    def test_min_with_key_is_clean(self):
        assert lint("best = min(set(xs), key=lambda x: (x.cost, x.name))\n") == []

    def test_next_iter_over_set_fires(self):
        assert rules_fired("probe = next(iter(set(devices)))\n") == {"DET004"}

    def test_next_iter_over_values_fires(self):
        assert rules_fired("probe = next(iter(live.values()))\n") == {"DET004"}

    def test_set_pop_fires(self):
        assert rules_fired("x = set(pending).pop()\n") == {"DET004"}

    def test_list_selection_is_clean(self):
        assert lint("first = next(iter([1, 2, 3]))\nbest = min([3, 1])\n") == []

    def test_suppression(self):
        clean = lint("probe = next(iter(live.values()))  # repro: ignore[DET004]\n")
        assert clean == []


# -- SIM001: explicit phase costs --------------------------------------------


class TestSim001:
    def test_phase_outcome_without_ms_fires(self):
        fired = lint("out = PhaseOutcome('draft', 4)\n")
        assert [f.rule for f in fired] == ["SIM001"]
        assert "ms=" in fired[0].message

    def test_phase_outcome_zero_ms_fires(self):
        fired = lint("out = PhaseOutcome('draft', 4, ms=0.0)\n")
        assert [f.rule for f in fired] == ["SIM001"]
        assert "zero" in fired[0].message

    def test_phase_outcome_with_cost_is_clean(self):
        assert lint("out = PhaseOutcome('draft', 4, ms=clock.elapsed())\n") == []

    def test_device_execute_missing_phases_fires(self):
        assert rules_fired("device.execute(now_ms)\n") == {"SIM001"}

    def test_device_execute_with_start_and_phases_is_clean(self):
        assert lint("device.execute(now_ms, phases)\n") == []
        assert lint("device.execute(start_ms=t, phases=batch)\n") == []

    def test_non_device_execute_is_clean(self):
        assert lint("cursor.execute('SELECT 1')\n") == []

    def test_out_of_scope(self):
        assert lint("out = PhaseOutcome('draft', 4)\n", rel="tools/bench.py") == []

    def test_suppression(self):
        src = "out = PhaseOutcome('warm', 0, ms=0.0)  # repro: ignore[SIM001]\n"
        assert lint(src) == []


# -- CFG001: config pickle compatibility -------------------------------------


class TestCfg001:
    def test_field_without_default_fires(self):
        fixture = """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RetrySpec:
                attempts: int
            """
        fired = lint(fixture)
        assert [f.rule for f in fired] == ["CFG001"]
        assert "no default" in fired[0].message

    def test_spec_field_needs_setstate_coverage(self):
        fixture = """\
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class ChaosSpec:
                rate: float = 0.0

            @dataclass
            class ServeSimConfig:
                chaos: ChaosSpec = field(default_factory=ChaosSpec)

                def __setstate__(self, state):
                    self.__init__(**state)
            """
        fired = lint(fixture)
        assert [f.rule for f in fired] == ["CFG001"]
        assert "'chaos'" in fired[0].message

    def test_guarded_setstate_is_clean(self):
        fixture = """\
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class ChaosSpec:
                rate: float = 0.0

            @dataclass
            class ServeSimConfig:
                chaos: ChaosSpec = field(default_factory=ChaosSpec)

                def __setstate__(self, state):
                    if "chaos" not in state:
                        state = dict(state)
                        state["chaos"] = ChaosSpec()
                    self.__dict__.update(state)
            """
        assert lint(fixture) == []

    def test_out_of_scope_models_are_exempt(self):
        fixture = """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ModelSpec:
                name: str
            """
        assert lint(fixture, rel="src/repro/models/registry.py") == []

    def test_suppression(self):
        fixture = """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RetrySpec:
                attempts: int  # repro: ignore[CFG001]
            """
        assert lint(fixture) == []


# -- API001: __all__ drift ---------------------------------------------------


class TestApi001:
    def test_phantom_export_fires(self):
        fixture = """\
            __all__ = ["real", "phantom"]

            def real():
                return 1
            """
        fired = lint(fixture, rel="src/repro/util.py")
        assert [f.rule for f in fired] == ["API001"]
        assert "'phantom'" in fired[0].message

    def test_duplicate_export_fires(self):
        fixture = """\
            __all__ = ["twice", "twice"]

            def twice():
                return 2
            """
        fired = lint(fixture, rel="src/repro/util.py")
        assert any("more than once" in f.message for f in fired)

    def test_pep562_lazy_export_is_bound(self):
        fixture = """\
            __all__ = ["Lazy"]

            def __getattr__(name):
                if name == "Lazy":
                    from repro.models.kv import Lazy
                    return Lazy
                raise AttributeError(name)
            """
        assert lint(fixture, rel="src/repro/util.py") == []

    def test_own_submodule_import_missing_from_all_fires(self):
        fixture = """\
            from repro.pkg.impl import helper

            __all__ = ["main"]

            def main():
                return helper()
            """
        fired = lint(fixture, rel="src/repro/pkg/__init__.py")
        assert [f.rule for f in fired] == ["API001"]
        assert "'helper'" in fired[0].message

    def test_foreign_imports_are_not_exports(self):
        fixture = """\
            from typing import Sequence

            __all__ = ["main"]

            def main(xs: Sequence[int]) -> int:
                return len(xs)
            """
        assert lint(fixture, rel="src/repro/pkg/__init__.py") == []

    def test_suppression(self):
        fixture = """\
            __all__ = ["phantom"]  # repro: ignore[API001]
            """
        assert lint(fixture, rel="src/repro/util.py") == []


# -- engine mechanics --------------------------------------------------------


class TestEngine:
    def test_syntax_error_becomes_e999_finding(self):
        fired = lint("def broken(:\n")
        assert [f.rule for f in fired] == [SYNTAX_RULE]

    def test_suppressed_lines_parses_multiple_ids(self):
        lines = suppressed_lines("x = 1  # repro: ignore[DET003, DET004]\n")
        assert lines == {1: frozenset({"DET003", "DET004"})}

    def test_suppression_is_rule_specific(self):
        # The ignore names DET003 but the line violates DET004 — it stays.
        src = "probe = next(iter(set(xs)))  # repro: ignore[DET003]\n"
        assert rules_fired(src) == {"DET004"}

    def test_findings_sort_like_a_compiler_log(self):
        src = "import time\nb = time.time()\na = hash(b)\n"
        findings = lint(src)
        assert findings == sorted(findings)
        assert [f.line for f in findings] == [2, 3]

    def test_finding_json_round_trip(self):
        finding = Finding(
            path="src/repro/x.py", line=12, rule="DET001", message="m"
        )
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_render_json_round_trips(self):
        result = LintResult(
            findings=(Finding("a.py", 1, "DET003", "msg"),),
            files_scanned=3,
        )
        data = json.loads(render_json(result))
        assert data["files_scanned"] == 3
        assert [Finding.from_dict(f) for f in data["findings"]] == [
            result.findings[0]
        ]

    def test_render_text_shape(self):
        result = LintResult(
            findings=(Finding("a.py", 1, "DET003", "msg"),), files_scanned=2
        )
        text = render_text(result)
        assert text.splitlines() == ["a.py:1: DET003 msg", "1 finding in 2 files"]


class TestRunLint:
    @pytest.fixture()
    def mini_repo(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import time\nSTAMP = time.time()\nKEY = hash(STAMP)\n"
        )
        (pkg / "good.py").write_text("VALUE = 42\n")
        return tmp_path

    def test_run_lint_reports_relative_sorted_findings(self, mini_repo):
        result = run_lint(["src"], mini_repo)
        assert result.files_scanned == 2
        assert [f.rule for f in result.findings] == ["DET001", "DET003"]
        assert all(f.path == "src/repro/bad.py" for f in result.findings)

    def test_parallel_output_matches_serial(self, mini_repo):
        serial = run_lint(["src"], mini_repo, workers=1)
        parallel = run_lint(["src"], mini_repo, workers=2)
        assert serial == parallel

    def test_baseline_round_trip_filters_findings(self, mini_repo, tmp_path):
        first = run_lint(["src"], mini_repo)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, list(first.findings))
        second = run_lint(
            ["src"], mini_repo, baseline=load_baseline(baseline_path)
        )
        assert second.clean
        assert second.baselined == len(first.findings)

    def test_missing_target_raises(self, mini_repo):
        with pytest.raises(FileNotFoundError):
            run_lint(["no_such_dir"], mini_repo)

    def test_collect_files_skips_caches(self, mini_repo):
        cache = mini_repo / "src" / "repro" / "__pycache__"
        cache.mkdir()
        (cache / "bad.cpython-312.py").write_text("x = hash(1)\n")
        files = collect_files(["src"], mini_repo)
        assert [f.name for f in files] == ["bad.py", "good.py"]


# -- the contract: the shipped tree is clean ---------------------------------


def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


class TestSelfScan:
    def test_src_and_tools_lint_clean_with_empty_baseline(self):
        result = run_lint(["src", "tools"], REPO_ROOT)
        assert result.files_scanned > 80
        assert result.findings == (), render_text(result)

    def test_cli_strict_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--strict", "src", "tools"],
            cwd=REPO_ROOT,
            env=_cli_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_json_format(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "lint",
                "--format",
                "json",
                "src/repro/analysis",
            ],
            cwd=REPO_ROOT,
            env=_cli_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        data = json.loads(proc.stdout)
        assert data["findings"] == []
        assert data["files_scanned"] >= 10

    def test_cli_rules_listing(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--rules"],
            cwd=REPO_ROOT,
            env=_cli_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        listed = [line.split(":")[0] for line in proc.stdout.splitlines()]
        heads = [entry.split(" ")[0] for entry in listed]
        assert heads == sorted(heads)
        assert any(entry.startswith("DET001 [src/repro]") for entry in listed)
