"""Tests for the audio substrate: synthesis, features, encoder, difficulty."""

import numpy as np
import pytest

from repro.audio.difficulty import (
    difficulty_from_snr,
    measure_difficulty,
    measure_token_snr,
)
from repro.audio.encoder import AudioEncoder, EncoderConfig, encoder_preset
from repro.audio.features import (
    LogMelConfig,
    frame_signal,
    hz_to_mel,
    log_mel_spectrogram,
    mel_filterbank,
    mel_to_hz,
)
from repro.audio.signal import (
    SynthesisConfig,
    synthesize_utterance,
    word_to_phonemes,
)


class TestSynthesis:
    def test_phoneme_mapping_collapses_repeats(self):
        assert word_to_phonemes("tree") == ["t", "r", "e"]
        assert word_to_phonemes("") == ["a"]

    def test_waveform_shape_and_spans(self, utterance):
        audio = synthesize_utterance(utterance)
        assert audio.waveform.ndim == 1
        assert len(audio.token_spans) == utterance.num_tokens
        # spans tile the waveform without gaps
        cursor = 0
        for start, end in audio.token_spans:
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == len(audio.waveform)

    def test_waveform_bounded(self, utterance):
        audio = synthesize_utterance(utterance)
        assert np.max(np.abs(audio.waveform)) <= 1.0

    def test_deterministic(self, utterance):
        a = synthesize_utterance(utterance)
        b = synthesize_utterance(utterance)
        np.testing.assert_array_equal(a.waveform, b.waveform)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(sample_rate=4000)
        with pytest.raises(ValueError):
            SynthesisConfig(phoneme_duration_s=0.0)


class TestFeatures:
    def test_mel_scale_roundtrip(self):
        freqs = np.array([100.0, 1000.0, 4000.0])
        np.testing.assert_allclose(mel_to_hz(hz_to_mel(freqs)), freqs, rtol=1e-9)

    def test_filterbank_shape(self):
        config = LogMelConfig()
        bank = mel_filterbank(config)
        assert bank.shape == (config.n_mels, config.n_fft // 2 + 1)
        assert np.all(bank >= 0.0)
        assert bank.sum() > 0

    def test_framing(self):
        config = LogMelConfig(n_fft=400, hop_length=160)
        frames = frame_signal(np.zeros(1600), config)
        assert frames.shape[1] == 400
        assert frames.shape[0] == 1 + (1600 - 400) // 160

    def test_short_signal_padded(self):
        config = LogMelConfig()
        frames = frame_signal(np.zeros(10), config)
        assert frames.shape[0] == 1

    def test_spectrogram_shape(self, utterance):
        audio = synthesize_utterance(utterance)
        config = LogMelConfig()
        features = log_mel_spectrogram(audio.waveform, config)
        assert features.shape[1] == config.n_mels
        assert features.shape[0] > 0
        assert np.all(np.isfinite(features))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LogMelConfig(n_fft=0)
        with pytest.raises(ValueError):
            LogMelConfig(fmin=9000.0, fmax=100.0)


class TestEncoder:
    def test_output_shape(self, utterance):
        audio = synthesize_utterance(utterance)
        encoder = AudioEncoder()
        features = log_mel_spectrogram(audio.waveform)
        embeddings = encoder.encode(features)
        assert embeddings.shape[1] == encoder.config.output_dim
        assert embeddings.shape[0] >= 1

    def test_downsampling(self, utterance):
        audio = synthesize_utterance(utterance)
        encoder = AudioEncoder()
        features = log_mel_spectrogram(audio.waveform)
        embeddings = encoder.encode(features)
        assert embeddings.shape[0] < features.shape[0]

    def test_param_count_positive_and_ordered(self):
        tiny = AudioEncoder(encoder_preset("tiny")).param_count()
        medium = AudioEncoder(encoder_preset("medium")).param_count()
        assert 0 < tiny < medium

    def test_rejects_wrong_feature_dim(self):
        encoder = AudioEncoder()
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((10, encoder.config.n_mels + 1)))

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            encoder_preset("giant")

    def test_deterministic_weights(self, utterance):
        audio = synthesize_utterance(utterance)
        features = log_mel_spectrogram(audio.waveform)
        a = AudioEncoder().encode(features)
        b = AudioEncoder().encode(features)
        np.testing.assert_array_equal(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(conv_channels=())


class TestDifficulty:
    def test_snr_inversion_anchors(self):
        assert difficulty_from_snr(25.0) == pytest.approx(0.0)
        assert difficulty_from_snr(-3.0) == pytest.approx(1.0)

    def test_measured_difficulty_tracks_profile(self, clean_dataset):
        """The audio loop closes: measured difficulty ≈ generating profile."""
        utterance = clean_dataset[1]
        audio = synthesize_utterance(utterance)
        measured = measure_difficulty(audio)
        assert len(measured) == utterance.num_tokens
        errors = [
            abs(m - d) for m, d in zip(measured, utterance.difficulty, strict=True)
        ]
        assert sum(errors) / len(errors) < 0.12

    def test_snr_per_token(self, utterance):
        audio = synthesize_utterance(utterance)
        snrs = measure_token_snr(audio)
        assert len(snrs) == utterance.num_tokens
        assert all(-15.0 < snr < 40.0 for snr in snrs)
