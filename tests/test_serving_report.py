"""ServeReport edge cases: empty traces, lone requests, total rejection.

The percentile/utilisation paths of :mod:`repro.serving.report` divide by
request counts and simulated spans; these tests pin the degenerate corners
(no records at all, a single completed record, every record rejected) and
the per-device spec/utilisation rows added with heterogeneous clusters.
"""

from __future__ import annotations

import pytest

from repro.data.corpus import Utterance
from repro.serving.report import ServeReport
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    RequestRecord,
    ServeRequest,
)
from repro.serving.scheduler import ScheduleStats


def _stats(**overrides) -> ScheduleStats:
    defaults = dict(
        sim_end_ms=0.0,
        device_busy_ms=0.0,
        batches=0,
        rounds=0,
        peak_queue_depth=0,
        rejected=0,
        devices=1,
        per_device_busy_ms=(0.0,),
        device_speeds=(1.0,),
        device_roles=("any",),
        draft_share=None,
    )
    defaults.update(overrides)
    return ScheduleStats(**defaults)


def _record(index: int, status: str, finish_ms: float | None = None) -> RequestRecord:
    utterance = Utterance(
        utterance_id=f"utt-{index}",
        speaker_id="spk",
        words=("hello", "world"),
        tokens=(3, 4),
        duration_s=1.0,
        difficulty=(0.1, 0.1),
        split="test-clean",
    )
    record = RequestRecord(
        request=ServeRequest(
            request_id=f"req-{index}",
            index=index,
            utterance=utterance,
            arrival_ms=float(index * 10),
        )
    )
    record.status = status
    if status == STATUS_COMPLETED:
        record.service_start_ms = record.request.arrival_ms + 5.0
        record.first_token_ms = record.service_start_ms + 20.0
        record.finish_ms = finish_ms if finish_ms is not None else 200.0
        record.tokens = [3, 4]
        record.decode_ms = 50.0
    return record


class TestEmptyTrace:
    def test_report_from_no_records(self):
        report = ServeReport.from_records("spec", [], _stats(), 3000.0, 2.0)
        assert report.num_requests == 0
        assert report.completed == 0 and report.rejected == 0
        assert report.goodput_rps == 0.0 and report.goodput_ratio == 0.0
        assert report.completion is None
        assert report.ttft is None
        assert report.decode is None

    def test_empty_render_and_dict(self):
        report = ServeReport.from_records("spec", [], _stats(), 3000.0, 2.0)
        text = report.render()
        assert "(no completed requests)" in text
        payload = report.to_dict()
        assert payload["latency_ms"]["completion"] is None
        assert payload["device_utilisation"] == 0.0
        assert payload["per_device"] == [
            {
                "device": "dev0",
                "speed": 1.0,
                "role": "any",
                "busy_ms": 0.0,
                "utilisation": 0.0,
            }
        ]
        assert payload["draft_share"] is None


class TestSingleRequest:
    def test_percentiles_collapse_to_the_one_value(self):
        stats = _stats(
            sim_end_ms=200.0,
            device_busy_ms=120.0,
            batches=3,
            rounds=3,
            per_device_busy_ms=(120.0,),
        )
        report = ServeReport.from_records(
            "spec", [_record(0, STATUS_COMPLETED)], stats, 3000.0, 2.0
        )
        assert report.num_requests == 1 and report.completed == 1
        assert report.met_deadline == 1
        assert report.goodput_ratio == 1.0
        assert report.completion.p50 == report.completion.p99 == 200.0
        assert report.decode.mean == 50.0
        assert report.goodput_rps == pytest.approx(1 / 0.2)

    def test_missed_deadline_counts_against_goodput(self):
        stats = _stats(sim_end_ms=9000.0, per_device_busy_ms=(100.0,))
        report = ServeReport.from_records(
            "spec",
            [_record(0, STATUS_COMPLETED, finish_ms=8000.0)],
            stats,
            3000.0,
            2.0,
        )
        assert report.completed == 1
        assert report.met_deadline == 0
        assert report.goodput_ratio == 0.0


class TestAllRejected:
    def test_all_rejected_report(self):
        records = [_record(i, STATUS_REJECTED) for i in range(4)]
        report = ServeReport.from_records("spec", records, _stats(), 3000.0, 2.0)
        assert report.num_requests == 4
        assert report.rejected == 4 and report.completed == 0
        assert report.goodput_ratio == 0.0
        assert report.completion is None
        text = report.render()
        assert "rejected 4" in text
        assert "(no completed requests)" in text


class TestPerDeviceRows:
    def test_heterogeneous_rows(self):
        stats = _stats(
            sim_end_ms=1000.0,
            devices=3,
            device_busy_ms=900.0,
            per_device_busy_ms=(500.0, 300.0, 100.0),
            device_speeds=(1.0, 0.5, 0.5),
            device_roles=("target", "draft", "draft"),
            draft_share=0.25,
        )
        report = ServeReport.from_records(
            "spec", [_record(0, STATUS_COMPLETED)], stats, 3000.0, 2.0
        )
        rows = report.per_device_rows()
        assert [row["role"] for row in rows] == ["target", "draft", "draft"]
        assert [row["speed"] for row in rows] == [1.0, 0.5, 0.5]
        assert rows[0]["utilisation"] == pytest.approx(0.5)
        text = report.render()
        assert "draft share 25.0%" in text
        assert "dev1" in text and "draft" in text
        # heterogeneous speed mix is summarised on the cluster line
        assert report.cluster_label() == "3 device(s) [1x1,2x0.5]"
        assert "[1x1,2x0.5]" in text
        payload = report.to_dict()
        assert payload["draft_share"] == 0.25
        assert len(payload["per_device"]) == 3

    def test_legacy_stats_default_speed_and_role(self):
        # stats recorded before the heterogeneous fields existed
        stats = _stats(
            sim_end_ms=100.0,
            per_device_busy_ms=(50.0,),
            device_speeds=(),
            device_roles=(),
        )
        report = ServeReport.from_records("spec", [], stats, 3000.0, 2.0)
        (row,) = report.per_device_rows()
        assert row["speed"] == 1.0
        assert row["role"] == "any"
        assert row["utilisation"] == pytest.approx(0.5)
        assert report.cluster_label() == "1 device(s)"  # no speed-mix suffix
