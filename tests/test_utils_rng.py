"""Tests for repro.utils.rng."""

from repro.utils.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_scope_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_children_are_independent_of_draw_order(self):
        parent = RngStream(42)
        child_before = parent.child("x").uniform()
        parent.uniform()  # consume from parent
        child_after = RngStream(42).child("x").uniform()
        assert child_before == child_after

    def test_distinct_children_differ(self):
        parent = RngStream(42)
        assert parent.child("a").uniform() != parent.child("b").uniform()

    def test_integers_within_bounds(self):
        stream = RngStream(7)
        values = [stream.integers(3, 9) for _ in range(100)]
        assert all(3 <= v < 9 for v in values)

    def test_choice_with_probabilities(self):
        stream = RngStream(7)
        picks = {stream.choice(["x", "y"], p=[1.0, 0.0]) for _ in range(10)}
        assert picks == {"x"}

    def test_choice_uniform(self):
        stream = RngStream(7)
        picks = {stream.choice(["x", "y", "z"]) for _ in range(60)}
        assert picks == {"x", "y", "z"}

    def test_shuffle_permutes_in_place(self):
        stream = RngStream(3)
        items = list(range(20))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely with 20 elements

    def test_geometric_positive(self):
        stream = RngStream(5)
        assert all(stream.geometric(0.5) >= 1 for _ in range(50))

    def test_numpy_generator_exposed(self):
        stream = RngStream(9)
        assert stream.numpy.standard_normal(4).shape == (4,)
