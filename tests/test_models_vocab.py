"""Tests for repro.models.vocab."""

import pytest

from repro.models.vocab import Vocabulary, build_default_vocabulary, phonetic_signature


class TestVocabulary:
    def test_specials_reserved(self, vocab):
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3
        for token_id in range(4):
            assert vocab.is_special(token_id)

    def test_roundtrip(self, vocab):
        words = ["the", "old", "house"]
        ids = vocab.encode_words(words)
        assert vocab.decode_ids(ids) == words

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.token_to_id("zzzznotaword") == vocab.unk_id

    def test_decode_skips_specials(self, vocab):
        ids = [vocab.bos_id] + vocab.encode_words(["the"]) + [vocab.eos_id]
        assert vocab.decode_ids(ids) == ["the"]
        assert len(vocab.decode_ids(ids, skip_special=False)) == 3

    def test_id_range_checked(self, vocab):
        with pytest.raises(IndexError):
            vocab.id_to_token(vocab.size)

    def test_duplicate_words_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(words=("a", "a"))

    def test_reserved_words_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(words=("<s>",))

    def test_confusion_pools_nonempty_and_exclude_self(self, vocab):
        for word in ["night", "the", "house", "walked"]:
            token_id = vocab.token_to_id(word)
            pool = vocab.confusion_pool(token_id)
            assert len(pool) >= 3
            assert token_id not in pool

    def test_confusion_pool_empty_for_specials(self, vocab):
        assert vocab.confusion_pool(vocab.eos_id) == ()

    def test_regular_ids_excludes_specials(self, vocab):
        regular = vocab.regular_ids()
        assert len(regular) == vocab.size - 4
        assert all(not vocab.is_special(i) for i in regular)

    def test_default_vocabulary_size(self):
        vocab = build_default_vocabulary()
        assert vocab.size > 700


class TestPhoneticSignature:
    def test_deterministic(self):
        assert phonetic_signature("night") == phonetic_signature("night")

    def test_similar_words_share_signature(self):
        # Same consonant/vowel skeleton and length bucket.
        assert phonetic_signature("bat") == phonetic_signature("pat")

    def test_different_words_differ(self):
        assert phonetic_signature("a") != phonetic_signature("strength")

    def test_nonalpha_ignored(self):
        assert phonetic_signature("it's") == phonetic_signature("its")
