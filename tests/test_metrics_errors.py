"""Tests for the error-locality analysis (Observation 2)."""

import pytest

from repro.metrics.errors import (
    error_burstiness,
    error_indicators,
    error_run_lengths,
    expected_multi_token_run_share,
    multi_token_run_share,
)


class TestPrimitives:
    def test_burstiness_of_clustered_errors_positive(self):
        rows = [[0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]]
        assert error_burstiness(rows) > 0.3

    def test_burstiness_of_alternating_errors_negative(self):
        rows = [[1, 0, 1, 0, 1, 0, 1, 0]]
        assert error_burstiness(rows) < 0.0

    def test_burstiness_degenerate_cases(self):
        assert error_burstiness([]) == 0.0
        assert error_burstiness([[0, 0, 0]]) == 0.0
        assert error_burstiness([[1, 1, 1]]) == 0.0

    def test_run_lengths(self):
        rows = [[1, 1, 0, 1, 0, 0, 1, 1, 1]]
        assert error_run_lengths(rows) == {2: 1, 1: 1, 3: 1}

    def test_run_share(self):
        runs = {1: 6, 2: 2, 3: 2}
        assert multi_token_run_share(runs) == pytest.approx(0.4)
        assert multi_token_run_share({}) == 0.0

    def test_expected_share_validation(self):
        with pytest.raises(ValueError):
            expected_multi_token_run_share(1.5)


class TestObservation2OnSimulatedModels:
    def test_errors_cluster_in_simulated_asr(self, whisper_pair, vocab):
        """Observation 2: recognition errors concentrate in localized hard
        segments, so the error indicator autocorrelates positively and
        multi-token error runs exceed the independence baseline."""
        from repro.data.librisim import build_split

        draft, _ = whisper_pair
        dataset = build_split("test-other", vocab, seed=33, utterances=24)
        indicators = error_indicators(draft, dataset)
        total = sum(len(r) for r in indicators)
        errors = sum(sum(r) for r in indicators)
        error_rate = errors / total
        assert 0.05 < error_rate < 0.35  # sanity: noisy split, small model

        burstiness = error_burstiness(indicators)
        assert burstiness > 0.05  # clustered, not independent

        runs = error_run_lengths(indicators)
        measured = multi_token_run_share(runs)
        expected = expected_multi_token_run_share(error_rate)
        assert measured > expected  # more multi-token runs than chance
