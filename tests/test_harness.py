"""Tests for the harness: figures, methods registry, runner."""

import pytest

from repro.harness.figures import ascii_bars, ascii_table, format_value
from repro.harness.methods import STANDARD_METHODS, build_method, standard_methods
from repro.harness.paper_values import PAPER_VALUES, paper_notes
from repro.harness.runner import (
    ExperimentConfig,
    load_split,
    run_method,
    run_methods,
    shared_vocabulary,
)


class TestFigures:
    def test_format_value(self):
        assert format_value(123.456) == "123"
        assert format_value(12.34) == "12.3"
        assert format_value(1.234) == "1.23"
        assert format_value("x") == "x"

    def test_table_renders_all_rows(self):
        text = ascii_table(["a", "b"], [[1, 2], [3, 4]], title="t")
        assert "t" in text
        assert text.count("\n") == 4

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_bars(self):
        text = ascii_bars(["x", "yy"], [1.0, 2.0], width=10)
        assert "yy" in text
        assert "#" in text

    def test_bars_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bars(["x"], [1.0, 2.0])


class TestMethods:
    def test_all_standard_methods_build(self, whisper_pair):
        draft, target = whisper_pair
        methods = standard_methods(draft, target)
        assert list(methods) == list(STANDARD_METHODS)

    def test_spec_name_parsing(self, whisper_pair):
        draft, target = whisper_pair
        decoder = build_method("spec(16, 2)", draft, target)
        assert decoder.config.draft_len == 16
        assert decoder.config.beams == 2

    def test_unknown_method(self, whisper_pair):
        draft, target = whisper_pair
        with pytest.raises(KeyError):
            build_method("oracle-decode", draft, target)

    def test_fixed_tree_buildable(self, whisper_pair):
        draft, target = whisper_pair
        assert build_method("fixed-tree", draft, target).name == "fixed-tree"


class TestRunner:
    def test_load_split_cached(self):
        config = ExperimentConfig(seed=1, utterances=3)
        a = load_split("dev-clean", config)
        b = load_split("dev-clean", config)
        assert a is b

    def test_run_method_collects_everything(self, whisper_pair):
        from repro.decoding.autoregressive import AutoregressiveDecoder

        _, target = whisper_pair
        dataset = load_split("dev-clean", ExperimentConfig(seed=1, utterances=3))
        run = run_method(AutoregressiveDecoder(target), dataset)
        assert len(run.results) == 3
        assert run.breakdown.total_ms > 0

    def test_run_methods_lossless_check_passes(self, whisper_pair):
        draft, target = whisper_pair
        dataset = load_split("dev-clean", ExperimentConfig(seed=1, utterances=3))
        from repro.decoding.autoregressive import AutoregressiveDecoder
        from repro.decoding.speculative import SpeculativeDecoder

        runs = run_methods(
            {
                "ar": AutoregressiveDecoder(target),
                "spec": SpeculativeDecoder(draft, target),
            },
            dataset,
        )
        assert set(runs) == {"ar", "spec"}

    def test_run_methods_detects_divergence(self, whisper_pair):
        """A decoder producing different tokens trips the lossless check."""
        draft, target = whisper_pair
        dataset = load_split("dev-clean", ExperimentConfig(seed=1, utterances=2))
        from repro.decoding.autoregressive import AutoregressiveDecoder

        class Corrupting:
            name = "corrupting"

            def decode(self, unit):
                result = AutoregressiveDecoder(target).decode(unit)
                result.tokens = result.tokens[:-1]
                return result

        with pytest.raises(AssertionError):
            run_methods(
                {"ar": AutoregressiveDecoder(target), "bad": Corrupting()},
                dataset,
            )

    def test_shared_vocabulary_singleton(self):
        assert shared_vocabulary() is shared_vocabulary()


class TestPaperValues:
    def test_every_experiment_has_notes(self):
        for exp_id in (
            "fig01",
            "fig05a",
            "fig05b",
            "fig06a",
            "fig06b",
            "fig07",
            "fig11",
            "fig12",
            "fig13a",
            "fig13b",
            "tab01",
            "tab02",
        ):
            assert exp_id in PAPER_VALUES
            assert paper_notes(exp_id)
