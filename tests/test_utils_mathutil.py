"""Tests for repro.utils.mathutil."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathutil import clamp, mean, percentile, sigmoid, softmax


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_and_above(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert sigmoid(2.0) == pytest.approx(1.0 - sigmoid(-2.0))

    def test_extreme_values_stable(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax([1.0, 2.0, 3.0])
        assert sum(probs) == pytest.approx(1.0)

    def test_monotone_in_scores(self):
        probs = softmax([1.0, 2.0, 3.0])
        assert probs[0] < probs[1] < probs[2]

    def test_temperature_sharpens(self):
        cold = softmax([1.0, 2.0], temperature=0.1)
        warm = softmax([1.0, 2.0], temperature=2.0)
        assert cold[1] > warm[1]

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            softmax([1.0], temperature=0.0)

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=10))
    def test_always_a_distribution(self, scores):
        probs = softmax(scores)
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert math.isclose(sum(probs), 1.0, rel_tol=1e-9)


class TestAggregates:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_values(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == pytest.approx(3.0)

    def test_percentile_empty(self):
        assert percentile([], 90) == 0.0
