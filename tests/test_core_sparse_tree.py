"""Tests for two-pass sparse-tree prediction (TSP)."""

from repro.core.config import SpecASRConfig
from repro.core.recycling import DraftedToken, RecycledSuffix
from repro.core.sparse_tree import (
    SparseBranch,
    assemble_tree,
    build_sparse_tree_round,
)
from repro.models.latency import SimClock

from tests.fakes import EOS, FakeUnit, ScriptedModel


def session_for(stream, probs=None, overrides=None):
    model = ScriptedModel(
        stream=stream, probs=probs or {}, overrides=overrides or {}, name="draft"
    )
    session = model.session(FakeUnit(), SimClock())
    session.prefill()
    return session


class TestTrunkPass:
    def test_confident_trunk_has_no_branches(self):
        session = session_for([5, 6, 7, 8, EOS])
        config = SpecASRConfig(sparse_tree=True)
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        assert [t.token for t in drafted.trunk] == [5, 6, 7, 8, EOS]
        assert drafted.branches == []

    def test_trunk_runs_through_uncertainty(self):
        session = session_for([5, 6, 7, 8, 9, 10, EOS], probs={2: 0.1})
        config = SpecASRConfig(sparse_tree=True, max_draft_len=6)
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        assert len(drafted.trunk) == 6  # not truncated at offset 2

    def test_branches_placed_at_uncertain_points(self):
        session = session_for([5, 6, 7, 8, 9, 10, 11, EOS], probs={2: 0.1})
        config = SpecASRConfig(sparse_tree=True, max_draft_len=7)
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        assert len(drafted.branches) == 1
        branch = drafted.branches[0]
        assert branch.trunk_offset == 2
        # branch root token: scripted runner-up of trunk token 7
        assert branch.items[0].token == 107

    def test_max_branches_respected(self):
        probs = {1: 0.1, 3: 0.15, 5: 0.2}
        session = session_for([5, 6, 7, 8, 9, 10, 11, 12, EOS], probs=probs)
        config = SpecASRConfig(sparse_tree=True, max_draft_len=8, max_branches=2)
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        assert len(drafted.branches) == 2
        # most uncertain points chosen first
        offsets = {b.trunk_offset for b in drafted.branches}
        assert offsets == {1, 3}


class TestBranchMerging:
    def test_branch_merges_back_to_trunk(self):
        """The branch's continuation re-anchors to the trunk (position-based
        stream), so the first extension token matches the trunk and the
        branch is concatenated instead of extended."""
        session = session_for([5, 6, 7, 8, 9, 10, 11, EOS], probs={2: 0.1})
        config = SpecASRConfig(sparse_tree=True, max_draft_len=7)
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        branch = drafted.branches[0]
        assert branch.merged
        assert branch.merge_at is not None
        assert branch.merged_suffix  # recycled trunk tokens appended
        assert all(t.recycled for t in branch.merged_suffix)

    def test_merge_window_caps_suffix(self):
        session = session_for([5, 6, 7, 8, 9, 10, 11, 12, 13, 14, EOS], probs={1: 0.1})
        config = SpecASRConfig(
            sparse_tree=True, max_draft_len=10, merge_verify_window=3
        )
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        branch = drafted.branches[0]
        assert branch.merged
        assert len(branch.merged_suffix) <= 3

    def test_unmergeable_branch_stops_at_cap(self):
        # Branch path diverges permanently: alternative 107 then scripted
        # overrides keep emitting tokens far from the trunk.
        stream = [5, 6, 7, 8, 9, 10, 11, EOS]
        overrides = {}
        # any prefix starting (5, 6, 107, ...) yields 99x tokens
        overrides[(5, 6, 107)] = 990
        overrides[(5, 6, 107, 990)] = 991
        overrides[(5, 6, 107, 990, 991)] = 992
        overrides[(5, 6, 107, 990, 991, 992)] = 993
        session = session_for(stream, probs={2: 0.1}, overrides=overrides)
        config = SpecASRConfig(
            sparse_tree=True, max_draft_len=7, branch_extension_cap=2
        )
        drafted = build_sparse_tree_round(session, [], None, config, EOS)
        branch = drafted.branches[0]
        assert not branch.merged
        assert len(branch.items) - 1 <= 2  # alt + capped extension


class TestRecyclingIntegration:
    def test_trunk_reuses_suffix(self):
        stream = [5, 6, 7, 8, 9, 10, EOS]
        session = session_for(stream)
        suffix = RecycledSuffix(
            items=[DraftedToken(6, 0.9), DraftedToken(7, 0.9), DraftedToken(8, 0.9)]
        )
        config = SpecASRConfig(sparse_tree=True, max_draft_len=5)
        drafted = build_sparse_tree_round(session, [5], suffix, config, EOS)
        assert drafted.recycled_tokens >= 2
        trunk_tokens = [t.token for t in drafted.trunk]
        assert trunk_tokens[:3] == [6, 7, 8]


class TestAssembleTree:
    def test_chain_only(self):
        items = [DraftedToken(1, 0.9), DraftedToken(2, 0.8)]
        tree, info = assemble_tree(items)
        assert len(tree) == 2
        assert [t.token for t in info] == [1, 2]
        assert tree.path_tokens(1) == [1, 2]

    def test_alt_branch_roots(self):
        main = [DraftedToken(1, 0.9)]
        alt = [DraftedToken(9, 0.5)]
        tree, info = assemble_tree(main, alt)
        assert len(tree.roots()) == 2

    def test_branch_attachment(self):
        trunk = [DraftedToken(1, 0.9), DraftedToken(2, 0.2), DraftedToken(3, 0.9)]
        branch = SparseBranch(trunk_offset=1, items=[DraftedToken(8, 0.3)])
        tree, info = assemble_tree(trunk, None, [branch])
        # branch node hangs off trunk node 0
        branch_node = len(trunk)
        assert tree.nodes[branch_node].parent == 0
        assert tree.path_tokens(branch_node) == [1, 8]

    def test_branch_at_offset_zero_is_root(self):
        trunk = [DraftedToken(1, 0.2)]
        branch = SparseBranch(trunk_offset=0, items=[DraftedToken(8, 0.3)])
        tree, _info = assemble_tree(trunk, None, [branch])
        assert len(tree.roots()) == 2

    def test_info_aligned_with_nodes(self):
        trunk = [DraftedToken(1, 0.9), DraftedToken(2, 0.2)]
        branch = SparseBranch(
            trunk_offset=1,
            items=[DraftedToken(8, 0.3)],
            merged_suffix=[DraftedToken(3, 0.9, (), True)],
        )
        tree, info = assemble_tree(trunk, None, [branch])
        assert len(info) == len(tree)
        for node_index, node in enumerate(tree.nodes):
            assert info[node_index].token == node.token
            assert info[node_index].recycled == node.recycled
