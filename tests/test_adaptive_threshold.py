"""Tests for the online threshold controller and its engine integration."""

import pytest

from repro.core.adaptive_threshold import (
    ThresholdController,
    ThresholdControllerConfig,
)
from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.decoding.autoregressive import AutoregressiveDecoder


class TestControllerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdControllerConfig(initial=0.1, minimum=0.2, maximum=0.6)
        with pytest.raises(ValueError):
            ThresholdControllerConfig(step_up=-0.1)


class TestController:
    def test_starts_at_initial(self):
        controller = ThresholdController()
        assert controller.value == pytest.approx(0.4)

    def test_tightens_after_wasteful_rejection(self):
        controller = ThresholdController()
        before = controller.value
        controller.observe_round(truncated=False, submitted=20, accepted=5)
        assert controller.value > before
        assert controller.updates_up == 1

    def test_loosens_after_overeager_truncation(self):
        controller = ThresholdController()
        before = controller.value
        controller.observe_round(truncated=True, submitted=6, accepted=6)
        assert controller.value < before
        assert controller.updates_down == 1

    def test_neutral_round_unchanged(self):
        controller = ThresholdController()
        before = controller.value
        # rejection at the very last token: threshold did its job
        controller.observe_round(truncated=True, submitted=10, accepted=9)
        assert controller.value == pytest.approx(before)

    def test_bounded(self):
        config = ThresholdControllerConfig(
            initial=0.4, minimum=0.3, maximum=0.5, step_up=0.2, step_down=0.2
        )
        controller = ThresholdController(config)
        for _ in range(10):
            controller.observe_round(truncated=False, submitted=20, accepted=0)
        assert controller.value == pytest.approx(0.5)
        for _ in range(10):
            controller.observe_round(truncated=True, submitted=5, accepted=5)
        assert controller.value == pytest.approx(0.3)

    def test_inconsistent_round_rejected(self):
        controller = ThresholdController()
        with pytest.raises(ValueError):
            controller.observe_round(truncated=False, submitted=3, accepted=5)


class TestEngineIntegration:
    def test_adaptive_engine_still_lossless(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        ar = AutoregressiveDecoder(target)
        engine = SpecASREngine(draft, target, SpecASRConfig(adaptive_threshold=True))
        for utterance in clean_dataset:
            assert engine.decode(utterance).tokens == ar.decode(utterance).tokens

    def test_adaptive_competitive_with_fixed(self, whisper_pair, clean_dataset):
        """The controller should stay within a modest factor of the tuned
        fixed threshold — it starts at the optimum and must not wander off."""
        draft, target = whisper_pair
        fixed = SpecASREngine(draft, target, SpecASRConfig())
        adaptive = SpecASREngine(draft, target, SpecASRConfig(adaptive_threshold=True))
        fixed_ms = sum(fixed.decode(u).total_ms for u in clean_dataset)
        adaptive_ms = sum(adaptive.decode(u).total_ms for u in clean_dataset)
        assert adaptive_ms < fixed_ms * 1.15

    def test_adaptive_helps_badly_tuned_start(self, whisper_pair, clean_dataset):
        """Starting from a clearly-too-high threshold, adaptation should
        recover part of the loss vs staying fixed at that bad value."""
        draft, target = whisper_pair
        bad_fixed = SpecASREngine(draft, target, SpecASRConfig(threshold=0.65))
        bad_adaptive = SpecASREngine(
            draft, target, SpecASRConfig(threshold=0.65, adaptive_threshold=True)
        )
        fixed_ms = sum(bad_fixed.decode(u).total_ms for u in clean_dataset)
        adaptive_ms = sum(bad_adaptive.decode(u).total_ms for u in clean_dataset)
        assert adaptive_ms <= fixed_ms * 1.02
