"""Tests for lossless sequence/tree verification."""

import pytest

from repro.decoding.token_tree import ROOT_PARENT, TokenTree
from repro.decoding.verifier import verify_sequence, verify_tree
from repro.models.latency import SimClock

from tests.fakes import EOS, FakeUnit, ScriptedModel


def target_session(stream):
    model = ScriptedModel(stream=stream, name="target")
    session = model.session(FakeUnit(), SimClock())
    session.prefill()
    return session


class TestVerifySequence:
    def test_full_acceptance_returns_bonus(self):
        session = target_session([5, 6, 7, 8, EOS])
        outcome = verify_sequence(session, [], [5, 6, 7])
        assert outcome.accepted == 3
        assert outcome.correction == 8  # bonus token after full accept

    def test_rejection_at_first_mismatch(self):
        session = target_session([5, 6, 7, 8, EOS])
        outcome = verify_sequence(session, [], [5, 9, 7])
        assert outcome.accepted == 1
        assert outcome.correction == 6

    def test_rejection_at_position_zero(self):
        session = target_session([5, 6, EOS])
        outcome = verify_sequence(session, [], [9])
        assert outcome.accepted == 0
        assert outcome.correction == 5

    def test_prefix_offsets_respected(self):
        session = target_session([5, 6, 7, 8, EOS])
        outcome = verify_sequence(session, [5, 6], [7, 8])
        assert outcome.accepted == 2
        assert outcome.correction == EOS

    def test_empty_draft_rejected(self):
        session = target_session([5, EOS])
        with pytest.raises(ValueError):
            verify_sequence(session, [], [])

    def test_billing_is_draft_length(self):
        model = ScriptedModel(stream=[5, 6, 7, EOS], name="target")
        clock = SimClock()
        session = model.session(FakeUnit(), clock)
        session.prefill()
        verify_sequence(session, [], [5, 6, 7])
        assert clock.tokens_for_kind("verify") == 3


class TestVerifyTree:
    def test_picks_deepest_accepted_branch(self):
        session = target_session([5, 6, 7, EOS])
        tree = TokenTree()
        a = tree.add(5)
        tree.add_chain([9], parent=a)  # wrong branch
        good = tree.add_chain([6, 7], parent=a)  # right branch
        outcome = verify_tree(session, [], tree)
        assert outcome.accepted_tokens == [5, 6, 7]
        assert outcome.correction == EOS
        assert outcome.accepted_node == good[-1]

    def test_rejects_all_roots(self):
        session = target_session([5, EOS])
        tree = TokenTree()
        tree.add(8)
        tree.add(9)
        outcome = verify_tree(session, [], tree)
        assert outcome.accepted_tokens == []
        assert outcome.correction == 5
        assert outcome.accepted_node == ROOT_PARENT

    def test_child_of_rejected_parent_not_accepted(self):
        """A node matching the target is still rejected if its parent was —
        acceptance must follow root-to-leaf paths only."""
        session = target_session([5, 6, EOS])
        tree = TokenTree()
        bad = tree.add(9)  # wrong root
        tree.add(6, parent=bad)  # would match position 1, but unreachable
        outcome = verify_tree(session, [], tree)
        assert outcome.accepted_tokens == []
        assert outcome.correction == 5

    def test_equivalent_to_sequence_verification_for_chain(self):
        stream = [5, 6, 7, 8, EOS]
        chain = [5, 6, 9]
        seq_outcome = verify_sequence(target_session(stream), [], chain)
        tree = TokenTree()
        tree.add_chain(chain)
        tree_outcome = verify_tree(target_session(stream), [], tree)
        assert tree_outcome.accepted_tokens == chain[: seq_outcome.accepted]
        assert tree_outcome.correction == seq_outcome.correction

    def test_billing_defaults_to_node_count(self):
        model = ScriptedModel(stream=[5, 6, EOS], name="target")
        clock = SimClock()
        session = model.session(FakeUnit(), clock)
        session.prefill()
        tree = TokenTree.from_sequences([[5, 6], [5, 9]])
        verify_tree(session, [], tree)
        assert clock.tokens_for_kind("verify") == len(tree)

    def test_empty_tree_rejected(self):
        session = target_session([5, EOS])
        with pytest.raises(ValueError):
            verify_tree(session, [], TokenTree())

    def test_accepted_set_consistent(self):
        session = target_session([5, 6, 7, EOS])
        tree = TokenTree.from_sequences([[5, 6, 7], [5, 9]])
        outcome = verify_tree(session, [], tree)
        for node in outcome.accepted_set:
            path = tree.path_tokens(node)
            assert path == [5, 6, 7][: len(path)]
