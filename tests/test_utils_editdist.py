"""Tests for repro.utils.editdist (unit + hypothesis properties)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.editdist import AlignmentOp, align, edit_distance, wer_counts

tokens = st.lists(st.integers(min_value=0, max_value=5), max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_empty_cases(self):
        assert edit_distance([], []) == 0
        assert edit_distance([1, 2], []) == 2
        assert edit_distance([], [1, 2]) == 2

    def test_substitution(self):
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion_and_deletion(self):
        assert edit_distance([1, 2, 3], [1, 2]) == 1
        assert edit_distance([1, 2], [1, 2, 3]) == 1

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    @given(tokens, tokens)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(tokens)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(tokens, tokens, tokens)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(tokens, tokens)
    def test_bounded_by_longer_sequence(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))
        assert edit_distance(a, b) >= abs(len(a) - len(b))


class TestAlign:
    def test_alignment_cost_matches_distance(self):
        ref, hyp = [1, 2, 3, 4], [1, 9, 4]
        ops = align(ref, hyp)
        cost = sum(1 for p in ops if p.op is not AlignmentOp.MATCH)
        assert cost == edit_distance(ref, hyp)

    def test_alignment_covers_both_sequences(self):
        ref, hyp = [1, 2, 3], [4, 5]
        ops = align(ref, hyp)
        ref_indices = [p.ref_index for p in ops if p.ref_index is not None]
        hyp_indices = [p.hyp_index for p in ops if p.hyp_index is not None]
        assert ref_indices == list(range(len(ref)))
        assert hyp_indices == list(range(len(hyp)))

    @given(tokens, tokens)
    def test_alignment_cost_always_matches_distance(self, ref, hyp):
        ops = align(ref, hyp)
        cost = sum(1 for p in ops if p.op is not AlignmentOp.MATCH)
        assert cost == edit_distance(ref, hyp)

    @given(tokens, tokens)
    def test_alignment_monotone(self, ref, hyp):
        ops = align(ref, hyp)
        last_ref = last_hyp = -1
        for pair in ops:
            if pair.ref_index is not None:
                assert pair.ref_index > last_ref
                last_ref = pair.ref_index
            if pair.hyp_index is not None:
                assert pair.hyp_index > last_hyp
                last_hyp = pair.hyp_index


class TestWerCounts:
    def test_perfect(self):
        assert wer_counts([1, 2], [1, 2]) == (0, 0, 0, 2)

    def test_substitution_only(self):
        subs, ins, dels, n = wer_counts([1, 2, 3], [1, 9, 3])
        assert (subs, ins, dels, n) == (1, 0, 0, 3)

    def test_mixed(self):
        subs, ins, dels, n = wer_counts([1, 2, 3], [9, 2, 3, 4])
        assert subs + ins + dels == edit_distance([1, 2, 3], [9, 2, 3, 4])
        assert n == 3
