"""Tests for the emission oracle (repro.models.acoustic)."""

import pytest

from repro.models.acoustic import EmissionOracle, OracleParams


def make_oracle(utterance, vocab, capacity=0.8, seed=1, params=None):
    return EmissionOracle("m", seed, capacity, utterance, vocab, params)


class TestOracleBasics:
    def test_deterministic(self, utterance, vocab):
        a = make_oracle(utterance, vocab).step(0)
        b = make_oracle(utterance, vocab).step(0)
        assert a == b

    def test_different_models_can_differ(self, clean_dataset, vocab):
        for utt in clean_dataset:
            streams = [make_oracle(utt, vocab, seed=s).greedy_stream() for s in (1, 2)]
            if streams[0] != streams[1]:
                return
        pytest.skip("no model disagreement on tiny sample")

    def test_topk_is_sorted_distribution(self, utterance, vocab):
        step = make_oracle(utterance, vocab).step(0)
        probs = [p for _, p in step.topk]
        assert probs == sorted(probs, reverse=True)
        assert 0.0 < step.top_prob <= 1.0
        assert sum(probs) <= 1.0 + 1e-9

    def test_topk_tokens_unique(self, utterance, vocab):
        step = make_oracle(utterance, vocab).step(3)
        tokens = [t for t, _ in step.topk]
        assert len(tokens) == len(set(tokens))

    def test_rank_of(self, utterance, vocab):
        step = make_oracle(utterance, vocab).step(0)
        assert step.rank_of(step.token) == 1
        assert step.rank_of(-1) is None

    def test_eos_at_end(self, utterance, vocab):
        oracle = make_oracle(utterance, vocab)
        stream = oracle.greedy_stream()
        assert stream[-1] == vocab.eos_id
        assert len(stream) == utterance.num_tokens + 1

    def test_eos_region_confident(self, utterance, vocab):
        oracle = make_oracle(utterance, vocab)
        step = oracle.step(utterance.num_tokens)
        assert step.token == vocab.eos_id
        assert step.top_prob > 0.9

    def test_negative_position_rejected(self, utterance, vocab):
        with pytest.raises(ValueError):
            make_oracle(utterance, vocab).step(-1)

    def test_invalid_capacity_rejected(self, utterance, vocab):
        with pytest.raises(ValueError):
            make_oracle(utterance, vocab, capacity=0.0)
        with pytest.raises(ValueError):
            make_oracle(utterance, vocab, capacity=1.5)


class TestCapacityEffect:
    def test_higher_capacity_fewer_errors(self, clean_dataset, vocab):
        """Across a corpus, a higher-capacity oracle matches the reference
        more often — the WER-vs-scale law of Fig. 5a."""
        errors = {0.70: 0, 0.95: 0}
        total = 0
        for utt in clean_dataset:
            for capacity in errors:
                oracle = make_oracle(utt, vocab, capacity=capacity, seed=9)
                stream = oracle.greedy_stream()[:-1]
                errors[capacity] += sum(
                    1
                    for got, ref in zip(stream, utt.tokens, strict=False)
                    if got != ref
                )
            total += utt.num_tokens
        assert errors[0.95] < errors[0.70]

    def test_confidence_higher_on_easy_positions(self, clean_dataset, vocab):
        easy_conf, hard_conf = [], []
        for utt in clean_dataset:
            oracle = make_oracle(utt, vocab)
            for pos, difficulty in enumerate(utt.difficulty):
                step = oracle.step(pos)
                if difficulty < 0.2:
                    easy_conf.append(step.top_prob)
                elif difficulty > 0.5:
                    hard_conf.append(step.top_prob)
        if not hard_conf:
            pytest.skip("no hard positions in tiny sample")
        assert sum(easy_conf) / len(easy_conf) > sum(hard_conf) / len(hard_conf)


class TestPerturbation:
    def test_perturbed_step_can_differ(self, utterance, vocab):
        oracle = make_oracle(utterance, vocab)
        anchored = oracle.step(2, perturb_level=0)
        perturbed = oracle.step(2, perturb_level=2, context_key=1234)
        # Same position, same audio: token may flip, distribution must exist.
        assert perturbed.topk
        assert anchored.position == perturbed.position

    def test_perturbation_ignores_context_at_level_zero(self, utterance, vocab):
        oracle = make_oracle(utterance, vocab)
        assert oracle.step(2, 0, 111) == oracle.step(2, 0, 222)

    def test_perturbation_context_sensitive(self, clean_dataset, vocab):
        for utt in clean_dataset:
            oracle = make_oracle(utt, vocab)
            for pos in range(utt.num_tokens):
                a = oracle.step(pos, 2, 111)
                b = oracle.step(pos, 2, 222)
                if a != b:
                    return
        pytest.skip("perturbation draw never flipped on tiny sample")

    def test_caching_consistency(self, utterance, vocab):
        oracle = make_oracle(utterance, vocab)
        first = oracle.step(1, 1, 42)
        second = oracle.step(1, 1, 42)
        assert first is second  # cached


class TestOracleParams:
    def test_model_noise_decreases_with_capacity(self):
        params = OracleParams()
        assert params.model_noise(0.95) < params.model_noise(0.70)

    def test_noise_scale_increases_with_difficulty(self):
        params = OracleParams()
        assert params.noise_scale(0.8) > params.noise_scale(0.1)
