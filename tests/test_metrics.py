"""Tests for the metrics package."""

import pytest

from repro.decoding.base import DecodeTrace, RoundStats
from repro.metrics.acceptance import (
    accept_at_topk,
    acceptance_histogram,
    collect_acceptance,
    rank_distribution_on_failure,
    suffix_alignment_curve,
)
from repro.metrics.latency_report import aggregate_latency
from repro.metrics.speedup import speedup_table
from repro.metrics.wer import corpus_wer, model_wer, wer


class TestWer:
    def test_perfect(self):
        assert wer([1, 2, 3], [1, 2, 3]) == 0.0

    def test_substitution(self):
        assert wer([1, 2, 3], [1, 9, 3]) == pytest.approx(1 / 3)

    def test_empty_reference(self):
        assert wer([], []) == 0.0
        assert wer([], [1]) == 1.0

    def test_corpus_pooling(self):
        refs = [[1, 2], [3, 4, 5, 6]]
        hyps = [[1, 9], [3, 4, 5, 6]]
        assert corpus_wer(refs, hyps) == pytest.approx(1 / 6)

    def test_corpus_length_mismatch(self):
        with pytest.raises(ValueError):
            corpus_wer([[1]], [[1], [2]])

    def test_model_wer_in_unit_range(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        for model in (draft, target):
            value = model_wer(model, clean_dataset)
            assert 0.0 <= value < 0.5


class TestAcceptanceStats:
    def _trace(self, rounds):
        trace = DecodeTrace()
        for submitted, accepted in rounds:
            trace.rounds.append(
                RoundStats(submitted_tokens=submitted, accepted_tokens=accepted)
            )
        return trace

    def test_collect(self):
        stats = collect_acceptance([self._trace([(8, 4), (8, 8)])])
        assert stats.rounds == 2
        assert stats.submitted == 16
        assert stats.accepted == 12
        assert stats.mean_ratio == pytest.approx(0.75)
        assert stats.mean_accepted == pytest.approx(6.0)

    def test_histogram_buckets(self):
        rows = acceptance_histogram([0.0, 0.5, 1.0, 1.0], bins=5)
        assert rows[0][1] == pytest.approx(0.25)
        assert rows[2][1] == pytest.approx(0.25)
        assert rows[4][1] == pytest.approx(0.5)  # full accepts in last bin

    def test_histogram_empty(self):
        rows = acceptance_histogram([], bins=4)
        assert all(fraction == 0.0 for _, fraction in rows)

    def test_histogram_invalid_bins(self):
        with pytest.raises(ValueError):
            acceptance_histogram([0.5], bins=0)


class TestAcceptanceAnalyses:
    def test_accept_at_topk_monotone(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        curve = accept_at_topk(draft, target, list(clean_dataset)[:4], max_k=4)
        assert len(curve) == 4
        assert all(0.0 <= v <= 1.0 for v in curve)
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:], strict=False))

    def test_rank_distribution_sums_to_one(
        self, whisper_pair, clean_dataset, other_dataset
    ):
        draft, target = whisper_pair
        units = list(clean_dataset) + list(other_dataset)
        distribution = rank_distribution_on_failure(draft, target, units)
        assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-9)

    def test_suffix_alignment_in_unit_range(self, whisper_pair, other_dataset):
        draft, target = whisper_pair
        curve = suffix_alignment_curve(
            draft, target, list(other_dataset), draft_len=12, max_offset=4
        )
        assert len(curve) == 4
        assert all(0.0 <= v <= 1.0 for v in curve)


class TestLatencyAggregation:
    def test_totals_match_events(self, whisper_pair, clean_dataset):
        from repro.decoding.autoregressive import AutoregressiveDecoder

        _, target = whisper_pair
        decoder = AutoregressiveDecoder(target)
        units = list(clean_dataset)[:3]
        results = [decoder.decode(u) for u in units]
        breakdown = aggregate_latency("ar", results, units)
        expected = sum(e.ms for r in results for e in r.clock.events)
        assert breakdown.total_ms == pytest.approx(expected)
        assert sum(breakdown.by_model_ms.values()) == pytest.approx(expected)
        assert sum(breakdown.by_kind_ms.values()) == pytest.approx(expected)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_latency("x", [], [object()])

    def test_shares(self, whisper_pair, clean_dataset):
        from repro.decoding.speculative import SpeculativeDecoder

        draft, target = whisper_pair
        decoder = SpeculativeDecoder(draft, target)
        units = list(clean_dataset)[:3]
        results = [decoder.decode(u) for u in units]
        breakdown = aggregate_latency("spec", results, units)
        total_share = breakdown.model_share(draft.name) + breakdown.model_share(
            target.name
        )
        assert total_share == pytest.approx(1.0)


class TestSpeedup:
    def test_table(self, whisper_pair, clean_dataset):
        from repro.decoding.autoregressive import AutoregressiveDecoder
        from repro.decoding.speculative import SpeculativeDecoder

        draft, target = whisper_pair
        units = list(clean_dataset)[:3]
        breakdowns = []
        for name, decoder in (
            ("ar", AutoregressiveDecoder(target)),
            ("spec", SpeculativeDecoder(draft, target)),
        ):
            results = [decoder.decode(u) for u in units]
            breakdowns.append(aggregate_latency(name, results, units))
        rows = speedup_table(breakdowns, ["ar"])
        by_name = {r.method: r for r in rows}
        assert by_name["ar"].over("ar") == pytest.approx(1.0)
        assert by_name["spec"].over("ar") > 1.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            speedup_table([], ["ar"])
