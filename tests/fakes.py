"""Scripted fake sessions for deterministic decoder/recycler tests.

A :class:`ScriptedModel` produces tokens from a fixed position-indexed
stream, with optional per-prefix overrides — enough to script exact
acceptance/rejection/merge scenarios without the statistical oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.latency import (
    KIND_DECODE,
    KIND_DRAFT,
    LatencyProfile,
    SimClock,
    forward_ms,
    prefill_ms,
)
from repro.models.simulated import StepResult

EOS = 2

FAKE_PROFILE = LatencyProfile("fake", 10.0, 0.5, 0.0, 0.1)


@dataclass
class FakeVocab:
    eos_id: int = EOS


@dataclass
class ScriptedModel:
    """Position-anchored fake model (audio-conditioned by construction)."""

    stream: list[int]
    name: str = "fake"
    probs: dict[int, float] = field(default_factory=dict)  # position -> top prob
    overrides: dict[tuple, int] = field(default_factory=dict)  # prefix -> token
    latency: LatencyProfile = FAKE_PROFILE
    vocab: FakeVocab = field(default_factory=FakeVocab)

    def session(self, unit, clock: SimClock) -> "ScriptedSession":
        return ScriptedSession(self, clock)


class ScriptedSession:
    def __init__(self, model: ScriptedModel, clock: SimClock) -> None:
        self.model = model
        self.clock = clock
        self._prefilled = False

    def prefill(self) -> None:
        self._prefilled = True
        self.clock.record(
            self.model.name, "prefill", 4, 0, prefill_ms(self.model.latency, 4)
        )

    def _token_at(self, prefix) -> tuple[int, float]:
        prefix = tuple(prefix)
        if prefix in self.model.overrides:
            token = self.model.overrides[prefix]
        else:
            position = len(prefix)
            stream = self.model.stream
            token = stream[position] if position < len(stream) else EOS
        prob = self.model.probs.get(len(prefix), 0.9)
        return token, prob

    def peek(self, prefix) -> StepResult:
        token, prob = self._token_at(prefix)
        alt = token + 100  # deterministic distinct runner-up
        return StepResult(
            token=token,
            top_prob=prob,
            topk=((token, prob), (alt, max(1.0 - prob, 0.01))),
            position=len(tuple(prefix)),
            perturb_level=0,
        )

    def step(self, prefix, kind: str = KIND_DECODE) -> StepResult:
        self.clock.record(
            self.model.name,
            kind,
            1,
            len(tuple(prefix)),
            forward_ms(self.model.latency, 1, len(tuple(prefix))),
        )
        return self.peek(prefix)

    def step_frontier(self, prefixes, kind: str = KIND_DRAFT):
        prefixes = [tuple(p) for p in prefixes]
        self.clock.record(
            self.model.name,
            kind,
            len(prefixes),
            max(len(p) for p in prefixes),
            forward_ms(self.model.latency, len(prefixes), 0),
        )
        return [self.peek(p) for p in prefixes]

    def verify_eval(self, prefixes, billed_tokens=None):
        prefixes = [tuple(p) for p in prefixes]
        billed = billed_tokens if billed_tokens is not None else len(prefixes)
        self.clock.record(
            self.model.name,
            "verify",
            billed,
            min(len(p) for p in prefixes),
            forward_ms(self.model.latency, billed, 0),
        )
        return [self.peek(p) for p in prefixes]

    def rollback(self, kept_prefix_len: int) -> None:
        pass

    def is_eos(self, token: int) -> bool:
        return token == EOS

    def max_decode_positions(self) -> int:
        return len(self.model.stream) + 4


@dataclass
class FakeUnit:
    """Minimal decode unit for fake sessions."""

    duration_s: float = 10.0
    seed: int = 0
