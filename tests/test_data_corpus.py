"""Tests for repro.data.corpus and repro.data.librisim."""

import pytest

from repro.data.corpus import Dataset, Utterance, validate_datasets
from repro.data.librisim import (
    SPLIT_PROFILES,
    SPLITS,
    LibriSimBuilder,
    LibriSimConfig,
    build_split,
)


def make_utterance(**overrides):
    base = dict(
        utterance_id="test/spk00/0000",
        speaker_id="spk00",
        words=("the", "old", "house"),
        tokens=(10, 11, 12),
        duration_s=1.5,
        difficulty=(0.1, 0.2, 0.3),
        split="test-clean",
    )
    base.update(overrides)
    return Utterance(**base)


class TestUtterance:
    def test_valid_construction(self):
        utt = make_utterance()
        assert utt.num_tokens == 3
        assert utt.text == "the old house"

    def test_seed_deterministic_and_id_bound(self):
        assert make_utterance().seed == make_utterance().seed
        other = make_utterance(utterance_id="test/spk00/0001")
        assert other.seed != make_utterance().seed

    def test_token_word_length_mismatch(self):
        with pytest.raises(ValueError):
            make_utterance(tokens=(1, 2))

    def test_difficulty_length_mismatch(self):
        with pytest.raises(ValueError):
            make_utterance(difficulty=(0.1,))

    def test_difficulty_range_checked(self):
        with pytest.raises(ValueError):
            make_utterance(difficulty=(0.1, 0.2, 1.5))

    def test_nonpositive_duration(self):
        with pytest.raises(ValueError):
            make_utterance(duration_s=0.0)

    def test_mean_difficulty(self):
        assert make_utterance().mean_difficulty() == pytest.approx(0.2)


class TestDataset:
    def test_iteration_and_len(self):
        ds = Dataset("x", [make_utterance()])
        assert len(ds) == 1
        assert list(ds)[0].utterance_id == "test/spk00/0000"

    def test_totals(self):
        ds = Dataset("x", [make_utterance()])
        assert ds.total_tokens == 3
        assert ds.total_duration_s == pytest.approx(1.5)

    def test_subset(self):
        utts = [make_utterance(utterance_id=f"t/s/{i}") for i in range(5)]
        ds = Dataset("x", utts)
        assert len(ds.subset(2)) == 2

    def test_validate_datasets_catches_duplicates(self):
        a = Dataset("a", [make_utterance()])
        b = Dataset("b", [make_utterance()])
        with pytest.raises(ValueError):
            validate_datasets([a, b])


class TestLibriSim:
    def test_all_splits_build(self, vocab):
        config = LibriSimConfig(seed=1, utterances_per_split=4)
        datasets = LibriSimBuilder(vocab, config).build_all()
        assert set(datasets) == set(SPLITS)
        validate_datasets(list(datasets.values()))

    def test_deterministic(self, vocab):
        a = build_split("dev-clean", vocab, seed=5, utterances=4)
        b = build_split("dev-clean", vocab, seed=5, utterances=4)
        assert [u.tokens for u in a] == [u.tokens for u in b]
        assert [u.difficulty for u in a] == [u.difficulty for u in b]

    def test_seed_changes_content(self, vocab):
        a = build_split("dev-clean", vocab, seed=5, utterances=4)
        b = build_split("dev-clean", vocab, seed=6, utterances=4)
        assert [u.tokens for u in a] != [u.tokens for u in b]

    def test_other_split_harder_than_clean(self, vocab):
        clean = build_split("test-clean", vocab, seed=3, utterances=12)
        other = build_split("test-other", vocab, seed=3, utterances=12)
        mean_clean = sum(u.mean_difficulty() for u in clean) / len(clean)
        mean_other = sum(u.mean_difficulty() for u in other) / len(other)
        assert mean_other > mean_clean + 0.05

    def test_unknown_split_rejected(self, vocab):
        with pytest.raises(KeyError):
            build_split("test-unknown", vocab)

    def test_durations_match_speaking_rate(self, vocab):
        ds = build_split("dev-clean", vocab, seed=2, utterances=8)
        for utt in ds:
            rate = len(utt.words) / utt.duration_s
            assert 1.5 < rate < 4.5  # plausible words-per-second band

    def test_profiles_cover_all_splits(self):
        assert set(SPLIT_PROFILES) == set(SPLITS)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LibriSimConfig(utterances_per_split=0)
