"""Tests for draft sequence recycling."""

import pytest

from repro.core.config import SpecASRConfig
from repro.core.recycling import (
    DraftedToken,
    RecycledSuffix,
    draft_with_recycling,
    suffix_alignment_rate,
)
from repro.models.latency import SimClock

from tests.fakes import EOS, FakeUnit, ScriptedModel


def suffix_of(tokens, probs=None):
    probs = probs or [0.9] * len(tokens)
    return RecycledSuffix(
        items=[
            DraftedToken(t, p, ((t, p),)) for t, p in zip(tokens, probs, strict=True)
        ]
    )


def session_for(stream, probs=None, overrides=None):
    model = ScriptedModel(
        stream=stream, probs=probs or {}, overrides=overrides or {}, name="draft"
    )
    session = model.session(FakeUnit(), SimClock())
    session.prefill()
    return session


class TestRecycledSuffix:
    def test_from_items_trims_at_eos(self):
        items = [DraftedToken(5, 0.9), DraftedToken(EOS, 0.9), DraftedToken(7, 0.9)]
        suffix = RecycledSuffix.from_items(items, EOS, max_len=24)
        assert suffix.tokens == [5, EOS]

    def test_from_items_caps_length(self):
        items = [DraftedToken(i, 0.9) for i in range(4, 34)]  # avoid EOS id
        suffix = RecycledSuffix.from_items(items, EOS, max_len=10)
        assert len(suffix) == 9

    def test_bool_and_tokens(self):
        assert not RecycledSuffix()
        assert suffix_of([1, 2]).tokens == [1, 2]


class TestMergeAtCorrespondingPosition:
    def test_immediate_merge_splices_suffix(self):
        """Prefix [5]; the model regenerates token 6 at offset 0, which
        matches the retained suffix[0] — the rest of the suffix is spliced
        in without regeneration."""
        stream = [5, 6, 7, 8, 9, 10, EOS]
        session = session_for(stream)
        suffix = suffix_of([6, 7, 8])
        config = SpecASRConfig(max_draft_len=24)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        assert result.merged
        assert result.merge_index == 0
        main_tokens = [t.token for t in result.main]
        # regen [6] + spliced [7, 8] + extension continues from position 4
        assert main_tokens[:3] == [6, 7, 8]
        assert result.recycled_tokens == 2
        recycled_flags = [t.recycled for t in result.main]
        assert recycled_flags[1:3] == [True, True]

    def test_merge_hides_regeneration_in_batched_passes(self):
        stream = [5, 6, 7, 8, 9, 10, 11, 12, EOS]
        session = session_for(stream)
        suffix = suffix_of([6, 7, 8])
        config = SpecASRConfig(max_draft_len=8)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        # Extension ran alongside regeneration; steps are far fewer than a
        # from-scratch redraft of the same tokens.
        fresh_len = sum(1 for t in result.main if not t.recycled)
        assert result.draft_steps <= fresh_len + 1

    def test_no_merge_when_regen_disagrees(self):
        # Regeneration produces 99 at offset 0 (override) with high
        # confidence, never matching the retained suffix [6, 7].
        overrides = {(5,): 99, (5, 99): 98, (5, 99, 98): 97}
        stream = [5, 6, 7, 8, 9, EOS]
        session = session_for(stream, overrides=overrides)
        suffix = suffix_of([6, 7])
        config = SpecASRConfig(max_draft_len=5, adjacent_merge=False)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        assert not result.merged
        assert result.alt is not None
        assert [t.token for t in result.main[:2]] == [6, 7]  # retained branch
        assert result.recycled_tokens == 2

    def test_suffix_required(self):
        session = session_for([5, EOS])
        with pytest.raises(ValueError):
            draft_with_recycling(session, [], RecycledSuffix(), SpecASRConfig(), EOS)


class TestAdjacentMerge:
    def test_merge_at_next_position(self):
        """Regen token at offset 0 matches suffix[1] (alignment slip):
        merged with the +1 offset rule."""
        overrides = {(5,): 7}  # regen emits 7 immediately (suffix[1])
        stream = [5, 6, 7, 8, 9, EOS]
        session = session_for(stream, overrides=overrides)
        suffix = suffix_of([6, 7, 8])
        config = SpecASRConfig(max_draft_len=6, adjacent_merge=True)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        assert result.merged
        assert result.merge_index == 1
        main_tokens = [t.token for t in result.main]
        assert main_tokens[0] == 7
        assert 8 in main_tokens  # suffix remainder spliced

    def test_adjacent_disabled(self):
        overrides = {(5,): 7, (5, 7): 99, (5, 7, 99): 98, (5, 7, 99, 98): 97}
        stream = [5, 6, 7, 8, 9, EOS]
        session = session_for(stream, overrides=overrides)
        suffix = suffix_of([6, 7, 8])
        config = SpecASRConfig(max_draft_len=5, adjacent_merge=False)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        assert not result.merged


class TestTruncationInteraction:
    def test_uncertain_regen_stops_round(self):
        overrides = {(5,): 99}
        stream = [5, 6, 7, 8, EOS]
        session = session_for(stream, probs={1: 0.1}, overrides=overrides)
        suffix = suffix_of([6, 7])
        config = SpecASRConfig(threshold=0.4, adjacent_merge=False)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        assert not result.merged
        assert result.alt is not None
        assert len(result.alt) == 1  # truncated immediately

    def test_uncertain_suffix_tail_blocks_extension(self):
        stream = [5, 6, 7, 8, 9, EOS]
        session = session_for(stream)
        suffix = suffix_of([6, 7], probs=[0.9, 0.1])  # tail below threshold
        config = SpecASRConfig(threshold=0.4)
        result = draft_with_recycling(session, [5], suffix, config, EOS)
        # merged quickly, but no extension beyond the uncertain tail
        assert result.merged
        assert [t.token for t in result.main] == [6, 7]

    def test_truncate_false_extends_through_uncertainty(self):
        stream = [5, 6, 7, 8, 9, 10, EOS]
        session = session_for(stream, probs={3: 0.1})
        suffix = suffix_of([6, 7], probs=[0.9, 0.1])
        config = SpecASRConfig(threshold=0.4, max_draft_len=5)
        result = draft_with_recycling(session, [5], suffix, config, EOS, truncate=False)
        assert result.merged
        assert len(result.main) == 5  # ran to the cap

    def test_uncertain_points_reported(self):
        stream = [5, 6, 7, 8, 9, 10, EOS]
        session = session_for(stream, probs={3: 0.1})
        suffix = suffix_of([6, 7])
        config = SpecASRConfig(threshold=0.4, max_draft_len=5)
        result = draft_with_recycling(session, [5], suffix, config, EOS, truncate=False)
        points = result.uncertain_points(0.4, EOS)
        assert any(p.top_prob == pytest.approx(0.1) for p in points)


class TestAlignmentRate:
    def test_full_alignment(self):
        assert suffix_alignment_rate([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial_alignment_in_order(self):
        assert suffix_alignment_rate([1, 2, 3], [1, 9, 2, 9, 3]) == 1.0
        assert suffix_alignment_rate([1, 2, 3], [3, 2, 1]) < 1.0

    def test_empty_suffix(self):
        assert suffix_alignment_rate([], [1, 2]) == 0.0
