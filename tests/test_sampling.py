"""Tests for temperature sampling and speculative sampling.

The critical property: speculative sampling emits tokens with the *target's*
sampling distribution (distribution-level losslessness).  Verified
statistically on scripted models with controlled distributions.
"""

import collections

import pytest

from repro.decoding.sampling import (
    SamplingConfig,
    SamplingDecoder,
    SpeculativeSamplingDecoder,
    _distribution,
    _sample,
)
from repro.models.simulated import StepResult
from repro.utils.rng import RngStream

from tests.fakes import EOS, FakeUnit, ScriptedModel


def make_step(pairs):
    return StepResult(
        token=pairs[0][0],
        top_prob=pairs[0][1],
        topk=tuple(pairs),
        position=0,
        perturb_level=0,
    )


class TestPrimitives:
    def test_distribution_renormalises(self):
        dist = _distribution(make_step([(1, 0.6), (2, 0.2)]))
        assert dist[1] == pytest.approx(0.75)
        assert dist[2] == pytest.approx(0.25)

    def test_degenerate_distribution_rejected(self):
        with pytest.raises(ValueError):
            _distribution(make_step([(1, 0.0)]))

    def test_sample_respects_probabilities(self):
        dist = {1: 0.8, 2: 0.2}
        rng = RngStream(0)
        counts = collections.Counter(_sample(dist, rng) for _ in range(2000))
        assert 0.74 < counts[1] / 2000 < 0.86

    def test_sampling_config_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(draft_len=0)


class TestSamplingDecoder:
    def test_deterministic_given_seed(self):
        target = ScriptedModel(stream=[5, 6, 7, EOS], name="target")
        a = SamplingDecoder(target, SamplingConfig(seed=1)).decode(FakeUnit())
        b = SamplingDecoder(target, SamplingConfig(seed=1)).decode(FakeUnit())
        assert a.tokens == b.tokens

    def test_high_confidence_matches_greedy(self):
        # probs ~0.95 at every position: sampling rarely deviates.
        stream = [5, 6, 7, EOS]
        probs = {i: 0.97 for i in range(4)}
        target = ScriptedModel(stream=stream, probs=probs, name="target")
        result = SamplingDecoder(target, SamplingConfig(seed=3)).decode(FakeUnit())
        assert result.tokens == [5, 6, 7]


class TestSpeculativeSampling:
    def test_runs_and_terminates(self):
        draft = ScriptedModel(stream=[5, 6, 7, EOS], name="draft")
        target = ScriptedModel(stream=[5, 6, 7, EOS], name="target")
        result = SpeculativeSamplingDecoder(draft, target).decode(FakeUnit())
        assert result.tokens  # nonempty
        assert result.trace.num_rounds >= 1

    def test_accepts_most_tokens_when_models_agree(self):
        stream = [5, 6, 7, 8, 9, 10, 11, EOS]
        probs = {i: 0.95 for i in range(len(stream))}
        draft = ScriptedModel(stream=list(stream), probs=probs, name="draft")
        target = ScriptedModel(stream=list(stream), probs=probs, name="target")
        result = SpeculativeSamplingDecoder(
            draft, target, SamplingConfig(seed=5)
        ).decode(FakeUnit())
        assert result.trace.acceptance_ratio > 0.7

    def test_distribution_preservation(self):
        """Empirical first-token distribution of speculative sampling matches
        plain target sampling — the Leviathan/Chen correctness property.

        Scripted setup: target emits token 5 with renormalised prob
        0.6/(0.6+0.4)=0.6 and 105 with 0.4; the draft proposes from a
        *different* distribution (0.9/0.1), so acceptance-correction must do
        real work for the first-token marginals to match.
        """
        n_runs = 1500
        spec_counts: collections.Counter = collections.Counter()
        plain_counts: collections.Counter = collections.Counter()
        for seed in range(n_runs):
            target = ScriptedModel(
                stream=[5, EOS], probs={0: 0.6, 1: 0.99}, name="target"
            )
            draft = ScriptedModel(
                stream=[5, EOS], probs={0: 0.9, 1: 0.99}, name="draft"
            )
            spec = SpeculativeSamplingDecoder(
                draft, target, SamplingConfig(seed=seed, draft_len=1)
            ).decode(FakeUnit())
            spec_counts[spec.tokens[0] if spec.tokens else EOS] += 1
            plain = SamplingDecoder(
                target, SamplingConfig(seed=seed)
            ).decode(FakeUnit())
            plain_counts[plain.tokens[0] if plain.tokens else EOS] += 1
        # Both should emit token 5 with probability ~0.6 (renormalised top-2).
        spec_rate = spec_counts[5] / n_runs
        plain_rate = plain_counts[5] / n_runs
        assert abs(spec_rate - plain_rate) < 0.05
        assert 0.52 < spec_rate < 0.68

    def test_on_simulated_models(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        decoder = SpeculativeSamplingDecoder(draft, target, SamplingConfig(seed=9))
        for utterance in list(clean_dataset)[:2]:
            result = decoder.decode(utterance)
            assert result.tokens
            assert result.total_ms > 0
