"""Streaming serving suite: chunked arrivals, emission timelines, long-form.

The contract under test is the streaming analogue of the serving parity
contract: chunked audio delivery *delays* decode progress (the scheduler may
only advance a session as far as the heard audio supports) but never changes
what is decoded — the final transcript and per-request decode time are
bit-identical to the offline run of the same trace.  On top of that the
emission timeline must be physically sensible: emission times non-decreasing,
partials monotone and ending at the transcript length, every latency
non-negative, and zero revised tokens (the decoder is lossless, so partials
are final).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SpecASRConfig
from repro.core.engine import SpecASREngine
from repro.core.streaming import (
    LongFormConfig,
    StreamingResult,
    decode_long_form,
    positions_available,
)
from repro.harness.methods import build_method
from repro.metrics.latency_report import aggregate_latency
from repro.serving import (
    Arrival,
    ClusterConfig,
    ContinuousBatchScheduler,
    SchedulerConfig,
    ServeSimConfig,
    StreamSpec,
    StreamingSummary,
    chunk_schedule,
    load_trace,
    offered_qps,
    poisson_trace,
    save_trace,
    simulate,
)
from repro.serving.request import STATUS_COMPLETED

STABLE = settings(max_examples=12, deadline=None, derandomize=True)


@pytest.fixture(scope="module")
def serving_decoder(whisper_pair):
    draft, target = whisper_pair
    return build_method("spec(8,1)", draft, target)


def _shift(trace: list[Arrival], offset_ms: float) -> list[Arrival]:
    return [
        Arrival(a.index, a.utterance_index, a.arrival_ms + offset_ms, a.priority)
        for a in trace
    ]


class TestOfferedQps:
    def test_span_is_first_to_last_arrival(self):
        trace = [Arrival(i, 0, 1000.0 * (i + 1)) for i in range(4)]
        # 4 requests over a 3 s first→last span
        assert offered_qps(trace) == pytest.approx(4.0 / 3.0)

    def test_shift_invariant(self):
        """A replayed trace with an offset clock reports the same load."""
        trace = poisson_trace(20, 2.0, 8, seed=3)
        assert offered_qps(_shift(trace, 90_000.0)) == pytest.approx(
            offered_qps(trace)
        )

    def test_single_arrival_has_no_span(self):
        assert offered_qps([Arrival(0, 0, 500.0)]) == 0.0
        assert offered_qps([]) == 0.0

    def test_coincident_arrivals_report_zero(self):
        trace = [Arrival(i, 0, 250.0) for i in range(3)]
        assert offered_qps(trace) == 0.0


class TestChunkSchedule:
    def test_offline_arrival_is_one_event(self):
        events = chunk_schedule(Arrival(0, 0, 400.0), 7.3, 1.0)
        assert events == [(400.0, 7.3)]

    def test_streamed_chunks_are_paced_at_rtf(self):
        arrival = Arrival(0, 0, 1000.0, rtf=2.0)
        events = chunk_schedule(arrival, 2.5, 1.0)
        # 1 s of audio every 500 ms of simulated time; short final chunk
        assert events == [(1500.0, 1.0), (2000.0, 2.0), (2250.0, 2.5)]

    def test_heard_audio_is_monotone_and_complete(self):
        events = chunk_schedule(Arrival(0, 0, 0.0, rtf=1.0), 9.7, 2.0)
        heard = [h for _, h in events]
        assert heard == sorted(heard)
        assert heard[-1] == pytest.approx(9.7)
        times = [t for t, _ in events]
        assert times == sorted(times)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            chunk_schedule(Arrival(0, 0, 0.0), 0.0, 1.0)
        with pytest.raises(ValueError):
            chunk_schedule(Arrival(0, 0, 0.0), 5.0, 0.0)
        with pytest.raises(ValueError):
            Arrival(0, 0, 0.0, rtf=-1.0)


class TestTraceRtfRoundTrip:
    def test_rtf_survives_save_load(self, tmp_path):
        trace = poisson_trace(6, 2.0, 4, seed=5, rtf=1.5)
        assert all(a.rtf == 1.5 for a in trace)
        path = save_trace(trace, tmp_path / "trace.json")
        assert load_trace(path) == trace

    def test_legacy_trace_defaults_to_offline(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('[{"index": 0, "utterance_index": 2, "arrival_ms": 10.0}]')
        (arrival,) = load_trace(path)
        assert arrival.rtf == 0.0


class TestFirstTokenLatency:
    def _result(self, tokens, emissions) -> StreamingResult:
        return StreamingResult(
            tokens=tokens,
            emission_times_s=emissions,
            audio_duration_s=5.0,
            total_compute_ms=100.0,
            chunks=5,
        )

    def test_empty_transcript_has_no_first_token(self):
        result = self._result([], [])
        assert result.first_token_latency_s is None
        assert result.final_latency_s == 0.0

    def test_nonempty_transcript_reports_first_emission(self):
        result = self._result([4, 7], [1.25, 2.5])
        assert result.first_token_latency_s == pytest.approx(1.25)


class TestAggregateLatencyDuration:
    def test_missing_duration_raises(self, whisper_pair, utterance):
        draft, target = whisper_pair
        decoder = build_method("spec(8,1)", draft, target)
        result = decoder.decode(utterance)

        class Bare:  # a unit with no duration_s attribute
            utterance_id = "bare-0"

        with pytest.raises(ValueError, match="duration_s"):
            aggregate_latency("spec", [result], [Bare()])

    def test_explicit_default_fills_in(self, whisper_pair, utterance):
        draft, target = whisper_pair
        decoder = build_method("spec(8,1)", draft, target)
        result = decoder.decode(utterance)

        class Bare:
            utterance_id = "bare-0"

        breakdown = aggregate_latency(
            "spec", [result], [Bare()], default_duration_s=12.5
        )
        assert breakdown.total_duration_s == pytest.approx(12.5)


def _streamed_trace(dataset, count: int, rtf: float, gap_ms: float = 900.0):
    return [
        Arrival(i, i % len(dataset), gap_ms * (i + 1), rtf=rtf) for i in range(count)
    ]


def _run(decoder, trace, dataset, stream: StreamSpec | None = None, **config):
    scheduler = ContinuousBatchScheduler(
        decoder,
        SchedulerConfig(**config),
        ClusterConfig(devices=2),
        stream=stream,
    )
    return scheduler.run(trace, dataset), scheduler.last_stats


class TestStreamingScheduler:
    def test_transcripts_bit_identical_to_offline(
        self, serving_decoder, clean_dataset
    ):
        """The parity contract: streaming delays work, never changes it."""
        streamed = _streamed_trace(clean_dataset, 8, rtf=1.0)
        offline = [
            Arrival(a.index, a.utterance_index, a.arrival_ms) for a in streamed
        ]
        spec = StreamSpec(enabled=True, chunk_s=1.0, lookahead_s=0.3)
        stream_records, _ = _run(serving_decoder, streamed, clean_dataset, spec)
        offline_records, _ = _run(serving_decoder, offline, clean_dataset)
        assert len(stream_records) == len(offline_records)
        for streamed_r, offline_r in zip(stream_records, offline_records, strict=True):
            assert streamed_r.status == STATUS_COMPLETED
            assert streamed_r.tokens == offline_r.tokens
            assert streamed_r.decode_ms == pytest.approx(offline_r.decode_ms)

    def test_emission_timeline_invariants(self, serving_decoder, clean_dataset):
        trace = _streamed_trace(clean_dataset, 6, rtf=1.0)
        spec = StreamSpec(enabled=True, chunk_s=0.5, lookahead_s=0.3)
        records, _ = _run(serving_decoder, trace, clean_dataset, spec)
        for record in records:
            assert record.streaming
            assert record.status == STATUS_COMPLETED
            utterance = record.request.utterance
            events = chunk_schedule(record.request, utterance.duration_s, 0.5)
            assert record.stream_chunks == len(events)
            assert record.audio_end_ms == pytest.approx(events[-1][0])
            # one emission per transcript token, in non-decreasing order
            assert len(record.emission_ms) == len(record.tokens)
            assert record.emission_ms == sorted(record.emission_ms)
            # partials grow monotonically and end at the transcript length
            counts = [count for _, count in record.partials]
            assert counts == sorted(counts)
            if record.tokens:
                assert counts[-1] == len(record.tokens)
                assert record.word_ttft_ms is not None
                assert record.word_ttft_ms >= 0.0
                # no token can be final before its audio arrived + decoded
                assert record.emission_ms[0] >= record.request.arrival_ms
            assert record.final_latency_ms is not None
            assert record.final_latency_ms >= 0.0
            assert record.slo_latency_ms == record.final_latency_ms
            assert all(lat >= 0.0 for lat in record.chunk_latencies_ms)
            assert record.revised_tokens == 0

    def test_decode_starts_before_audio_ends(self, serving_decoder, clean_dataset):
        """Sessions begin while the utterance is still arriving."""
        trace = _streamed_trace(clean_dataset, 4, rtf=1.0)
        spec = StreamSpec(enabled=True, chunk_s=1.0, lookahead_s=0.3)
        records, _ = _run(serving_decoder, trace, clean_dataset, spec)
        assert any(
            r.service_start_ms is not None
            and r.audio_end_ms is not None
            and r.service_start_ms < r.audio_end_ms
            for r in records
        )

    def test_offline_requests_have_no_streaming_block(
        self, serving_decoder, clean_dataset
    ):
        trace = [Arrival(i, i % len(clean_dataset), 500.0 * i) for i in range(4)]
        records, _ = _run(serving_decoder, trace, clean_dataset)
        assert all(not r.streaming for r in records)
        assert StreamingSummary.from_records(records) is None


class TestStreamingPropertyGrid:
    @given(
        chunk_s=st.sampled_from((0.4, 1.0, 2.5)),
        lookahead_s=st.sampled_from((0.0, 0.3, 1.0)),
        rtf=st.sampled_from((0.5, 1.0, 2.0)),
        max_batch=st.integers(min_value=1, max_value=3),
    )
    @STABLE
    def test_streamed_equals_offline_for_any_grid_point(
        self, serving_decoder, clean_dataset, chunk_s, lookahead_s, rtf, max_batch
    ):
        trace = _streamed_trace(clean_dataset, 5, rtf=rtf, gap_ms=700.0)
        spec = StreamSpec(enabled=True, chunk_s=chunk_s, lookahead_s=lookahead_s)
        records, _ = _run(
            serving_decoder, trace, clean_dataset, spec, max_batch=max_batch
        )
        for record in records:
            assert record.status == STATUS_COMPLETED
            reference = serving_decoder.decode(record.request.utterance)
            assert record.tokens == list(reference.tokens)
            assert record.decode_ms == pytest.approx(reference.total_ms)
            assert record.emission_ms == sorted(record.emission_ms)
            counts = [count for _, count in record.partials]
            assert counts == sorted(counts)
            if counts:
                assert counts[-1] == len(record.tokens)
            assert record.final_latency_ms is not None
            assert record.final_latency_ms >= 0.0
            assert record.revised_tokens == 0


class TestStreamingReport:
    def test_simulate_populates_streaming_summary(self):
        config = ServeSimConfig(
            num_requests=6,
            utterances=6,
            qps=0.5,
            streaming=True,
            rtf=1.0,
            chunk_s=1.0,
            lookahead_s=0.3,
        )
        assert config.streaming and config.rtf == 1.0
        report = simulate(config)
        summary = report.streaming
        assert summary is not None
        assert summary.requests == 6
        assert summary.completed == 6
        assert summary.chunks > 6  # each stream delivered several chunks
        assert summary.partial_stability == 0.0
        assert summary.word_ttft is not None and summary.word_ttft.p50 >= 0.0
        assert summary.final_latency is not None
        payload = report.to_dict()
        assert payload["streaming"]["partial_stability"] == 0.0
        assert "word_ttft_ms" in payload["streaming"]
        assert "streaming :" in report.render() or "streaming" in report.render()

    def test_offline_simulate_has_no_streaming_block(self):
        report = simulate(ServeSimConfig(num_requests=4, utterances=4, qps=2.0))
        assert report.streaming is None
        assert "streaming" not in report.to_dict()

    def test_config_pickle_roundtrip_and_legacy_upgrade(self):
        config = ServeSimConfig(streaming=True, rtf=2.0, chunk_s=0.5)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.streaming and clone.rtf == 2.0 and clone.chunk_s == 0.5
        # a pickle predating the stream sub-config upgrades to defaults
        state = config.__dict__.copy()
        del state["stream"]
        stale = ServeSimConfig.__new__(ServeSimConfig)
        stale.__setstate__(state)
        assert stale.stream == StreamSpec()

    def test_stream_spec_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(rtf=0.0)
        with pytest.raises(ValueError):
            StreamSpec(chunk_s=-1.0)
        with pytest.raises(ValueError):
            StreamSpec(lookahead_s=-0.1)


class TestLongForm:
    @pytest.fixture(scope="class")
    def engine(self, whisper_pair):
        draft, target = whisper_pair
        return SpecASREngine(draft, target, SpecASRConfig())

    def test_stitched_transcript_matches_offline(self, engine, clean_dataset):
        config = LongFormConfig(window_s=3.0, overlap_s=0.5)
        for utterance in clean_dataset:
            offline = engine.decode(utterance)
            result = decode_long_form(engine, utterance, config)
            assert result.tokens == list(offline.tokens)
            assert result.windows >= 1
            assert result.total_compute_ms >= offline.total_ms
            # window spans tile the transcript in order
            assert result.window_spans[0][0] == 0
            for (_, prev_end), (next_start, _) in zip(
                result.window_spans, result.window_spans[1:], strict=False
            ):
                assert next_start <= prev_end  # overlapping, never gapped

    def test_overlap_region_is_checked(self, engine, clean_dataset):
        utterance = max(clean_dataset, key=lambda u: u.num_tokens)
        result = decode_long_form(
            engine, utterance, LongFormConfig(window_s=3.0, overlap_s=1.0)
        )
        if result.windows > 1:
            assert result.overlap_tokens_checked > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LongFormConfig(window_s=0.0)
        with pytest.raises(ValueError):
            LongFormConfig(overlap_s=-1.0)
        with pytest.raises(ValueError):
            LongFormConfig(window_s=2.0, overlap_s=2.0)


class TestEnginePrefixDecode:
    @pytest.fixture(scope="class")
    def engine(self, whisper_pair):
        draft, target = whisper_pair
        return SpecASREngine(draft, target, SpecASRConfig())

    def test_prefix_continuation_is_identical(self, engine, utterance):
        offline = list(engine.decode(utterance).tokens)
        split = max(len(offline) // 2, 1)
        resumed = engine.decode(utterance, start_prefix=tuple(offline[:split]))
        assert list(resumed.tokens) == offline

    def test_max_positions_caps_decode(self, engine, utterance):
        """The cap is round-granular: the decode stops at the first round
        boundary at or past ``max_positions``, and what it produced is a
        prefix of the offline transcript (long-form stitching depends on
        exactly this)."""
        offline = list(engine.decode(utterance).tokens)
        cap = max(len(offline) // 2, 1)
        capped = list(engine.decode(utterance, max_positions=cap).tokens)
        assert len(capped) >= min(cap, len(offline))
        assert len(capped) < len(offline)  # the cap did stop the decode early
        assert capped == offline[: len(capped)]

    def test_cap_below_prefix_rejected(self, engine, utterance):
        offline = list(engine.decode(utterance).tokens)
        with pytest.raises(ValueError):
            engine.decode(
                utterance, start_prefix=tuple(offline[:4]), max_positions=2
            )


class TestStreamingCli:
    def test_serve_sim_streaming_runs(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "serve-sim",
                    "--method",
                    "spec(8,1)",
                    "--qps",
                    "0.5",
                    "--requests",
                    "4",
                    "--utterances",
                    "4",
                    "--streaming",
                    "--rtf",
                    "1.0",
                    "--chunk-s",
                    "1.0",
                    "--lookahead-s",
                    "0.3",
                    "--no-max-qps",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streaming" in out
        assert "word ttft" in out

    def test_rejects_bad_streaming_flags(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve-sim", "--streaming", "--rtf", "0"])
        with pytest.raises(SystemExit):
            main(["serve-sim", "--streaming", "--chunk-s", "-1"])


class TestPositionsAvailable:
    def test_zero_until_lookahead_covered(self, utterance):
        assert positions_available(utterance, 0.0, 0.5) == 0

    def test_full_when_all_audio_heard(self, utterance):
        assert (
            positions_available(utterance, utterance.duration_s, 0.5)
            == utterance.num_tokens
        )

    def test_monotone_in_heard_audio(self, utterance):
        caps = [
            positions_available(utterance, heard / 4.0, 0.3)
            for heard in range(int(utterance.duration_s * 4) + 2)
        ]
        assert caps == sorted(caps)

    def test_negative_lookahead_rejected(self, utterance):
        with pytest.raises(ValueError):
            positions_available(utterance, 1.0, -0.1)
