"""Tests for the dynamic token-tree baseline."""

import pytest

from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.dynamic_tree import DynamicTreeConfig, DynamicTreeDecoder

from tests.fakes import EOS, FakeUnit, ScriptedModel


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicTreeConfig(node_budget=0)
        with pytest.raises(ValueError):
            DynamicTreeConfig(max_depth=0)
        with pytest.raises(ValueError):
            DynamicTreeConfig(expand_threshold=0.0)
        with pytest.raises(ValueError):
            DynamicTreeConfig(max_children=0)


class TestScripted:
    def test_lossless_agreeing(self):
        stream = [5, 6, 7, 8, EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        result = DynamicTreeDecoder(draft, target).decode(FakeUnit())
        assert result.tokens == [5, 6, 7, 8]

    def test_lossless_disagreeing(self):
        draft = ScriptedModel(stream=[5, 9, 7, 8, EOS], name="draft")
        target = ScriptedModel(stream=[5, 6, 7, 8, EOS], name="target")
        result = DynamicTreeDecoder(draft, target).decode(FakeUnit())
        assert result.tokens == [5, 6, 7, 8]

    def test_node_budget_respected(self):
        stream = [5] * 30 + [EOS]
        draft = ScriptedModel(stream=list(stream), name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        config = DynamicTreeConfig(node_budget=10)
        result = DynamicTreeDecoder(draft, target, config).decode(FakeUnit())
        assert all(r.tree_nodes <= 10 for r in result.trace.rounds)

    def test_confident_draft_grows_deep_not_wide(self):
        """With high-confidence scripted probs, the tree should be a chain
        (path probability of alternatives falls below the threshold)."""
        stream = [5, 6, 7, 8, 9, 10, EOS]
        probs = {i: 0.95 for i in range(len(stream))}
        draft = ScriptedModel(stream=list(stream), probs=probs, name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        config = DynamicTreeConfig(node_budget=12, max_depth=6)
        result = DynamicTreeDecoder(draft, target, config).decode(FakeUnit())
        first = result.trace.rounds[0]
        assert first.submitted_tokens == first.tree_nodes  # pure chain

    def test_uncertain_draft_grows_wide(self):
        """Low-confidence positions admit the runner-up into the tree."""
        stream = [5, 6, 7, EOS]
        probs = {0: 0.55, 1: 0.55, 2: 0.55}
        draft = ScriptedModel(stream=list(stream), probs=probs, name="draft")
        target = ScriptedModel(stream=list(stream), name="target")
        config = DynamicTreeConfig(node_budget=12, expand_threshold=0.2)
        result = DynamicTreeDecoder(draft, target, config).decode(FakeUnit())
        first = result.trace.rounds[0]
        assert first.tree_nodes > first.submitted_tokens  # branched


class TestSimulated:
    def test_lossless_on_simulated_models(self, whisper_pair, clean_dataset):
        draft, target = whisper_pair
        ar = AutoregressiveDecoder(target)
        decoder = DynamicTreeDecoder(draft, target)
        for utterance in list(clean_dataset)[:3]:
            assert decoder.decode(utterance).tokens == ar.decode(utterance).tokens

    def test_faster_than_ar(self, vicuna_pair, clean_dataset):
        draft, target = vicuna_pair
        ar = AutoregressiveDecoder(target)
        decoder = DynamicTreeDecoder(draft, target)
        ar_ms = sum(ar.decode(u).total_ms for u in clean_dataset)
        dyn_ms = sum(decoder.decode(u).total_ms for u in clean_dataset)
        assert dyn_ms < ar_ms
