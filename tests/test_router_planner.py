"""Device specs, pool planner, least-loaded routing, and the policy registry.

Edge cases the cluster suite's end-to-end runs never pin down directly:
odd pool splits, K=2 minimum pools, degenerate planner ratios, the
deterministic tie-breaks of least-loaded routing on heterogeneous pools,
alias normalisation, and the ``ROUTER_REGISTRY`` dispatch contract.
"""

from __future__ import annotations

import pytest

from repro.decoding.base import PHASE_DRAFT, PHASE_VERIFY, PhaseOutcome
from repro.serving import router as router_module
from repro.serving.devices import (
    Device,
    DeviceSpec,
    format_device_specs,
    make_devices,
    parse_device_specs,
)
from repro.serving.router import (
    ROUTER_POLICIES,
    ROUTER_REGISTRY,
    ClusterConfig,
    ColocatedRouter,
    DisaggregatedRouter,
    MergedVerifyRouter,
    build_router,
    measure_draft_share,
    normalize_router,
    plan_pool_split,
)


def _phase(kind: str, ms: float = 10.0) -> PhaseOutcome:
    model = "draft-model" if kind == PHASE_DRAFT else "target-model"
    return PhaseOutcome(kind, model, ms, (), True, False)


class TestDeviceSpecs:
    def test_parse_count_groups(self):
        specs = parse_device_specs("2x1.0,2x0.5")
        assert [s.speed for s in specs] == [1.0, 1.0, 0.5, 0.5]

    def test_parse_bare_speeds(self):
        specs = parse_device_specs("1.0, 0.25")
        assert [s.speed for s in specs] == [1.0, 0.25]

    def test_parse_mixed_forms(self):
        specs = parse_device_specs("3x2.0,0.5")
        assert [s.speed for s in specs] == [2.0, 2.0, 2.0, 0.5]

    @pytest.mark.parametrize(
        "bad",
        ("", ",", "2x", "x1.0", "ax1.0", "2xfast", "0x1.0", "-1x1.0", "2x0"),
    )
    def test_parse_rejects_bad_groups(self, bad):
        with pytest.raises(ValueError):
            parse_device_specs(bad)

    def test_zero_count_group_names_the_offender(self):
        # "0x1.0" parses as count=0 — not a malformed token, a nonsensical
        # cluster — so the message must say the count is the problem
        with pytest.raises(ValueError, match="count >= 1") as err:
            parse_device_specs("0x1.0")
        assert "0x1.0" in str(err.value)
        with pytest.raises(ValueError, match="count >= 1"):
            parse_device_specs("2x1.0,0x0.5")

    @pytest.mark.parametrize("bad", ("", "   ", "2x1.0,,1.0", "1.0,", ",0.5"))
    def test_empty_segments_are_called_out(self, bad):
        with pytest.raises(ValueError, match="empty device group"):
            parse_device_specs(bad)

    @pytest.mark.parametrize("bad", ("2x", "x1.0", "2x1x0.5"))
    def test_malformed_groups_show_expected_shape(self, bad):
        with pytest.raises(ValueError, match="COUNTxSPEED") as err:
            parse_device_specs(bad)
        assert repr(bad) in str(err.value)

    @pytest.mark.parametrize("bad", ("2xnan", "1xinf", "nan", "-inf"))
    def test_parse_rejects_non_finite_speeds(self, bad):
        # NaN compares False against every bound; without an explicit
        # finiteness check it would poison free_at and hang the event loop
        with pytest.raises(ValueError, match="finite"):
            parse_device_specs(bad)

    def test_device_rejects_non_finite_params(self):
        with pytest.raises(ValueError, match="finite"):
            Device(0, overlap=0.8, speed=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            Device(0, overlap=0.8, switch_cost=float("inf"))
        with pytest.raises(ValueError):
            DeviceSpec(speed=float("inf"))
        with pytest.raises(ValueError):
            DeviceSpec(speed=1.0, switch_cost=float("nan"))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(speed=0.0)
        with pytest.raises(ValueError):
            DeviceSpec(speed=1.0, overlap=1.5)
        with pytest.raises(ValueError):
            DeviceSpec(speed=1.0, switch_cost=-0.1)

    def test_format_round_trip(self):
        text = "2x1,2x0.5"
        assert format_device_specs(parse_device_specs(text)) == text
        assert format_device_specs(parse_device_specs("1.0,0.5,0.5")) == "1x1,2x0.5"

    def test_make_devices_applies_spec_overrides(self):
        specs = (
            DeviceSpec(speed=2.0),
            DeviceSpec(speed=0.5, overlap=0.3, switch_cost=0.0),
        )
        fast, slow = make_devices(2, overlap=0.9, specs=specs)
        assert fast.speed == 2.0
        assert fast.overlap == 0.9  # inherits the cluster default
        assert (slow.speed, slow.overlap, slow.switch_cost) == (0.5, 0.3, 0.0)

    def test_make_devices_length_mismatch(self):
        with pytest.raises(ValueError, match="2 entries"):
            make_devices(3, overlap=0.8, specs=(DeviceSpec(), DeviceSpec()))

    def test_speed_scales_batch_cost(self):
        specs = (DeviceSpec(speed=2.0), DeviceSpec(speed=0.5))
        fast, slow = make_devices(2, overlap=0.8, specs=specs)
        batch = [_phase(PHASE_VERIFY, 10.0)]
        assert fast.batch_busy_ms(batch) == pytest.approx(5.0)
        assert slow.batch_busy_ms(batch) == pytest.approx(20.0)


class TestPoolPlanner:
    def test_degenerate_all_verify(self):
        # draft share 0: minimum viable draft pool (one device, slowest)
        draft, target = plan_pool_split([1.0, 1.0, 1.0, 1.0], 0.0)
        assert draft == (0,)
        assert target == (1, 2, 3)

    def test_degenerate_all_draft(self):
        draft, target = plan_pool_split([1.0, 1.0, 1.0, 1.0], 1.0)
        assert len(draft) == 3
        assert len(target) == 1  # target pool never empties

    def test_k2_minimum_pools(self):
        for share in (0.0, 0.25, 0.5, 0.75, 1.0):
            draft, target = plan_pool_split([1.0, 1.0], share)
            assert len(draft) == 1 and len(target) == 1

    def test_share_matches_speed_fraction(self):
        # 2 fast + 2 slow; share 0.33 -> the two slow devices (1/3 of
        # speed) draft, the fast ones verify
        draft, target = plan_pool_split([1.0, 1.0, 0.5, 0.5], 1.0 / 3.0)
        assert draft == (2, 3)
        assert target == (0, 1)

    def test_slowest_devices_draft_first(self):
        draft, target = plan_pool_split([2.0, 0.25, 1.0], 0.1)
        assert draft == (1,)  # the 0.25x part
        assert target == (0, 2)

    def test_tie_prefers_smaller_draft_pool(self):
        # shares 1/4 and 2/4 are equidistant from 0.375: keep draft small
        draft, _ = plan_pool_split([1.0, 1.0, 1.0, 1.0], 0.375)
        assert len(draft) == 1

    def test_equal_speed_ties_break_by_index(self):
        draft, target = plan_pool_split([1.0, 1.0, 1.0], 0.34)
        assert draft == (0,)
        assert target == (1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_pool_split([1.0], 0.5)
        with pytest.raises(ValueError):
            plan_pool_split([1.0, 1.0], 1.5)

    def test_odd_k_fixed_split_favours_target(self):
        devices = make_devices(5, overlap=0.8)
        router = DisaggregatedRouter(devices, split="fixed")
        assert len(router.draft_pool) == 2
        assert len(router.target_pool) == 3

    def test_balanced_split_reshapes_pools(self):
        devices = make_devices(4, overlap=0.8)
        fixed = DisaggregatedRouter(devices, split="fixed")
        balanced = DisaggregatedRouter(devices, split="balanced", draft_share=0.1)
        assert len(fixed.draft_pool) == 2
        assert len(balanced.draft_pool) == 1
        assert len(balanced.target_pool) == 3

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            DisaggregatedRouter(make_devices(2, overlap=0.8), split="optimal")


class TestLeastLoadedRouting:
    def _router(self, speeds, share=0.5):
        specs = tuple(DeviceSpec(speed=s) for s in speeds)
        devices = make_devices(len(speeds), overlap=0.8, specs=specs)
        router = DisaggregatedRouter(devices, split="balanced", draft_share=share)
        return devices, router

    def test_round_projection_spreads_phases(self):
        # two equal target devices: consecutive verify phases alternate
        # instead of stacking on the argmin
        devices, router = self._router([1.0, 1.0, 1.0, 1.0], share=0.5)
        router.plan_round(0.0)
        first = router.route(0, _phase(PHASE_VERIFY))
        second = router.route(1, _phase(PHASE_VERIFY))
        assert first.index != second.index
        assert {first.index, second.index} == {d.index for d in router.target_pool}

    def test_tie_breaks_prefer_fast_then_low_index(self):
        devices, router = self._router([0.5, 2.0, 2.0, 0.5], share=0.25)
        assert [d.index for d in router.target_pool] == [1, 2]
        router.plan_round(0.0)
        chosen = router.route(0, _phase(PHASE_VERIFY))
        assert chosen.index == 1  # equal projection, equal speed: low index
        devices[1].free_at = 5.0
        router.plan_round(0.0)
        assert router.route(0, _phase(PHASE_VERIFY)).index == 2  # now earlier

    def test_busy_devices_still_accept_routes_for_later(self):
        # routing never raises when every pool device is busy; phases just
        # queue behind the earliest projected finisher
        devices, router = self._router([1.0, 1.0], share=0.5)
        for device in devices:
            device.free_at = 100.0
        router.plan_round(0.0)
        assert router.route(0, _phase(PHASE_DRAFT)) is router.draft_pool[0]

    def test_merged_verify_phases_stack_for_coalescing(self):
        # merged verification coalesces co-scheduled verify passes to their
        # critical path, so the router must stack them on one target device
        # instead of spreading the exact phases it exists to merge
        specs = tuple(DeviceSpec(speed=1.0) for _ in range(4))
        devices = make_devices(4, overlap=0.8, specs=specs)
        router = MergedVerifyRouter(devices, split="balanced", draft_share=0.5)
        router.plan_round(0.0)
        first = router.route(0, _phase(PHASE_VERIFY, 10.0))
        second = router.route(1, _phase(PHASE_VERIFY, 10.0))
        assert first.index == second.index
        # a *costlier* verify phase only extends the stack by its excess
        # over the round's peak, so it still prefers the loaded device
        third = router.route(2, _phase(PHASE_VERIFY, 12.0))
        assert third.index == first.index
        # draft phases keep the spreading projection under merged verify
        d1 = router.route(3, _phase(PHASE_DRAFT, 10.0))
        d2 = router.route(4, _phase(PHASE_DRAFT, 10.0))
        assert d1.index != d2.index

    def test_deterministic_across_reruns(self):
        picks = []
        for _ in range(2):
            devices, router = self._router([1.0, 0.5, 2.0, 1.0], share=0.3)
            router.plan_round(0.0)
            picks.append(
                [
                    router.route(i, _phase(kind)).index
                    for i, kind in enumerate(
                        (PHASE_VERIFY, PHASE_VERIFY, PHASE_DRAFT, PHASE_VERIFY)
                    )
                ]
            )
        assert picks[0] == picks[1]


class TestRouterRegistry:
    def test_policies_mirror_registry(self):
        assert ROUTER_POLICIES == tuple(ROUTER_REGISTRY)
        assert ROUTER_REGISTRY == {
            "colocated": ColocatedRouter,
            "disaggregated": DisaggregatedRouter,
            "merged": MergedVerifyRouter,
        }

    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_build_router_dispatches_every_policy(self, policy):
        devices_needed = 1 if policy == "colocated" else 2
        devices, router = build_router(
            ClusterConfig(devices=devices_needed, router=policy), overlap=0.8
        )
        assert isinstance(router, ROUTER_REGISTRY[policy])
        assert router.name == policy
        assert len(devices) == devices_needed

    def test_registered_policy_needs_no_dispatch_branch(self, monkeypatch):
        # Regression: adding a policy used to require editing an if-chain
        # in build_router; now one registry entry is sufficient for both
        # config validation and dispatch.
        class EveryoneToDeviceZero(ColocatedRouter):
            name = "dev0-only"

            def route(self, request_index, phase):
                return self.devices[0]

        monkeypatch.setitem(ROUTER_REGISTRY, "dev0-only", EveryoneToDeviceZero)
        config = ClusterConfig(devices=2, router="dev0-only")
        _, router = build_router(config, overlap=0.8)
        assert isinstance(router, EveryoneToDeviceZero)

    def test_normalize_router_alias(self):
        assert normalize_router("disagg") == "disaggregated"
        assert normalize_router("merged") == "merged"
        assert normalize_router("unknown-policy") == "unknown-policy"
        assert ClusterConfig(devices=2, router="disagg").router == "disaggregated"
        with pytest.raises(ValueError, match="unknown router"):
            ClusterConfig(devices=2, router="unknown-policy")


class TestClusterConfigSpecs:
    def test_devices_derived_from_specs(self):
        config = ClusterConfig(device_specs=parse_device_specs("2x1.0,2x0.5"))
        assert config.devices == 4

    def test_explicit_matching_count_accepted(self):
        config = ClusterConfig(
            devices=2, router="merged", device_specs=parse_device_specs("1.0,0.5")
        )
        assert config.devices == 2

    def test_mismatched_count_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            ClusterConfig(devices=3, device_specs=parse_device_specs("2x1.0"))

    def test_explicit_devices_one_mismatch_rejected(self):
        # devices=1 is an explicit count like any other, not a wildcard
        with pytest.raises(ValueError, match="does not match"):
            ClusterConfig(devices=1, device_specs=parse_device_specs("2x1.0,2x0.5"))

    def test_omitted_devices_defaults_to_one(self):
        assert ClusterConfig().devices == 1
        assert ClusterConfig(router="colocated").devices == 1

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ClusterConfig(device_specs=())

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            ClusterConfig(devices=2, router="merged", split="optimal")

    def test_build_router_heterogeneous_speeds(self):
        config = ClusterConfig(
            router="disaggregated",
            split="balanced",
            device_specs=parse_device_specs("2x1.0,2x0.5"),
        )
        devices, router = build_router(config, overlap=0.8, draft_share=1.0 / 3.0)
        assert [d.speed for d in devices] == [1.0, 1.0, 0.5, 0.5]
        assert [d.index for d in router.draft_pool] == [2, 3]
        assert [d.index for d in router.target_pool] == [0, 1]
        assert router.device_roles() == ("target", "target", "draft", "draft")


class TestMeasureDraftShare:
    class _ScriptedStepper:
        def __init__(self, outcomes):
            self._outcomes = list(outcomes)
            self.done = not self._outcomes

        def step_phase(self):
            outcome = self._outcomes.pop(0)
            self.done = not self._outcomes
            return outcome

    def test_share_is_draft_fraction(self):
        outcomes = [
            _phase(PHASE_DRAFT, 10.0),
            _phase(PHASE_VERIFY, 30.0),
        ]
        stepper = self._ScriptedStepper(outcomes)
        decoder = type("FakeDecoder", (), {"begin": lambda self, utt: stepper})()
        share = measure_draft_share(decoder, ["utt"])
        assert share == pytest.approx(0.25)

    def test_empty_utterances_default_to_zero(self):
        assert measure_draft_share(object(), []) == 0.0

    def test_module_default_share_constant_in_range(self):
        assert 0.0 <= router_module.DEFAULT_DRAFT_SHARE <= 1.0
