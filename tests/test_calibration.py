"""Calibration guards: the simulated substrate stays in the paper's regime.

These tests pin the *statistical* properties that every experiment depends
on.  If a refactor drifts the oracle or corpus statistics out of the
paper-reported ranges, these fail before the benches produce nonsense.
"""

import pytest

from repro.data.librisim import LibriSimBuilder, LibriSimConfig
from repro.metrics.acceptance import accept_at_topk, rank_distribution_on_failure
from repro.metrics.wer import model_wer
from repro.models.registry import model_pair


@pytest.fixture(scope="module")
def corpora(vocab):
    config = LibriSimConfig(seed=2025, utterances_per_split=24)
    builder = LibriSimBuilder(vocab, config)
    return {
        "clean": builder.build("test-clean"),
        "other": builder.build("test-other"),
    }


@pytest.fixture(scope="module")
def whisper(vocab):
    return model_pair("whisper", vocab)


class TestWerRegime:
    def test_draft_wer_band(self, whisper, corpora):
        draft, _ = whisper
        clean = model_wer(draft, corpora["clean"])
        other = model_wer(draft, corpora["other"])
        # Paper Fig. 5a: small models reach WER ~10 % or less on clean sets.
        assert 0.04 < clean < 0.13
        assert other > clean

    def test_target_wer_band(self, whisper, corpora):
        _, target = whisper
        clean = model_wer(target, corpora["clean"])
        assert 0.02 < clean < 0.10

    def test_relative_reduction_band(self, whisper, corpora):
        """Paper: larger models show a 20-33 % WER reduction vs smaller."""
        draft, target = whisper
        for split in ("clean", "other"):
            draft_wer = model_wer(draft, corpora[split])
            target_wer = model_wer(target, corpora[split])
            reduction = 1.0 - target_wer / draft_wer
            assert 0.08 < reduction < 0.50, f"{split}: {reduction:.2f}"


class TestAcceptanceRegime:
    def test_accept_at_1_bands(self, whisper, corpora):
        draft, target = whisper
        clean = accept_at_topk(draft, target, list(corpora["clean"])[:12], 1)[0]
        other = accept_at_topk(draft, target, list(corpora["other"])[:12], 1)[0]
        assert clean > 0.90  # high draft/target alignment (Observation 1)
        assert other < clean  # noisy sets degrade acceptance
        assert other > 0.70

    def test_rank2_majority_on_failure(self, whisper, corpora):
        """Paper Fig. 13b: the target token is the draft's second choice for
        the (relative) majority of top-1 failures."""
        draft, target = whisper
        units = list(corpora["clean"]) + list(corpora["other"])
        distribution = rank_distribution_on_failure(draft, target, units)
        rank2 = distribution["2"]
        assert rank2 > 0.4
        assert rank2 == max(distribution.values())


class TestConfidenceSignal:
    def test_threshold_separates_failures(self, whisper, corpora, vocab):
        """Positions the target will reject show low draft confidence far
        more often than accepted positions — the signal behind ASP."""
        from repro.models.latency import SimClock

        draft, target = whisper
        below_ok = below_bad = ok = bad = 0
        for utt in corpora["clean"]:
            d = draft.session(utt, SimClock())
            t = target.session(utt, SimClock())
            path: list[int] = []
            while len(path) < t.max_decode_positions():
                tok = t.peek(path).token
                if tok == vocab.eos_id:
                    break
                step = d.peek(path)
                if step.token == tok:
                    ok += 1
                    below_ok += step.top_prob < 0.4
                else:
                    bad += 1
                    below_bad += step.top_prob < 0.4
                path.append(tok)
        assert ok > 0 and bad > 0
        assert below_ok / ok < 0.08
        assert below_bad / bad > 0.30
