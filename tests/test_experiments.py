"""Every paper experiment runs end-to-end on a tiny corpus and reports
sane values.  These are the integration tests for the bench harness."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.harness.runner import ExperimentConfig

TINY = ExperimentConfig(seed=11, utterances=6, min_words=10, max_words=26)


@pytest.fixture(scope="module")
def reports():
    return {exp_id: run_experiment(exp_id, TINY) for exp_id in list_experiments()}


class TestRegistry:
    def test_all_paper_experiments_present(self):
        paper = {
            "fig01",
            "fig05a",
            "fig05b",
            "fig06a",
            "fig06b",
            "fig07",
            "fig11",
            "fig12",
            "fig13a",
            "fig13b",
            "tab01",
            "tab02",
        }
        assert paper <= set(EXPERIMENTS)
        extensions = set(EXPERIMENTS) - paper
        assert all(exp.startswith("ext") for exp in extensions)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestReports:
    def test_all_render(self, reports):
        for exp_id, report in reports.items():
            text = report.render()
            assert exp_id in text
            assert report.rows, f"{exp_id} produced no rows"

    def test_fig01_decoder_dominates(self, reports):
        for key, share in reports["fig01"].metrics.items():
            if key.startswith("decoder_latency_share/"):
                assert share > 0.8  # LLM decoder is the bottleneck

    def test_fig05a_wer_improves_with_scale(self, reports):
        metrics = reports["fig05a"].metrics
        assert (
            metrics["wer_clean/whisper-large-sim"]
            < metrics["wer_clean/whisper-tiny-sim"]
        )
        # other split is harder than clean for every model
        for name in ("whisper-tiny-sim", "whisper-medium-sim"):
            assert metrics[f"wer_other/{name}"] > metrics[f"wer_clean/{name}"]

    def test_fig05b_asr_beats_text(self, reports):
        metrics = reports["fig05b"].metrics
        for k in range(1, 6):
            assert metrics[f"asr_accept@{k}"] >= metrics[f"text_accept@{k}"] - 0.02

    def test_fig06a_histogram_rows_are_distributions(self, reports):
        for row in reports["fig06a"].rows:
            assert sum(row[1:]) == pytest.approx(100.0, abs=0.2)

    def test_fig06b_alignment_high(self, reports):
        # The recycling motivation: rejected suffixes still align strongly.
        metrics = reports["fig06b"].metrics
        assert metrics["alignment@offset2"] > 0.5

    def test_fig07_draft_share_grows_with_gamma(self, reports):
        metrics = reports["fig07"].metrics
        for pairing in ("whisper", "llama-7b", "vicuna-13b"):
            assert (
                metrics[f"draft_share/{pairing}/gamma24"]
                > metrics[f"draft_share/{pairing}/gamma4"]
            )

    def test_fig11_specasr_beats_ar_everywhere(self, reports):
        metrics = reports["fig11"].metrics
        for key, speedup in metrics.items():
            if key.startswith("xar/"):
                assert speedup > 1.3, key

    def test_fig12_specasr_fewer_rounds(self, reports):
        metrics = reports["fig12"].metrics
        assert metrics["rounds/specasr-tsp"] < metrics["rounds/spec(8,1)"]
        assert (
            metrics["accepted_per_round/specasr-tsp"]
            > metrics["accepted_per_round/spec(8,1)"]
        )

    def test_fig13a_threshold_tradeoff(self, reports):
        rows = reports["fig13a"].rows
        # draft steps decrease monotonically-ish from threshold 0 to 0.7
        first_steps, last_steps = rows[0][1], rows[-1][1]
        assert last_steps < first_steps
        # and verification rounds increase
        assert rows[-1][2] > rows[0][2]

    def test_fig13b_rank2_majority(self, reports):
        metrics = reports["fig13b"].metrics
        shares = {k: v for k, v in metrics.items() if k.startswith("rank_share/")}
        assert max(shares, key=shares.get) == "rank_share/2"

    def test_tab01_all_families(self, reports):
        families = [row[0] for row in reports["tab01"].rows]
        assert "Ours (SpecASR)" in families
        assert len(families) == 4

    def test_tab02_ablation_improves_total(self, reports):
        metrics = reports["tab02"].metrics
        baseline = metrics["total_ms/baseline speculative"]
        tsp = metrics["total_ms/+two-pass sparse-tree prediction"]
        assert tsp < baseline

    def test_ext01_adaptive_recovers_mistuned_start(self, reports):
        metrics = reports["ext01-adaptive"].metrics
        assert (
            metrics["ms/adaptive from 0.65"]
            <= metrics["ms/fixed 0.65 (mistuned)"] * 1.02
        )

    def test_ext01_sampling_accepts_substantially(self, reports):
        # Sampling spreads both models over their top-k, so acceptance is
        # naturally below the greedy case; it must still be well above the
        # ~1/topk chance level for speculation to pay.
        metrics = reports["ext01-sampling"].metrics
        for pairing in ("whisper", "llama-7b", "vicuna-13b"):
            assert metrics[f"acceptance/{pairing}"] > 0.25

    def test_ext01_streaming_real_time(self, reports):
        metrics = reports["ext01-streaming"].metrics
        for pairing in ("whisper", "vicuna-13b"):
            assert metrics[f"rtf/{pairing}"] < 1.0
